"""repro — a full reproduction of GUST (ASPLOS 2024).

GUST accelerates sparse matrix-vector multiplication by separating
multipliers from adders behind a crossbar so rows and columns share
arithmetic units, and by eliminating the resulting collisions with a
bipartite-graph edge-coloring schedule.

Quickstart::

    import numpy as np
    from repro import GustPipeline, uniform_random

    matrix = uniform_random(1024, 1024, density=0.01, seed=7)
    x = np.random.default_rng(7).normal(size=1024)

    gust = GustPipeline(length=64)
    result = gust.spmv(matrix, x)

    assert np.allclose(result.y, matrix.matvec(x))
    print(f"cycles={result.cycle_report.cycles} "
          f"utilization={result.cycle_report.utilization:.1%}")

Layers (see DESIGN.md for the full map):

* :mod:`repro.sparse` — matrix containers, generators, surrogate datasets.
* :mod:`repro.graph` — bipartite edge-coloring algorithms.
* :mod:`repro.core` — the GUST scheduler, load balancer, and machine.
* :mod:`repro.accelerators` — 1D systolic, adder tree, Flex-TPU, Fafnir,
  Serpens baselines behind one interface.
* :mod:`repro.energy` — the paper's energy/power/resource models.
* :mod:`repro.eval` — experiment harness regenerating every paper
  table and figure.
* :mod:`repro.solvers` — iterative solvers exercising repeated SpMV.
"""

from repro.core.backends import (
    BackendCapabilities,
    ReplayBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.bounds import (
    expected_colors,
    expected_execution_cycles,
    expected_utilization,
)
from repro.core.cache import CacheLookup, CacheStats, ScheduleCache
from repro.core.compiled import CompiledSpmv, CompiledStats
from repro.core.load_balance import BalancedMatrix, LoadBalancer
from repro.core.machine import GustMachine, MachineResult
from repro.core.parallel import ParallelGust
from repro.core.pipeline import GustPipeline, PipelineResult
from repro.core.plan import ExecutionPlan
from repro.core.schedule import Schedule
from repro.core.scheduler import SCHEDULING_ALGORITHMS, GustScheduler
from repro.core.serialize import (
    StoredSchedule,
    load_schedule,
    load_schedule_entry,
    save_schedule,
)
from repro.core.spmm import GustSpmm, SpmmResult, StackedReplay
from repro.core.store import DiskScheduleStore, DiskStoreStats, default_store_dir
from repro.faults import FaultPlan
from repro.serve import (
    BatchPolicy,
    CircuitBoard,
    MatrixRegistry,
    ServerStats,
    SpmvClient,
    SpmvServer,
    run_chaos,
)
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.datasets import (
    DatasetSpec,
    figure7_suite,
    load_dataset,
    serpens_suite,
)
from repro.sparse.generators import (
    banded,
    block_diagonal,
    k_regular,
    power_law,
    uniform_random,
)
from repro.types import CycleReport, EnergyReport, PreprocessReport, RunResult

__version__ = "1.0.0"

__all__ = [
    "BackendCapabilities",
    "BalancedMatrix",
    "BatchPolicy",
    "CacheLookup",
    "CacheStats",
    "CircuitBoard",
    "CompiledSpmv",
    "CompiledStats",
    "CooMatrix",
    "ReplayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "CsrMatrix",
    "CycleReport",
    "DatasetSpec",
    "DiskScheduleStore",
    "DiskStoreStats",
    "EnergyReport",
    "ExecutionPlan",
    "FaultPlan",
    "GustMachine",
    "GustPipeline",
    "GustScheduler",
    "GustSpmm",
    "LoadBalancer",
    "MachineResult",
    "MatrixRegistry",
    "ParallelGust",
    "PipelineResult",
    "PreprocessReport",
    "RunResult",
    "SCHEDULING_ALGORITHMS",
    "Schedule",
    "ScheduleCache",
    "ServerStats",
    "SpmmResult",
    "SpmvClient",
    "SpmvServer",
    "StackedReplay",
    "StoredSchedule",
    "banded",
    "default_store_dir",
    "load_schedule",
    "load_schedule_entry",
    "save_schedule",
    "block_diagonal",
    "expected_colors",
    "expected_execution_cycles",
    "expected_utilization",
    "figure7_suite",
    "k_regular",
    "load_dataset",
    "power_law",
    "run_chaos",
    "serpens_suite",
    "uniform_random",
]
