"""Command-line interface: ``python -m repro <command>``.

Commands
--------

generate    synthesize a matrix (family generator or paper surrogate) to .mtx
schedule    preprocess a .mtx matrix into a reusable schedule artifact
spmv        execute a scheduled SpMV against a vector and verify it
backends    list registered execution backends and the auto-probe verdict
serve       run the in-process batching SpMV server under synthetic load
stats       print a Prometheus/JSON metrics scrape (local or via --url)
trace       capture a Chrome trace of a workload (``trace export``)
bench-serve run the serving-throughput benchmark (same gates as CI)
inspect     print statistics of a saved schedule
lint        run the project contract checker (rules R1-R4) over the source
cache       inspect or clear the persistent schedule store
compare     run every accelerator model on one matrix, print the table
experiment  regenerate one of the paper's tables/figures

The ``schedule`` command keeps a persistent, content-addressed schedule
store (default ``~/.cache/gust``; override with ``--cache-dir`` or the
``GUST_CACHE_DIR`` environment variable, disable with ``--no-disk-cache``).
A pattern scheduled by any previous process — on this or another worker
sharing the directory — warm-starts from disk instead of recoloring.

Examples::

    python -m repro generate --family uniform --dim 2048 --density 0.01 \
        --out m.mtx
    python -m repro generate --dataset scircuit --scale 16 --out scircuit.mtx
    python -m repro schedule m.mtx --length 128 --out m.sched
    python -m repro spmv m.sched --seed 7
    python -m repro backends
    python -m repro serve --tenants 2 --clients 8 --requests 200
    python -m repro serve --matrix m.mtx --requests 500 --max-batch 32
    python -m repro bench-serve --json bench-serve.json
    python -m repro cache stats
    python -m repro compare m.mtx --length 256
    python -m repro experiment fig7 --scale 16
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core.pipeline import GustPipeline
from repro.core.serialize import load_schedule, save_schedule
from repro.core.store import DiskScheduleStore
from repro.errors import ReproError
from repro.sparse.datasets import dataset_names, load_dataset
from repro.sparse.generators import (
    banded,
    block_diagonal,
    k_regular,
    power_law,
    uniform_random,
)
from repro.sparse.mmio import read_matrix_market, write_matrix_market

_FAMILIES = ("uniform", "power_law", "k_regular", "banded", "block")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GUST (ASPLOS 2024) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a matrix")
    source = generate.add_mutually_exclusive_group(required=True)
    source.add_argument("--family", choices=_FAMILIES)
    source.add_argument("--dataset", choices=sorted(dataset_names()))
    generate.add_argument("--dim", type=int, default=1024)
    generate.add_argument("--density", type=float, default=0.01)
    generate.add_argument("--k", type=int, default=8, help="k for k_regular")
    generate.add_argument("--scale", type=float, default=16.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)

    schedule = commands.add_parser(
        "schedule", help="preprocess a matrix into a schedule"
    )
    schedule.add_argument("matrix", help="MatrixMarket file")
    schedule.add_argument("--length", type=int, default=256)
    schedule.add_argument(
        "--algorithm",
        choices=("matching", "first_fit", "euler", "naive"),
        default="matching",
    )
    schedule.add_argument("--no-load-balance", action="store_true")
    schedule.add_argument("--out", required=True)
    schedule.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="preprocess the matrix this many times (with --cache-size > 0, "
        "repeats after the first hit the schedule cache)",
    )
    schedule.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="in-memory pattern-keyed cache capacity (0 uses the default "
        "when the disk cache is active, else disables in-memory caching)",
    )
    schedule.add_argument(
        "--cache-dir",
        default=None,
        help="persistent schedule store directory (default ~/.cache/gust, "
        "or $GUST_CACHE_DIR)",
    )
    schedule.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the persistent schedule store for this run",
    )
    schedule.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the coloring pass (windows are "
        "independent, so the schedule is byte-identical to --jobs 1)",
    )

    cache = commands.add_parser(
        "cache", help="inspect or clear the persistent schedule store"
    )
    cache_actions = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_actions.add_parser(
        "stats", help="print artifact count and size of the store"
    )
    cache_stats.add_argument("--cache-dir", default=None)
    cache_clear = cache_actions.add_parser(
        "clear", help="delete every artifact in the store"
    )
    cache_clear.add_argument("--cache-dir", default=None)

    serve = commands.add_parser(
        "serve", help="run the in-process batching server under load"
    )
    serve.add_argument(
        "--matrix",
        action="append",
        default=None,
        help="MatrixMarket tenant (repeatable); omit to synthesize",
    )
    serve.add_argument("--tenants", type=int, default=2,
                       help="synthetic tenants when no --matrix is given")
    serve.add_argument("--dim", type=int, default=2048)
    serve.add_argument("--density", type=float, default=0.008)
    serve.add_argument("--length", type=int, default=64)
    serve.add_argument(
        "--algorithm",
        choices=("matching", "first_fit", "euler", "naive"),
        default="matching",
    )
    serve.add_argument("--requests", type=int, default=200,
                       help="total requests driven across all clients")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop client threads")
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--queue-size", type=int, default=256)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent schedule store directory (default ~/.cache/gust, "
        "or $GUST_CACHE_DIR) — a restarted server warm-starts its tenants",
    )
    serve.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the persistent schedule store for this run",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus /metrics and /healthz on this port for the "
        "duration of the run (0 picks a free port)",
    )
    serve.add_argument(
        "--metrics-linger-s",
        type=float,
        default=0.0,
        help="keep the metrics endpoint up this long after the workload "
        "finishes (so external scrapers can collect the final state)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a Chrome trace of the run and write it to PATH",
    )

    stats = commands.add_parser(
        "stats",
        help="print a Prometheus/JSON metrics scrape (from a running "
        "exporter via --url, or from a small in-process workload)",
    )
    stats.add_argument(
        "--url",
        default=None,
        help="base URL of a running metrics exporter "
        "(e.g. http://127.0.0.1:9100); scrapes it instead of running a "
        "local workload",
    )
    stats.add_argument(
        "--json", action="store_true", help="emit JSON instead of "
        "Prometheus text exposition",
    )
    stats.add_argument("--dim", type=int, default=256)
    stats.add_argument("--requests", type=int, default=32)
    stats.add_argument("--seed", type=int, default=0)

    trace = commands.add_parser(
        "trace", help="capture and export Chrome traces"
    )
    trace_actions = trace.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_actions.add_parser(
        "export",
        help="run a representative workload with tracing on and write "
        "the Chrome trace-event JSON (open in chrome://tracing or "
        "ui.perfetto.dev)",
    )
    trace_export.add_argument("--out", required=True, metavar="PATH")
    trace_export.add_argument(
        "--workload",
        choices=("schedule", "serve"),
        default="schedule",
        help="what to trace: one compile+replay pipeline run, or a small "
        "batched serve run",
    )
    trace_export.add_argument("--dim", type=int, default=512)
    trace_export.add_argument("--length", type=int, default=64)
    trace_export.add_argument("--requests", type=int, default=32)
    trace_export.add_argument("--seed", type=int, default=0)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="serving-throughput benchmark (same gates as CI)",
    )
    bench_serve.add_argument("--json", default=None, dest="json_path")

    spmv = commands.add_parser("spmv", help="run a scheduled SpMV")
    spmv.add_argument("schedule", help="schedule artifact file")
    spmv.add_argument("--seed", type=int, default=0, help="input vector seed")
    spmv.add_argument(
        "--backend",
        default="auto",
        help="execution backend (a registered name, 'auto', or "
        "'legacy-scatter'; see `repro backends`)",
    )
    spmv.add_argument(
        "--cycle-accurate",
        action="store_true",
        help="run the hardware machine instead of the fast replay",
    )

    backends = commands.add_parser(
        "backends",
        help="list execution backends, capability flags, and probe verdicts",
    )
    backends.add_argument(
        "--dim", type=int, default=256,
        help="probe matrix dimension (a small synthetic workload)",
    )

    inspect = commands.add_parser("inspect", help="describe a saved schedule")
    inspect.add_argument("schedule", help="schedule artifact file")

    chaos = commands.add_parser(
        "chaos",
        help="run the fault-injected serve smoke (seeded chaos gate)",
    )
    chaos.add_argument(
        "--seed", type=int, default=1234,
        help="fault-plan seed; the same seed replays the same faults",
    )
    chaos.add_argument(
        "--threads", type=int, default=100,
        help="concurrent client threads in the serve phase",
    )

    lint = commands.add_parser(
        "lint", help="run the project contract checker (rules R1-R9)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on warnings (unused/unknown # lint: disable "
        "suppressions)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print rule IDs and exit"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        dest="output_format",
        help="output as human text, machine JSON, or GitHub workflow "
        "annotations",
    )
    lint.add_argument(
        "--update-api",
        action="store_true",
        help="regenerate api_manifest.json from the tree before the R8 "
        "drift check (makes an API change deliberate)",
    )
    lint.add_argument(
        "--api-manifest",
        default=None,
        metavar="PATH",
        help="explicit API manifest for R8 (default: the checked-in "
        "src/repro/api_manifest.json when linting the whole package)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental findings cache (re-parse everything)",
    )

    compare = commands.add_parser(
        "compare", help="run all accelerator models on one matrix"
    )
    compare.add_argument("matrix", help="MatrixMarket file")
    compare.add_argument("--length", type=int, default=256)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", help="experiment name (e.g. fig7, table4)")
    experiment.add_argument("--scale", type=float, default=None)

    report = commands.add_parser(
        "report", help="run every experiment; write a markdown report"
    )
    report.add_argument("--out", required=True)
    report.add_argument(
        "--quick", action="store_true",
        help="skip the slow experiments (fig7/fig8/fig9/table4)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset:
        matrix = load_dataset(args.dataset, scale=args.scale)
    elif args.family == "uniform":
        matrix = uniform_random(args.dim, args.dim, args.density, seed=args.seed)
    elif args.family == "power_law":
        matrix = power_law(args.dim, args.dim, args.density, seed=args.seed)
    elif args.family == "k_regular":
        matrix = k_regular(args.dim, args.dim, args.k, seed=args.seed)
    elif args.family == "banded":
        bandwidth = max(1, int(args.density * args.dim / 2))
        matrix = banded(args.dim, args.dim, bandwidth, seed=args.seed)
    else:
        block = max(2, int(args.density * args.dim))
        matrix = block_diagonal(args.dim, args.dim, block, seed=args.seed)
    write_matrix_market(matrix, args.out)
    print(f"wrote {matrix} to {args.out}")
    return 0


def _lookup_kind(notes: dict[str, float]) -> str:
    """Human label for which cache path served one preprocess call."""
    if notes.get("disk_hit"):
        return "disk refresh" if notes.get("cache_refresh") else "disk hit"
    if notes.get("cache_refresh"):
        return "refresh"
    if notes.get("cache_hit"):
        return "hit"
    return "cold"


def _cmd_schedule(args: argparse.Namespace) -> int:
    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    matrix = read_matrix_market(args.matrix)
    store = None
    if not args.no_disk_cache:
        store = DiskScheduleStore(directory=args.cache_dir)
    pipeline = GustPipeline(
        args.length,
        algorithm=args.algorithm,
        load_balance=not args.no_load_balance,
        cache=args.cache_size if args.cache_size > 0 else None,
        store=store,
        jobs=args.jobs,
    )
    schedule, balanced, report = pipeline.preprocess(matrix)
    first_kind = _lookup_kind(report.notes)
    for repeat in range(1, args.repeats):
        schedule, balanced, repeat_report = pipeline.preprocess(matrix)
        kind = _lookup_kind(repeat_report.notes)
        print(
            f"repeat {repeat}: {repeat_report.seconds * 1e3:.2f} ms ({kind})"
        )
    save_schedule(args.out, schedule, balanced)
    print(
        f"scheduled {matrix} with length-{args.length} {args.algorithm}: "
        f"{schedule.window_count} windows, {schedule.total_colors} slots, "
        f"{schedule.execution_cycles} cycles/SpMV, "
        f"utilization {schedule.utilization:.1%}, "
        f"preprocessing {report.seconds * 1e3:.1f} ms ({first_kind}) "
        f"-> {args.out}"
    )
    if pipeline.cache is not None:
        stats = pipeline.cache.stats
        line = (
            f"schedule cache: {stats.hits} hits, {stats.refreshes} refreshes, "
            f"{stats.misses} misses (hit rate {stats.hit_rate:.0%})"
        )
        if store is not None:
            line += (
                f"; disk: {stats.disk_hits} hits, "
                f"{store.stats.writes} writes -> {store.directory}"
            )
        print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro import obs
    from repro.obs import trace as trace_mod
    from repro.serve import BatchPolicy, MatrixRegistry, SpmvClient, SpmvServer

    if args.requests < 1 or args.clients < 1:
        print("error: --requests and --clients must be >= 1", file=sys.stderr)
        return 2
    metrics_registry = None
    exporter = None
    if args.metrics_port is not None:
        metrics_registry = obs.MetricsRegistry()
        exporter = obs.MetricsExporter(
            metrics_registry, port=args.metrics_port
        ).start()
        print(
            f"metrics: {exporter.url}/metrics "
            f"(health: {exporter.url}/healthz)"
        )
    tracer = obs.Tracer(enabled=True) if args.trace else None
    store = None
    if not args.no_disk_cache:
        store = DiskScheduleStore(directory=args.cache_dir)
    registry = MatrixRegistry(
        length=args.length, algorithm=args.algorithm, store=store
    )
    server = SpmvServer(
        registry=registry,
        policy=BatchPolicy(
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            max_queue=max(args.queue_size, args.max_batch),
        ),
        workers=args.workers,
        metrics_registry=metrics_registry,
    )
    entries = {}
    if args.matrix:
        for path in args.matrix:
            name = Path(path).stem
            entries[name] = server.register(name, read_matrix_market(path))
    else:
        for index in range(max(1, args.tenants)):
            name = f"tenant{index}"
            entries[name] = server.register(
                name,
                uniform_random(
                    args.dim,
                    args.dim,
                    args.density,
                    seed=args.seed + index,
                ),
            )
    for name, entry in sorted(entries.items()):
        report = entry.preprocess
        print(
            f"registered {name}: {entry.matrix} "
            f"({report.seconds * 1e3:.1f} ms, {_lookup_kind(report.notes)}; "
            f"batch backend {entry.stacked.backend})"
        )

    client = SpmvClient(server)
    names = sorted(entries)
    per_client = -(-args.requests // args.clients)
    mismatches = []
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        rng = np.random.default_rng(args.seed + 7000 + index)
        for request in range(per_client):
            name = names[(index + request) % len(names)]
            entry = entries[name]
            x = rng.normal(size=entry.shape[1])
            y = client.spmv(name, x, timeout=60.0, retries=50)
            if not (np.asarray(y) == entry.execute(x)).all():
                with lock:
                    mismatches.append(name)

    with trace_mod.overridden(tracer):
        with server:
            threads = [
                threading.Thread(target=client_loop, args=(i,))
                for i in range(args.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    # Snapshot only after stop() has joined the workers: a worker records
    # a batch's metrics after resolving its futures, so an in-flight
    # snapshot could still miss the final batch.
    stats = server.stats()
    print(stats.render())
    if tracer is not None:
        events = tracer.export(args.trace)
        print(f"trace: wrote {events} events to {args.trace}")
    if exporter is not None:
        if args.metrics_linger_s > 0:
            print(
                f"metrics: lingering {args.metrics_linger_s:.0f}s "
                f"at {exporter.url}/metrics"
            )
            time.sleep(args.metrics_linger_s)
        exporter.stop()
    verified = not mismatches and stats.completed == per_client * args.clients
    print(f"verified={verified} (exact match against per-request replay)")
    return 0 if verified else 1


def _stats_workload(args: argparse.Namespace) -> "object":
    """Drive a small in-process serve run; returns its populated
    metrics registry (the ``repro stats`` no-exporter path)."""
    from repro import obs
    from repro.serve import SpmvClient, SpmvServer

    registry = obs.MetricsRegistry()
    server = SpmvServer(workers=1, metrics_registry=registry)
    server.register(
        "demo",
        uniform_random(args.dim, args.dim, 0.02, seed=args.seed),
        length=32,
    )
    rng = np.random.default_rng(args.seed)
    with server:
        client = SpmvClient(server)
        for _ in range(args.requests):
            client.spmv("demo", rng.normal(size=args.dim), timeout=30.0)
    return registry


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as json_mod
    import urllib.error
    import urllib.request

    if args.url is not None:
        base = args.url.rstrip("/")
        path = "/metrics.json" if args.json else "/metrics"
        try:
            with urllib.request.urlopen(base + path, timeout=10.0) as reply:
                payload = reply.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as error:
            print(f"error: scrape of {base + path} failed: {error}",
                  file=sys.stderr)
            return 1
        print(payload, end="" if payload.endswith("\n") else "\n")
        return 0
    registry = _stats_workload(args)
    if args.json:
        print(json_mod.dumps(registry.to_json(), indent=2, sort_keys=True))
    else:
        print(registry.render_prometheus(), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs import trace as trace_mod

    tracer = obs.Tracer(enabled=True)
    with trace_mod.overridden(tracer):
        if args.workload == "serve":
            _stats_workload(args)
        else:
            pipeline = GustPipeline(length=args.length, cache=True)
            matrix = uniform_random(
                args.dim, args.dim, 0.02, seed=args.seed
            )
            schedule, balanced, _report = pipeline.preprocess(matrix)
            rng = np.random.default_rng(args.seed)
            for _ in range(8):
                pipeline.execute(schedule, balanced, rng.normal(size=args.dim))
            # A second preprocess of the same pattern: the trace shows
            # the memory-tier hit next to the cold compile phases.
            pipeline.preprocess(matrix)
    events = tracer.export(args.out)
    print(
        f"wrote {events} trace events to {args.out} "
        f"(open in chrome://tracing or ui.perfetto.dev)"
    )
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve import bench

    results = bench.run(args.json_path)
    failures = bench.failures(results)
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"PASS: batched serving >= {bench.MIN_BATCH_SPEEDUP:.1f}x at batch "
        f">= {bench.GATE_MIN_BATCH}, bit-identical, threaded run clean"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = DiskScheduleStore(directory=args.cache_dir)
    if args.cache_command == "stats":
        count = store.artifact_count()
        total = store.total_bytes()
        print(f"schedule store: {store.directory}")
        print(
            f"  {count} artifacts, {total / 1e6:.2f} MB "
            f"(budget {store.max_bytes / 1e6:.0f} MB)"
        )
        quarantined = store.quarantined_count()
        if quarantined:
            print(
                f"  {quarantined} corrupt artifact(s) quarantined in "
                f"{store.quarantine_dir}"
            )
        return 0
    removed = store.clear()
    print(f"cleared {removed} artifacts from {store.directory}")
    return 0


def _cmd_spmv(args: argparse.Namespace) -> int:
    schedule, balanced = load_schedule(args.schedule)
    pipeline = GustPipeline(schedule.length, backend=args.backend)
    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=schedule.shape[1])
    if args.cycle_accurate:
        y, machine = pipeline.execute_cycle_accurate(schedule, balanced, x)
        print(
            f"machine run: {machine.cycles} cycles, "
            f"{machine.multiplier_ops} multiplies, "
            f"max FIFO depth {machine.max_fifo_depth}"
        )
    else:
        compiled = pipeline.compile_schedule(schedule, balanced)
        y = compiled.matvec(x)
        print(
            f"backend: {compiled.backend_name} "
            f"[{compiled.stats.capabilities.describe()}]"
        )
    # Verify against the oracle reconstructed from the balanced matrix.
    expected = balanced.unpermute_output(balanced.matrix.matvec(x))
    ok = np.allclose(y, expected)
    print(
        f"y[0:4] = {np.array2string(y[:4], precision=4)}  "
        f"checksum {float(np.sum(y)):.6g}  verified={ok}"
    )
    return 0 if ok else 1


def _cmd_backends(args: argparse.Namespace) -> int:
    import os

    from repro.core.backends import (
        compile_plan,
        probe_bit_identity,
        registered_backends,
    )
    from repro.eval.tables import render_table
    from repro.sparse.generators import uniform_random

    # A small synthetic workload gives every probe a real plan to chew on.
    matrix = uniform_random(args.dim, args.dim, 0.02, seed=0)
    pipeline = GustPipeline(min(64, args.dim))
    schedule, balanced, _ = pipeline.preprocess(matrix)
    plan = pipeline.plan_for(schedule, balanced)

    rows = []
    for name, backend in registered_backends().items():
        caps = backend.capabilities
        if not backend.available():
            verdict = "unavailable (missing dependency)"
        elif caps.bit_identical:
            probed = probe_bit_identity(backend.compile(plan), plan)
            verdict = "bit-identical" if probed else "PROBE FAILED"
            if caps.probed:
                verdict += " (probed)"
        else:
            verdict = "allclose only"
        rows.append(
            [
                name,
                "yes" if caps.bit_identical else "no",
                "yes" if caps.supports_block else "no",
                "yes" if caps.thread_safe else "no",
                verdict,
            ]
        )
    print(
        render_table(
            ["backend", "bit_identical", "block", "thread_safe", "verdict"],
            rows,
            title=f"registered execution backends "
            f"(probe workload: {args.dim}x{args.dim})",
        )
    )
    auto = compile_plan(plan, backend="auto")
    override = os.environ.get("GUST_BACKEND")
    line = f"auto selects: {auto.name} (bit-identical={auto.bit_identical})"
    if override:
        line += f"  [GUST_BACKEND={override}]"
    print(line)
    print(
        "legacy-scatter (uncompiled pre-plan baseline) is additionally "
        "available through GustPipeline(backend=...)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    schedule, balanced = load_schedule(args.schedule)
    m, n = schedule.shape
    print(f"schedule: length={schedule.length} matrix={m}x{n}")
    print(
        f"  windows={schedule.window_count} slots={schedule.total_colors} "
        f"nnz={schedule.nnz}"
    )
    print(
        f"  cycles/SpMV={schedule.execution_cycles} "
        f"utilization={schedule.utilization:.1%} "
        f"occupancy={schedule.occupancy:.1%}"
    )
    colors = schedule.window_colors
    if colors:
        print(
            f"  window colors: min={min(colors)} max={max(colors)} "
            f"mean={sum(colors) / len(colors):.1f}"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.accelerators import (
        AdderTree,
        Fafnir,
        FlexTpu,
        GustAccelerator,
        Serpens,
        Systolic1D,
    )
    from repro.eval.tables import render_table

    matrix = read_matrix_market(args.matrix)
    length = args.length
    designs = [
        Systolic1D(length),
        AdderTree(length),
        FlexTpu.with_units(length),
        Fafnir(max(2, length // 2)),
        Serpens(),
        GustAccelerator(length, algorithm="naive", load_balance=False),
        GustAccelerator(length, algorithm="matching", load_balance=False),
        GustAccelerator(length, algorithm="matching", load_balance=True),
    ]
    rows = []
    for design in designs:
        report = design.run(matrix)
        rows.append(
            [design.name, report.cycles, f"{report.utilization:.3%}"]
        )
    print(render_table(["design", "cycles", "utilization"], rows,
                       title=f"{args.matrix}: {matrix}"))
    return 0


def _experiment_registry():
    from repro.eval import experiments as experiments_pkg

    return {
        "backends": experiments_pkg.backend_throughput,
        "table1": experiments_pkg.table1_qualities,
        "table2": experiments_pkg.table2_resources,
        "table3": experiments_pkg.table3_datasets,
        "table4": experiments_pkg.table4_serpens,
        "table5": experiments_pkg.table5_partitions,
        "fig7": experiments_pkg.fig7_utilization,
        "fig8": experiments_pkg.fig8_speedup,
        "fig9": experiments_pkg.fig9_bandwidth,
        "naive_crossover": experiments_pkg.naive_crossover,
        "bound": experiments_pkg.bound_validation,
        "scalability": experiments_pkg.scalability,
        "ablation": experiments_pkg.coloring_ablation,
        "length_sweep": experiments_pkg.length_sweep,
        "structure": experiments_pkg.structure_sensitivity,
        "bandwidth": experiments_pkg.bandwidth_provisioning,
    }


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.name not in registry:
        print(
            f"unknown experiment {args.name!r}; choose from "
            f"{', '.join(sorted(registry))}",
            file=sys.stderr,
        )
        return 2
    module = registry[args.name]
    kwargs = {}
    if args.scale is not None:
        import inspect as _inspect

        if "scale" in _inspect.signature(module.run).parameters:
            kwargs["scale"] = args.scale
    result = module.run(**kwargs)
    print(result.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.serve.chaos import run_chaos

    report = run_chaos(seed=args.seed, threads=args.threads)
    print(report.render())
    return 0 if report.passed() else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULE_DOCS, lint_paths

    if args.list_rules:
        for rule_id in sorted(RULE_DOCS):
            print(f"{rule_id}  {RULE_DOCS[rule_id]}")
        return 0
    report = lint_paths(
        [Path(p) for p in args.paths] or None,
        use_cache=not args.no_cache,
        api_manifest=Path(args.api_manifest) if args.api_manifest else None,
        update_api=args.update_api,
    )
    if args.output_format == "json":
        print(report.to_json())
    elif args.output_format == "github":
        print(report.render_github())
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import render_markdown, run_all

    registry = _experiment_registry()
    if args.quick:
        slow = {"fig7", "fig8", "fig9", "table1", "table4"}
        registry = {k: v for k, v in registry.items() if k not in slow}
    results = run_all(registry)
    Path(args.out).write_text(render_markdown(results), encoding="utf-8")
    print(f"wrote report on {len(results)} experiments to {args.out}")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "schedule": _cmd_schedule,
    "cache": _cmd_cache,
    "spmv": _cmd_spmv,
    "backends": _cmd_backends,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "bench-serve": _cmd_bench_serve,
    "inspect": _cmd_inspect,
    "chaos": _cmd_chaos,
    "lint": _cmd_lint,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
