"""Power iteration / PageRank-style dominant eigenvector on GUST.

Graph analysis is one of the paper's motivating workloads; PageRank is
repeated SpMV against a (damped, column-stochastic) adjacency matrix —
ideal for schedule reuse.  With a cached pipeline
(``GustPipeline(..., cache=...)``) even re-running the iteration on an
edge-reweighted graph (same topology, new weights) skips the coloring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import GustPipeline
from repro.errors import SolverError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class PowerIterationResult:
    vector: np.ndarray
    eigenvalue: float
    iterations: int
    converged: bool
    spmv_count: int


def power_iteration(
    matrix: CooMatrix,
    pipeline: GustPipeline | None = None,
    tol: float = 1e-9,
    max_iterations: int = 500,
    seed: int = 0,
) -> PowerIterationResult:
    """Dominant eigenpair of ``A`` by repeated scheduled SpMV."""
    m, n = matrix.shape
    if m != n:
        raise SolverError(
            f"power iteration needs a square matrix, got {matrix.shape}"
        )
    if n == 0:
        raise SolverError("matrix is empty")

    pipeline = pipeline or GustPipeline(length=min(64, max(1, n)))
    # Compile the replay once (bit-identical backend required); every
    # iteration below calls the compiled handle.
    apply_a = pipeline.compile(matrix, require_bit_identical=True).matvec

    rng = np.random.default_rng(seed)
    v = rng.normal(size=n)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    spmv_count = 0
    for iteration in range(1, max_iterations + 1):
        w = apply_a(v)
        spmv_count += 1
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            raise SolverError("matrix annihilated the iterate (A v = 0)")
        v_next = w / norm
        new_eigenvalue = float(v_next @ apply_a(v_next))
        spmv_count += 1
        if abs(new_eigenvalue - eigenvalue) <= tol * max(1.0, abs(new_eigenvalue)):
            return PowerIterationResult(
                vector=v_next,
                eigenvalue=new_eigenvalue,
                iterations=iteration,
                converged=True,
                spmv_count=spmv_count,
            )
        v = v_next
        eigenvalue = new_eigenvalue

    return PowerIterationResult(
        vector=v,
        eigenvalue=eigenvalue,
        iterations=max_iterations,
        converged=False,
        spmv_count=spmv_count,
    )
