"""Iterative solvers built on accelerated SpMV.

The paper motivates GUST with iterative linear-algebra workloads: the
scheduling cost is paid once per matrix, then every iteration's SpMV runs
on the dense scheduled stream (Section 5.3's crankseg_2 walkthrough: 4.32 s
of preprocessing, then 0.6 ms per SpMV).  These solvers exercise exactly
that pattern through the public pipeline API and double as realistic
integration tests.
"""

from repro.solvers.cg import ConjugateGradientResult, conjugate_gradient
from repro.solvers.jacobi import JacobiResult, jacobi
from repro.solvers.power_iteration import PowerIterationResult, power_iteration

__all__ = [
    "ConjugateGradientResult",
    "JacobiResult",
    "PowerIterationResult",
    "conjugate_gradient",
    "jacobi",
    "power_iteration",
]
