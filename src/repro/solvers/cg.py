"""Conjugate gradient on a GUST-scheduled operator.

Solves ``A x = b`` for symmetric positive-definite ``A``.  The matrix is
scheduled once; each iteration replays the schedule against a new direction
vector — the precise amortization argument of Section 5.3.

Pass a shared ``GustPipeline(..., cache=...)`` when solving a *sequence*
of systems whose matrices keep one sparsity pattern (e.g. re-assembled
stiffness matrices): ``preprocess_seconds`` then collapses to the cache's
value-refresh cost for every solve after the first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import GustPipeline
from repro.errors import SolverError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class ConjugateGradientResult:
    """Solution plus convergence/accounting data."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_count: int
    total_accelerator_cycles: int
    preprocess_seconds: float


def conjugate_gradient(
    matrix: CooMatrix,
    b: np.ndarray,
    pipeline: GustPipeline | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
) -> ConjugateGradientResult:
    """Solve ``A x = b`` with CG, every SpMV through the GUST pipeline."""
    m, n = matrix.shape
    if m != n:
        raise SolverError(f"CG needs a square matrix, got {matrix.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise SolverError(f"b has shape {b.shape}, expected ({n},)")
    if tol <= 0:
        raise SolverError("tol must be positive")

    pipeline = pipeline or GustPipeline(length=min(64, max(1, n)))
    # Compile the replay once (bit-identical backend required); every
    # iteration below calls the compiled handle.
    compiled = pipeline.compile(matrix, require_bit_identical=True)
    report = compiled.stats.preprocess
    cycles_per_spmv = compiled.stats.cycles_per_replay
    apply_a = compiled.matvec

    x = np.zeros(n, dtype=np.float64)
    r = b.copy()
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b))
    threshold = tol * max(b_norm, 1e-300)

    spmv_count = 0
    for iteration in range(1, max_iterations + 1):
        ap = apply_a(p)
        spmv_count += 1
        denom = float(p @ ap)
        if denom <= 0.0:
            raise SolverError(
                "matrix is not positive definite (p^T A p <= 0 in CG)"
            )
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) <= threshold:
            return ConjugateGradientResult(
                x=x,
                iterations=iteration,
                residual_norm=float(np.sqrt(rs_new)),
                converged=True,
                spmv_count=spmv_count,
                total_accelerator_cycles=spmv_count * cycles_per_spmv,
                preprocess_seconds=report.seconds,
            )
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    return ConjugateGradientResult(
        x=x,
        iterations=max_iterations,
        residual_norm=float(np.sqrt(rs_old)),
        converged=False,
        spmv_count=spmv_count,
        total_accelerator_cycles=spmv_count * cycles_per_spmv,
        preprocess_seconds=report.seconds,
    )
