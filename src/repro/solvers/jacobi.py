"""Jacobi iteration on a GUST-scheduled operator.

Solves ``A x = b`` for diagonally dominant ``A`` via
``x' = D^-1 (b - R x)``.  Exercises the paper's pattern-reuse path: the
off-diagonal operator ``R`` shares its schedule across all iterations.

Pass a shared ``GustPipeline(..., cache=...)`` when solving a *sequence*
of systems whose matrices keep one sparsity pattern (time-stepped or
Newton-style re-assembly): the schedule cache then skips the edge coloring
for every solve after the first, refreshing only the value stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import GustPipeline
from repro.errors import SolverError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class JacobiResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_count: int


def jacobi(
    matrix: CooMatrix,
    b: np.ndarray,
    pipeline: GustPipeline | None = None,
    tol: float = 1e-8,
    max_iterations: int = 500,
) -> JacobiResult:
    """Solve ``A x = b`` with Jacobi sweeps, R applied through GUST."""
    m, n = matrix.shape
    if m != n:
        raise SolverError(f"Jacobi needs a square matrix, got {matrix.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise SolverError(f"b has shape {b.shape}, expected ({n},)")

    on_diag = matrix.rows == matrix.cols
    diag = np.zeros(n, dtype=np.float64)
    diag[matrix.rows[on_diag]] = matrix.data[on_diag]
    if (diag == 0.0).any():
        raise SolverError("Jacobi requires a nonzero diagonal")

    off = CooMatrix.from_arrays(
        matrix.rows[~on_diag],
        matrix.cols[~on_diag],
        matrix.data[~on_diag],
        matrix.shape,
    )
    pipeline = pipeline or GustPipeline(length=min(64, max(1, n)))
    # Compile the replay once (solver replay requires exact, bit-identical
    # accumulation — an allclose-only backend is a typed error here);
    # every sweep below calls the compiled handle.
    apply_r = pipeline.compile(off, require_bit_identical=True).matvec

    x = np.zeros(n, dtype=np.float64)
    b_norm = float(np.linalg.norm(b))
    threshold = tol * max(b_norm, 1e-300)
    spmv_count = 0
    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        rx = apply_r(x)
        spmv_count += 1
        x = (b - rx) / diag
        # True residual of the new iterate: b - A x = b - R x - D x.
        rx_next = apply_r(x)
        spmv_count += 1
        residual = float(np.linalg.norm(b - rx_next - diag * x))
        if residual <= threshold:
            return JacobiResult(
                x=x,
                iterations=iteration,
                residual_norm=residual,
                converged=True,
                spmv_count=spmv_count,
            )
    return JacobiResult(
        x=x,
        iterations=max_iterations,
        residual_norm=residual,
        converged=False,
        spmv_count=spmv_count,
    )
