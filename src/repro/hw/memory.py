"""Off-chip/on-chip memory traffic model and the Buffer Filler stream.

Section 4 of the paper counts energy for off-chip and on-chip reads and
writes and sizes the Buffer Filler's double buffer at twice one timestep of
input (36,866 bits for length 256).  This module tracks those quantities for
one SpMV so the energy model can price them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareConfigError

#: Matrix values and vector values are 32-bit floats in the paper.
VALUE_BITS = 32
#: Col_sch entries are assumed 32-bit (Section 3.3, "Streaming the Inputs").
COL_INDEX_BITS = 32


def row_index_bits(length: int) -> int:
    """Bits per Row_sch entry: log2(l), since it indexes 1..l."""
    if length <= 0:
        raise HardwareConfigError(f"length must be positive, got {length}")
    return max(1, (length - 1).bit_length())


def timestep_bits(length: int) -> int:
    """Bits streamed per timestep: matrix + vector + row indices + dump.

    Matches the paper's 18,433-logical-input accounting for length 256
    (256*32 matrix + 256*32 vector + 256*8 index + 1 dump), in bits:
    256*32*2 + 256*8 + 1 = 18,433 wires; doubled on chip for the Buffer
    Filler's ping-pong buffer.
    """
    return length * VALUE_BITS * 2 + length * row_index_bits(length) + 1


def buffer_filler_bits(length: int) -> int:
    """On-chip double-buffer size in bits (twice one timestep)."""
    return 2 * timestep_bits(length)


@dataclass
class StreamStats:
    """Counts of memory events accumulated while streaming one SpMV."""

    offchip_read_words: int = 0
    offchip_write_words: int = 0
    onchip_read_words: int = 0
    onchip_write_words: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "StreamStats") -> "StreamStats":
        return StreamStats(
            offchip_read_words=self.offchip_read_words + other.offchip_read_words,
            offchip_write_words=self.offchip_write_words + other.offchip_write_words,
            onchip_read_words=self.onchip_read_words + other.onchip_read_words,
            onchip_write_words=self.onchip_write_words + other.onchip_write_words,
            extra={**self.extra, **other.extra},
        )


class MemoryModel:
    """Counts 32-bit-word traffic for the GUST streaming protocol.

    The protocol (Section 3.3, "Streaming the Inputs"):

    1. The whole input vector moves off-chip -> Buffer Filler on-chip memory.
    2. Per timestep, one partition of M_sch / Row_sch / Col_sch moves
       off-chip -> on-chip (double buffered).
    3. The Buffer Filler writes the four input buffers on-chip; vector
       entries are read back from on-chip memory via Col_sch.
    4. Output vector elements are written back off-chip on dump.
    """

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length
        self.stats = StreamStats()

    def stream_vector_in(self, n: int) -> None:
        """Step 1: vector from off-chip memory into the Buffer Filler."""
        self.stats.offchip_read_words += n
        self.stats.onchip_write_words += n

    def stream_timestep(self, valid_lanes: int) -> None:
        """Steps 2-3 for one timestep with ``valid_lanes`` scheduled nonzeros.

        Each nonzero moves one matrix word, one Col_sch word and one Row_sch
        word off-chip -> on-chip, then the filler reads the vector word from
        on-chip memory and writes the four input buffers.
        """
        words_in = 3 * valid_lanes
        self.stats.offchip_read_words += words_in
        self.stats.onchip_write_words += words_in
        # Vector gather + buffer fill are on-chip reads/writes.
        self.stats.onchip_read_words += 2 * valid_lanes
        self.stats.onchip_write_words += 2 * valid_lanes

    def write_outputs(self, count: int) -> None:
        """Step 4: dumped output elements written back off-chip."""
        self.stats.offchip_write_words += count
        self.stats.onchip_read_words += count
