"""Reusable hardware primitives for the cycle-accurate GUST machine.

These model the boxes in the paper's Figure 2: FIFO input buffers, the
multiplier and adder banks, the crossbar connector, and the off-/on-chip
memory with the Buffer Filler's double-buffered streaming.
"""

from repro.hw.arith import AdderBank, MultiplierBank
from repro.hw.crossbar import Crossbar
from repro.hw.fifo import Fifo
from repro.hw.memory import MemoryModel, StreamStats

__all__ = [
    "AdderBank",
    "Crossbar",
    "Fifo",
    "MemoryModel",
    "MultiplierBank",
    "StreamStats",
]
