"""The crossbar connector: routes partial products to adders by row index.

Section 3.2: the connector's first ``l`` inputs are partial products from the
multipliers; the second ``l`` inputs are indices that say which adder each
product goes to.  Routing two valid products to one adder in the same cycle
is a collision — the exact failure mode the edge-coloring scheduler
eliminates — and the model raises :class:`CollisionError` when it happens.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CollisionError, HardwareConfigError


class Crossbar:
    """An ``l``-to-``l`` crossbar with collision detection."""

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length
        self.routed_count = 0

    def route(
        self, products: np.ndarray, indices: np.ndarray, valid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One cycle of routing.

        Args:
            products: partial products from the multipliers (length l).
            indices: destination adder per lane (length l; ignored when
                invalid).
            valid: lanes carrying real data this cycle.

        Returns:
            (routed, routed_valid): per-adder input value and validity.

        Raises:
            CollisionError: two valid lanes named the same adder.
        """
        if products.shape != (self.length,) or indices.shape != (self.length,):
            raise HardwareConfigError("lane count mismatch at crossbar")
        routed = np.zeros(self.length, dtype=np.float64)
        routed_valid = np.zeros(self.length, dtype=bool)
        dests = indices[valid]
        if dests.size:
            if dests.min() < 0 or dests.max() >= self.length:
                raise HardwareConfigError("crossbar destination out of range")
            occupied = np.bincount(dests, minlength=self.length)
            if (occupied > 1).any():
                clashing = int(np.argmax(occupied))
                raise CollisionError(
                    f"{int(occupied[clashing])} partial products routed to "
                    f"adder {clashing} in one cycle"
                )
            routed[dests] = products[valid]
            routed_valid[dests] = True
            self.routed_count += int(dests.size)
        return routed, routed_valid
