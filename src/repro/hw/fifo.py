"""A bounded FIFO buffer with push/pop accounting.

GUST's four input streams (matrix elements, vector elements, row indices,
dump signals) each flow through one FIFO per lane (Figure 2).  The machine
uses one :class:`Fifo` per lane per stream; ``None`` entries model bubbles
(slots with no nonzero scheduled).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import HardwareConfigError


class Fifo:
    """First-in first-out queue with optional capacity and depth tracking."""

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise HardwareConfigError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._queue: deque[Any] = deque()
        self._max_depth = 0
        self._total_pushed = 0

    def push(self, item: Any) -> None:
        """Append an item; raises if the buffer is full."""
        if self._capacity is not None and len(self._queue) >= self._capacity:
            raise HardwareConfigError("FIFO overflow")
        self._queue.append(item)
        self._total_pushed += 1
        if len(self._queue) > self._max_depth:
            self._max_depth = len(self._queue)

    def pop(self) -> Any:
        """Remove and return the oldest item; raises on empty pop."""
        if not self._queue:
            raise HardwareConfigError("FIFO underflow")
        return self._queue.popleft()

    def peek(self) -> Any:
        """Return the oldest item without removing it."""
        if not self._queue:
            raise HardwareConfigError("FIFO empty")
        return self._queue[0]

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def max_depth(self) -> int:
        """High-water mark, for sizing the physical buffer."""
        return self._max_depth

    @property
    def total_pushed(self) -> int:
        return self._total_pushed
