"""Multiplier and adder banks with per-cycle activity accounting.

The banks record how many units performed a nonzero operation each cycle,
which is exactly the numerator of the paper's hardware-utilization metric.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareConfigError


class MultiplierBank:
    """``length`` multipliers; lane j multiplies a matrix and vector element."""

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length
        self.active_ops = 0

    def cycle(
        self, matrix_elems: np.ndarray, vector_elems: np.ndarray, valid: np.ndarray
    ) -> np.ndarray:
        """One cycle: elementwise products on valid lanes, NaN elsewhere.

        Returns the partial-product vector handed to the crossbar.
        """
        if matrix_elems.shape != (self.length,) or vector_elems.shape != (self.length,):
            raise HardwareConfigError("lane count mismatch at multiplier bank")
        products = np.where(valid, matrix_elems * vector_elems, np.nan)
        self.active_ops += int(valid.sum())
        return products


class AdderBank:
    """``length`` accumulators; adder i holds the partial sum of one row.

    ``accumulate`` adds routed partial products; ``dump`` emits and clears a
    lane's stored value (the dump-signal path of Figure 2).
    """

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length
        self.active_ops = 0
        self._stored = np.zeros(length, dtype=np.float64)

    def accumulate(self, routed: np.ndarray, valid: np.ndarray) -> None:
        """One cycle: stored[i] += routed[i] on valid lanes."""
        if routed.shape != (self.length,):
            raise HardwareConfigError("lane count mismatch at adder bank")
        self._stored[valid] += routed[valid]
        self.active_ops += int(valid.sum())

    def dump(self, lanes: np.ndarray) -> np.ndarray:
        """Emit and zero the stored values of ``lanes``."""
        values = self._stored[lanes].copy()
        self._stored[lanes] = 0.0
        return values

    @property
    def stored(self) -> np.ndarray:
        """Read-only view of the accumulator state (for tests)."""
        return self._stored.copy()
