"""Tracing: nested spans with a genuinely free disabled path.

A :class:`Tracer` records **spans** — named, timed regions entered as
context managers — into a bounded ring buffer, with per-thread span
stacks so nesting is tracked even under concurrent server workers.  The
buffer exports as Chrome trace-event JSON (:meth:`Tracer.chrome_trace`),
loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

The overhead contract
---------------------

Tracing is off by default and the disabled path must be *free enough to
leave in the replay hot loop*: ``benchmarks/bench_replay_throughput.py``
gates instrumented replay at <=3% over the bare kernel with tracing
disabled.  :func:`span` therefore does one ambient lookup (a module
global read, else one environment read) and returns a shared no-op
context manager — no allocation, no clock call, no string work.

Activation mirrors :mod:`repro.faults`: components may take an explicit
tracer, tests use :func:`overridden`, and setting ``GUST_TRACE`` to
anything but ``0``/``false``/``off`` activates a process-wide ambient
tracer.  ``GUST_TRACE_OUT=<path>`` additionally writes the Chrome JSON
at interpreter exit.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Any

from repro.obs import clock as _clock

#: Spans retained by default.  At ~120 bytes/span this bounds a tracer
#: left on for hours to a few MB instead of growing without bound.
DEFAULT_CAPACITY = 65536

#: Environment variables activating an ambient tracer.
ENV_TRACE = "GUST_TRACE"
ENV_TRACE_OUT = "GUST_TRACE_OUT"

#: ``GUST_TRACE`` values (lowercased) that mean "disabled".
_FALSY = frozenset({"", "0", "false", "off", "no"})


class _NullSpan:
    """The shared disabled-path span: enter/exit/annotate do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **args: Any) -> None:
        pass


#: The single no-op instance every disabled :func:`span` call returns.
NULL_SPAN = _NullSpan()


class _Span:
    """One live span: times itself and records on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._push(self.name)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._pop(self, self._start, end - self._start)
        return False

    def annotate(self, **args: Any) -> None:
        """Attach key/value arguments visible in the trace viewer."""
        self.args.update(args)


class Tracer:
    """Span recorder with bounded retention and Chrome JSON export.

    Args:
        enabled: when ``False`` every :meth:`span` returns the shared
            no-op span.  Installing a disabled tracer ambiently is the
            way to force tracing *off* regardless of ``GUST_TRACE``.
        clock: monotonic time source (injectable for deterministic
            tests); defaults to the obs clock seam.
        capacity: ring-buffer bound; the oldest spans fall off first.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock=None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.enabled = enabled
        self.capacity = capacity
        self._clock = clock or _clock.monotonic
        self._epoch = self._clock()
        self._lock = threading.Lock()
        # Ring of (name, cat, ph, ts_s, dur_s, tid, depth, args).
        self._events: list[tuple] = []
        self._head = 0  # next overwrite position once full
        self._dropped = 0
        self._local = threading.local()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, cat: str = "", **args: Any):
        """A context manager timing one named region (nestable)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """A zero-duration marker event (e.g. a request enqueue)."""
        if not self.enabled:
            return
        now = self._clock()
        self._record(
            (name, cat, "i", now - self._epoch, 0.0,
             threading.get_ident(), self._depth(), args)
        )

    def _depth(self) -> int:
        return len(getattr(self._local, "stack", ()))

    def _push(self, name: str) -> int:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(name)
        return len(stack) - 1

    def _pop(self, span: _Span, start: float, duration: float) -> None:
        self._local.stack.pop()
        self._record(
            (span.name, span.cat, "X", start - self._epoch, duration,
             threading.get_ident(), span._depth, span.args)
        )

    def _record(self, event: tuple) -> None:
        with self._lock:
            if len(self._events) < self.capacity:
                self._events.append(event)
            else:
                self._events[self._head] = event
                self._head = (self._head + 1) % self.capacity
                self._dropped += 1

    # -- introspection and export --------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring since construction (or clear)."""
        with self._lock:
            return self._dropped

    def events(self) -> list[dict]:
        """Retained events oldest-first as plain dicts (for tests)."""
        with self._lock:
            ordered = self._events[self._head:] + self._events[:self._head]
        return [
            {
                "name": name, "cat": cat, "ph": ph, "ts_s": ts,
                "dur_s": dur, "tid": tid, "depth": depth, "args": args,
            }
            for name, cat, ph, ts, dur, tid, depth, args in ordered
        ]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._head = 0
            self._dropped = 0

    def chrome_trace(self) -> dict:
        """The retained spans as a Chrome trace-event JSON object.

        Complete (``ph: X``) events with microsecond ``ts``/``dur``;
        open the written file in ``chrome://tracing`` or Perfetto.
        """
        pid = os.getpid()
        trace_events = []
        for event in self.events():
            record = {
                "name": event["name"],
                "cat": event["cat"] or "gust",
                "ph": event["ph"],
                "ts": event["ts_s"] * 1e6,
                "pid": pid,
                "tid": event["tid"],
            }
            if event["ph"] == "X":
                record["dur"] = event["dur_s"] * 1e6
            if event["ph"] == "i":
                record["s"] = "t"  # thread-scoped instant
            if event["args"]:
                record["args"] = {
                    key: value if isinstance(
                        value, (int, float, str, bool, type(None))
                    ) else repr(value)
                    for key, value in event["args"].items()
                }
            trace_events.append(record)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export(self, path) -> int:
        """Write :meth:`chrome_trace` JSON to ``path``; returns #events."""
        trace = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
        return len(trace["traceEvents"])


# -- ambient activation -------------------------------------------------------

_AMBIENT_LOCK = threading.Lock()
_INSTALLED: Tracer | None = None
#: raw ``GUST_TRACE`` value -> tracer (or ``None`` when falsy), so the
#: disabled steady state costs one environment read and one comparison.
_ENV_CACHE: tuple[str | None, Tracer | None] | None = None


def install(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with ``None``) the process-wide ambient tracer.

    An installed tracer takes precedence over ``GUST_TRACE`` — including
    a *disabled* one, which forces tracing off.  Returns the previous
    tracer; prefer :func:`overridden`, which restores it for you.
    """
    global _INSTALLED
    with _AMBIENT_LOCK:
        previous = _INSTALLED
        _INSTALLED = tracer
        return previous


class overridden:
    """``with trace.overridden(tracer): ...`` — scoped ambient tracing."""

    def __init__(self, tracer: Tracer | None):
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        self._previous = install(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        install(self._previous)


def active_tracer() -> Tracer | None:
    """The ambient tracer, or ``None`` when tracing is off.

    The installed tracer wins; otherwise ``GUST_TRACE`` decides, with
    the constructed env tracer cached per raw value (monkeypatched tests
    see changes immediately; the steady state is lock-free — module
    global reads are single atomic loads under CPython, mirroring
    :func:`repro.faults.active_plan`).
    """
    global _ENV_CACHE
    installed = _INSTALLED
    if installed is not None:
        return installed if installed.enabled else None
    raw = os.environ.get(ENV_TRACE)
    cached = _ENV_CACHE
    if cached is not None and cached[0] == raw:
        return cached[1]
    with _AMBIENT_LOCK:
        if _ENV_CACHE is not None and _ENV_CACHE[0] == raw:
            return _ENV_CACHE[1]
        if raw is None or raw.strip().lower() in _FALSY:
            tracer = None
        else:
            tracer = Tracer(enabled=True)
            out = os.environ.get(ENV_TRACE_OUT)
            if out:
                atexit.register(tracer.export, out)
        _ENV_CACHE = (raw, tracer)
        return tracer


def span(name: str, cat: str = "", **args: Any):
    """Module-level span against the ambient tracer (no-op when off)."""
    tracer = active_tracer()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "", **args: Any) -> None:
    """Module-level instant marker against the ambient tracer."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.instant(name, cat, **args)
