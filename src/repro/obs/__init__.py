"""Observability: tracing spans, metrics, and export surfaces.

This package is the one sanctioned seam between the library and the
clock/metrics/tracing machinery:

* :mod:`repro.obs.clock` — the injectable monotonic clock every timed
  component in ``core/`` and ``serve/`` routes through (lint rule R6
  forbids ad-hoc ``time.time()``/``time.perf_counter()`` there).
* :mod:`repro.obs.trace` — nested context-manager spans with a true
  no-op fast path when disabled (the default), Chrome trace-event JSON
  export, and ``GUST_TRACE`` ambient activation.
* :mod:`repro.obs.metrics` — a label-aware registry of counters, gauges
  and fixed-bucket histograms with Prometheus-text and JSON exposition.
* :mod:`repro.obs.http` — a background exporter thread serving
  ``/metrics`` and ``/healthz``.

Like :mod:`repro.faults`, everything here is stdlib-only and imports
nothing from ``repro`` except :mod:`repro.errors`, so any layer (core,
serve, CLI) can instrument itself without import cycles.
"""

from __future__ import annotations

from repro.obs.clock import monotonic
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    default_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    active_tracer,
    install,
    instant,
    overridden,
    span,
)
from repro.obs.http import MetricsExporter

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_SPAN",
    "Tracer",
    "active_tracer",
    "default_registry",
    "install",
    "instant",
    "monotonic",
    "overridden",
    "phase",
    "span",
]


class phase:
    """Time one compile/serve phase: a span *and* a histogram sample.

    ``with obs.phase("coloring"): ...`` emits a ``compile.<name>`` span
    when tracing is active and always observes the elapsed seconds into
    ``gust_compile_phase_seconds{phase=<name>}`` on the default metrics
    registry.  Compile paths are cold (cache misses only), so the
    always-on histogram costs one clock pair per phase.
    """

    __slots__ = ("name", "_span", "_start")

    def __init__(self, name: str):
        self.name = name
        self._span = None
        self._start = 0.0

    def __enter__(self) -> "phase":
        self._span = span(f"compile.{self.name}", cat="compile")
        self._span.__enter__()
        self._start = monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = monotonic() - self._start
        default_registry().histogram(
            "gust_compile_phase_seconds",
            help="Wall time of each schedule-compilation phase.",
        ).observe(elapsed, phase=self.name)
        self._span.__exit__(exc_type, exc, tb)
        return False
