"""Label-aware metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metric **families**; each family
holds one sample per label combination.  Two exposition formats:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text format
  0.0.4 (``# HELP``/``# TYPE`` lines, escaped label values, cumulative
  ``le`` histogram buckets), deterministic: families sort by name and
  samples by label tuple, so goldens are stable.
* :meth:`MetricsRegistry.to_json` — the same data as plain dicts for
  programmatic consumers and ``repro stats --json``.

Two publishing styles coexist.  Hot paths **observe directly** (the
request-latency and batch-size histograms are written per batch —
histograms have fixed bucket boundaries precisely so a long-lived server
costs O(buckets), unlike an unbounded sample list).  Snapshot-style
producers (``CacheStats``, ``DiskStoreStats``, ``CircuitSnapshot``,
fault-plan probe counts) instead register a **collector** callback that
republishes their current totals at scrape time, so one scrape is one
consistent read of every subsystem without instrumenting each increment
site.

Naming contract (documented in DESIGN.md): every family is
``gust_<noun>[_unit][_total]``, snake_case, seconds for durations.
"""

from __future__ import annotations

import re
import threading

from repro.errors import ReproError

#: Default histogram boundaries (seconds): tuned so sub-millisecond
#: kernel replays and multi-second compile phases both land mid-range.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_key(labels: dict) -> tuple:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ReproError(f"invalid metric label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _render_labels(key: tuple, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Family:
    """Shared machinery: one lock, one sample dict keyed by label tuple."""

    kind = ""

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[tuple, object] = {}

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def _sorted_samples(self) -> list[tuple[tuple, object]]:
        with self._lock:
            return sorted(self._samples.items())


class Counter(_Family):
    """Monotonically increasing total (use ``_total`` suffixed names)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ReproError(
                f"counter {self.name} cannot decrease (inc by {value})"
            )
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value

    def set_total(self, value: float, **labels) -> None:
        """Overwrite the running total from an authoritative snapshot.

        For collector callbacks bridging existing monotonic counters
        (``CacheStats.hits`` etc.) — the source of truth already counts,
        so the bridge assigns rather than double-increments.
        """
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._samples.get(_label_key(labels), 0.0))

    def render(self) -> list[str]:
        return [
            f"{self.name}{_render_labels(key)} {_fmt(value)}"
            for key, value in self._sorted_samples()
        ]

    def to_json(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in self._sorted_samples()
        ]


class Gauge(_Family):
    """A value that can go up or down (states, rates, sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._samples.get(_label_key(labels), 0.0))

    render = Counter.render
    to_json = Counter.to_json


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets  # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-boundary distribution: O(buckets) memory forever.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, else in the implicit ``+Inf`` bucket.
    Exposition renders *cumulative* counts per Prometheus convention,
    so bucket values are monotonically non-decreasing in ``le``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ReproError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {buckets!r}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        value = float(value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = self._samples[key] = _HistogramState(
                    len(self.buckets)
                )
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state.bucket_counts[index] += 1
                    break
            state.sum += value
            state.count += 1

    def snapshot(self, **labels) -> dict:
        """``{"count", "sum", "buckets": {le: cumulative}}`` for tests."""
        with self._lock:
            state = self._samples.get(_label_key(labels))
            if state is None:
                return {"count": 0, "sum": 0.0, "buckets": {}}
            cumulative, running = {}, 0
            for bound, count in zip(self.buckets, state.bucket_counts):
                running += count
                cumulative[bound] = running
            cumulative[float("inf")] = state.count
            return {
                "count": state.count, "sum": state.sum,
                "buckets": cumulative,
            }

    def render(self) -> list[str]:
        lines = []
        for key, state in self._sorted_samples():
            running = 0
            for bound, count in zip(self.buckets, state.bucket_counts):
                running += count
                labels = _render_labels(key, f'le="{_fmt(bound)}"')
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {state.count}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_fmt(state.sum)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {state.count}"
            )
        return lines

    def to_json(self) -> list[dict]:
        return [
            {
                "labels": dict(key),
                "count": state.count,
                "sum": state.sum,
                "buckets": {
                    _fmt(bound): count
                    for bound, count in zip(
                        self.buckets, state.bucket_counts
                    )
                },
            }
            for key, state in self._sorted_samples()
        ]


class MetricsRegistry:
    """Named metric families plus scrape-time collector callbacks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list = []
        self._collector_errors = 0

    # -- family creation (idempotent) ----------------------------------------

    def _family(self, cls, name: str, help: str, **kwargs) -> _Family:
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ReproError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if kwargs.get("buckets") is not None and tuple(
                    float(b) for b in kwargs["buckets"]
                ) != existing.buckets:
                    raise ReproError(
                        f"histogram {name} already registered with "
                        f"different buckets"
                    )
                if help and not existing.help:
                    existing.help = help
                return existing
            if cls is Histogram and kwargs.get("buckets") is None:
                kwargs["buckets"] = DEFAULT_BUCKETS
            family = cls(name, help, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets=None
    ) -> Histogram:
        """``buckets=None`` means DEFAULT_BUCKETS on first registration
        and "whatever was registered" afterwards, so re-fetching an
        existing family never needs to restate its boundaries."""
        return self._family(Histogram, name, help, buckets=buckets)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, callback) -> None:
        """``callback()`` runs before every exposition to republish
        snapshot-style totals.  A raising collector is counted (in
        ``gust_obs_collector_errors_total``) rather than failing the
        scrape — /metrics staying up during a subsystem wobble is the
        point of having it."""
        with self._lock:
            self._collectors.append(callback)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for callback in collectors:
            try:
                callback()
            except Exception:
                with self._lock:
                    self._collector_errors += 1
        if self._collector_errors:
            self.counter(
                "gust_obs_collector_errors_total",
                help="Collector callbacks that raised during a scrape.",
            ).set_total(self._collector_errors)

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 (deterministic)."""
        self.collect()
        with self._lock:
            families = sorted(self._families.items())
        lines: list[str] = []
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        self.collect()
        with self._lock:
            families = sorted(self._families.items())
        return {
            name: {
                "type": family.kind,
                "help": family.help,
                "samples": family.to_json(),
            }
            for name, family in families
        }

    def reset(self) -> None:
        """Drop every sample (families and collectors persist)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.clear()


#: The process-wide default registry: library instrumentation (cache
#: tiers, compile phases) publishes here unless handed another registry,
#: so one exporter scrape sees the whole process.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT
