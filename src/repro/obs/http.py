"""Background HTTP exporter: ``/metrics``, ``/metrics.json``, ``/healthz``.

The first network-facing surface in the repo (ROADMAP item 1): a
daemonized :class:`~http.server.ThreadingHTTPServer` that renders one
:class:`~repro.obs.metrics.MetricsRegistry` on demand.  Scrapes are
read-only and allocation-light — the serving hot path never blocks on
an exporter request because registries only take per-family locks for
the duration of a snapshot read.

Bind ``port=0`` to let the OS pick (the bound port is exposed via
:attr:`MetricsExporter.port`), which is how tests and the CI smoke run
without port collisions.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import clock as _clock
from repro.obs.metrics import MetricsRegistry

#: Content type for Prometheus text exposition format 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsExporter:
    """Serve one registry over HTTP from a background daemon thread.

    Args:
        registry: the registry to render (defaults to the process-wide
            default registry).
        host: bind address; loopback by default — exposing metrics
            beyond the host is a deployment decision, not a library one.
        port: TCP port; ``0`` picks a free one.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        from repro.obs.metrics import default_registry

        self.registry = registry if registry is not None else (
            default_registry()
        )
        self._host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MetricsExporter":
        """Bind, spawn the serving thread, and return self (chainable)."""
        if self._server is not None:
            return self
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = exporter.registry.render_prometheus()
                        self._reply(
                            200, PROMETHEUS_CONTENT_TYPE, body.encode()
                        )
                    elif path == "/metrics.json":
                        body = json.dumps(exporter.registry.to_json())
                        self._reply(
                            200, "application/json", body.encode()
                        )
                    elif path == "/healthz":
                        body = json.dumps(
                            {
                                "status": "ok",
                                "uptime_s": exporter.uptime_s,
                            }
                        )
                        self._reply(
                            200, "application/json", body.encode()
                        )
                    else:
                        self._reply(
                            404, "text/plain; charset=utf-8",
                            b"not found\n",
                        )
                except BrokenPipeError:
                    # Scraper hung up mid-response; nothing to salvage.
                    pass

            def log_message(self, format, *args):
                # Scrapes every few seconds would otherwise spam stderr.
                pass

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._started_at = _clock.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="gust-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def uptime_s(self) -> float:
        if self._started_at == 0.0:
            return 0.0
        return _clock.monotonic() - self._started_at
