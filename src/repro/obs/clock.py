"""The one monotonic clock seam for ``core/`` and ``serve/``.

Before this module existed the serving stack mixed time bases:
``serve/circuit.py`` defaulted to ``time.monotonic`` while the batcher
and metrics used ``time.perf_counter``.  Both are monotonic, but they
are *different* monotonic clocks — arithmetic across them (a deadline
stamped on one compared against a cooldown on the other) is undefined.
Lint rule R6 now forbids direct ``time.time()`` / ``time.perf_counter()``
/ ``time.monotonic()`` references under ``serve/`` and ``core/``; timed
components import :func:`monotonic` from here instead and keep their
per-instance ``clock=`` injection parameters defaulting to it.

``time.sleep`` is deliberately *not* wrapped: sleeping is scheduling,
not timestamp arithmetic, and R6 allows it.
"""

from __future__ import annotations

import time

#: The canonical monotonic clock: seconds as a float, arbitrary epoch,
#: highest resolution the platform offers.  Every default ``clock=``
#: in ``core/`` and ``serve/`` points here, so all deadline, cooldown,
#: latency, and span arithmetic shares one time base.
monotonic = time.perf_counter
