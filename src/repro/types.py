"""Shared lightweight types used across the library.

These are deliberately plain dataclasses: they carry measurement results
between the simulators, the energy model, and the evaluation harness without
imposing behaviour of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CycleReport:
    """Cycle-level outcome of running one SpMV on an accelerator.

    Attributes:
        cycles: total clock cycles, including pipeline fill/drain.
        useful_ops: arithmetic operations performed on nonzero data
            (a multiply and an accumulate each count as one operation).
        total_units: number of arithmetic units in the design.
        stalls: cycles in which at least one unit was stalled by a hazard
            (collisions for naive GUST; always zero for edge-colored GUST).
    """

    cycles: int
    useful_ops: int
    total_units: int
    stalls: int = 0

    @property
    def utilization(self) -> float:
        """Hardware utilization per the paper's definition (Section 1).

        Ratio of the average number of arithmetic units performing nonzero
        operations per cycle to the total number of arithmetic units.
        """
        if self.cycles <= 0 or self.total_units <= 0:
            return 0.0
        return self.useful_ops / (self.total_units * self.cycles)


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one SpMV, in joules.

    The components follow the paper's Section 4 model: dynamic power
    integrated over the run, off-/on-chip reads and writes, arithmetic,
    and wire data movement.
    """

    dynamic_j: float
    memory_j: float
    arithmetic_j: float
    movement_j: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.memory_j + self.arithmetic_j + self.movement_j


@dataclass(frozen=True)
class RunResult:
    """A complete measurement for one (accelerator, matrix) pair."""

    design: str
    matrix: str
    cycle_report: CycleReport
    frequency_hz: float
    energy: EnergyReport | None = None

    @property
    def seconds(self) -> float:
        return self.cycle_report.cycles / self.frequency_hz

    @property
    def gflops(self) -> float:
        """Throughput in GFLOP/s counting 2 flops per nonzero (mult+add)."""
        if self.seconds <= 0.0:
            return 0.0
        return (self.cycle_report.useful_ops / self.seconds) / 1e9


@dataclass
class PreprocessReport:
    """Wall-clock and output statistics for a scheduling/preprocessing run."""

    seconds: float
    windows: int = 0
    total_colors: int = 0
    notes: dict[str, float] = field(default_factory=dict)
