"""Request batching: coalesce concurrent SpMV requests into SpMM tiles.

k concurrent requests against one registered matrix are algebraically an
SpMM — k replays of a single schedule, the paper's parallel-GUST
arrangement — so the batcher stacks them into one right-hand-side block
and executes the block through the tenant's compiled
:class:`~repro.core.spmm.StackedReplay` kernel, bit-identical to
per-request replay.

Admission policy (:class:`BatchPolicy`):

* a batch flushes as soon as ``max_batch`` requests are queued for one
  matrix, or when the oldest queued request has waited ``max_wait_s``
  (latency bound under light traffic);
* each per-matrix queue is bounded at ``max_queue``; a submit against a
  full queue raises :class:`~repro.errors.QueueFullError` synchronously —
  backpressure reaches the client instead of growing memory inside the
  server.

The batcher owns queues and admission only; threads live in
:class:`~repro.serve.server.SpmvServer`, which drains batches via
:meth:`RequestBatcher.take_batch` and executes them with
:func:`run_batch`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import faults as _faults
from repro.obs import clock as _obs_clock
from repro.obs import trace as _trace
from repro.errors import (
    HardwareConfigError,
    InjectedFaultError,
    QueueFullError,
    ServeError,
)
from repro.serve.registry import RegisteredMatrix


@dataclass(frozen=True)
class BatchPolicy:
    """Admission and flush policy for :class:`RequestBatcher`.

    Args:
        max_batch: largest stacked right-hand side executed as one block.
        max_wait_s: longest a queued request may wait for its batch to
            fill before the partial batch is flushed anyway.
        max_queue: per-matrix queue bound; submits beyond it are rejected.
    """

    max_batch: int = 16
    max_wait_s: float = 0.002
    max_queue: int = 256

    def __post_init__(self):
        if self.max_batch <= 0:
            raise HardwareConfigError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_wait_s < 0:
            raise HardwareConfigError(
                f"max_wait_s must be non-negative, got {self.max_wait_s}"
            )
        if self.max_queue < self.max_batch:
            raise HardwareConfigError(
                f"max_queue ({self.max_queue}) must be >= max_batch "
                f"({self.max_batch})"
            )


@dataclass
class SpmvRequest:
    """One queued request: operand, future, enqueue time, and deadline.

    ``deadline`` is an absolute instant on the batcher's clock (``None``
    means no deadline); the worker that dequeues an expired request fails
    it with :class:`~repro.errors.DeadlineExceededError` without running
    the kernel.
    """

    x: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued: float = field(default_factory=_obs_clock.monotonic)
    deadline: float | None = None


class RequestBatcher:
    """Per-matrix bounded queues with batch/max-wait flush semantics.

    Args:
        policy: admission/flush policy (defaults to :class:`BatchPolicy`).
        clock: monotonic time source; injectable so deadline arithmetic is
            testable without sleeping.  Defaults to the shared obs clock
            seam (:data:`repro.obs.clock.monotonic`), the same time base
            the circuit breakers and metrics use.
    """

    def __init__(
        self,
        policy: BatchPolicy | None = None,
        clock=None,
    ):
        self.policy = policy or BatchPolicy()
        self.clock = clock or _obs_clock.monotonic
        self._cond = threading.Condition()
        self._queues: dict[str, deque[SpmvRequest]] = {}
        self._entries: dict[str, RegisteredMatrix] = {}
        self._accepting = True
        self._draining = False

    # -- admission -----------------------------------------------------------

    def bind(self, entry: RegisteredMatrix) -> None:
        """Open (or refresh) the queue for one registered matrix."""
        with self._cond:
            self._entries[entry.name] = entry
            self._queues.setdefault(entry.name, deque())

    def submit(
        self,
        entry: RegisteredMatrix,
        x: np.ndarray,
        deadline: float | None = None,
    ) -> Future:
        """Enqueue one request; returns its future.

        Shape/dtype validation is synchronous (a malformed operand raises
        here, in the caller, not in a worker), as is backpressure: a full
        queue raises :class:`QueueFullError` immediately.  ``deadline`` is
        absolute on this batcher's clock; expired requests fail fast in
        the worker instead of computing.
        """
        x = np.asarray(x, dtype=np.float64)
        n = entry.shape[1]
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with matrix "
                f"{entry.name!r} of shape {entry.shape}"
            )
        request = SpmvRequest(x=x, enqueued=self.clock(), deadline=deadline)
        _trace.instant("serve.enqueue", cat="serve", tenant=entry.name)
        with self._cond:
            if not self._accepting:
                raise ServeError(
                    "server is not accepting requests (stopped or draining)"
                )
            queue = self._queues.get(entry.name)
            if queue is None:
                self._entries[entry.name] = entry
                queue = self._queues[entry.name] = deque()
            if len(queue) >= self.policy.max_queue:
                raise QueueFullError(
                    f"queue for matrix {entry.name!r} is at capacity "
                    f"({self.policy.max_queue}); retry later"
                )
            queue.append(request)
            # Wake a worker when a batch completed or a fresh queue head
            # needs its max-wait timer armed.
            if len(queue) >= self.policy.max_batch or len(queue) == 1:
                self._cond.notify()
        return request.future

    # -- draining ------------------------------------------------------------

    def _drainable(self, queue: deque[SpmvRequest], now: float) -> bool:
        if not queue:
            return False
        if self._draining or len(queue) >= self.policy.max_batch:
            return True
        return now - queue[0].enqueued >= self.policy.max_wait_s

    def _scan(self, now: float) -> tuple[str | None, float | None]:
        """One admission scan at instant ``now`` (caller holds the lock).

        Returns ``(best_name, deadline)``: the drainable queue whose head
        request is oldest (global FIFO fairness across tenants), or — when
        nothing is drainable yet — the earliest instant at which some
        queue's max-wait flush comes due.  At most one of the two is
        non-``None``; ``(None, None)`` means every queue is empty.  The
        invariant the wait loop relies on: a returned deadline is always
        strictly in the future (``deadline > now``), because a head older
        than ``max_wait_s`` is by definition drainable — so the computed
        wait timeout is positive and the loop cannot busy-spin.
        """
        best_name = None
        oldest = None
        deadline = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            head = queue[0].enqueued
            if self._drainable(queue, now):
                if oldest is None or head < oldest:
                    best_name, oldest = name, head
            else:
                due = head + self.policy.max_wait_s
                if deadline is None or due < deadline:
                    deadline = due
        if best_name is not None:
            return best_name, None
        return None, deadline

    def take_batch(
        self,
    ) -> tuple[RegisteredMatrix, list[SpmvRequest]] | None:
        """Block until a batch is ready; ``None`` means shut down.

        Among drainable queues the one with the oldest head request wins
        (global FIFO fairness across tenants).  When no queue is drainable
        yet, the wait times out at the earliest pending max-wait deadline.
        """
        with self._cond:
            while True:
                now = self.clock()
                best_name, deadline = self._scan(now)
                if best_name is not None:
                    queue = self._queues[best_name]
                    size = min(len(queue), self.policy.max_batch)
                    batch = [queue.popleft() for _ in range(size)]
                    return self._entries[best_name], batch
                if not self._accepting and self._all_empty():
                    return None
                timeout = None if deadline is None else max(
                    0.0, deadline - now
                )
                self._cond.wait(timeout)

    def _all_empty(self) -> bool:
        return all(not queue for queue in self._queues.values())

    def pending(self) -> int:
        """Requests currently queued across all matrices."""
        with self._cond:
            return sum(len(queue) for queue in self._queues.values())

    # -- shutdown ------------------------------------------------------------

    def close(self, drain: bool = True) -> list[SpmvRequest]:
        """Stop admissions; returns the requests abandoned (empty if
        draining).

        With ``drain`` (default), queued requests stay put and every queue
        becomes immediately drainable — workers flush partial batches
        without waiting out ``max_wait_s`` and then observe shutdown.
        Without it, queues are emptied and the abandoned requests are
        returned so the caller can fail their futures.
        """
        with self._cond:
            self._accepting = False
            self._draining = True
            abandoned: list[SpmvRequest] = []
            if not drain:
                for queue in self._queues.values():
                    abandoned.extend(queue)
                    queue.clear()
            self._cond.notify_all()
            return abandoned


def run_batch(
    entry: RegisteredMatrix,
    batch: list[SpmvRequest],
    faults: _faults.FaultPlan | None = None,
) -> np.ndarray:
    """Execute one batch and resolve its futures; returns the block.

    The k requests stack into a ``(k, n)`` block, execute through the
    tenant's :class:`~repro.core.spmm.StackedReplay` kernel as one SpMM
    tile, and each future resolves with its column of the ``(m, k)``
    result — a view into the shared block (columns never alias each
    other; copy on the client side if contiguity matters).  Column ``j``
    is bit-identical to ``entry.execute(batch[j].x)``.

    A kernel exception — including an injected ``kernel-error`` fault —
    is set on every future in the batch and re-raised for the caller's
    failure accounting; ``kernel-slow`` stalls execution first, which is
    how the chaos harness manufactures deadline pressure.

    Shared by the server's worker loop and the serving benchmark, so what
    the benchmark gates is exactly what the server runs.
    """
    with _trace.span("serve.assemble", cat="serve", size=len(batch)):
        stacked = np.stack([request.x for request in batch])
    try:
        with _trace.span(
            "serve.kernel", cat="serve", tenant=entry.name, size=len(batch)
        ):
            if _faults.should_fire("kernel-slow", faults):
                time.sleep(_faults.SLOW_KERNEL_SLEEP_S)
            _faults.raise_if(
                "kernel-error",
                lambda: InjectedFaultError("injected kernel-error fault"),
                faults,
            )
            block = entry.stacked.matvecs(stacked)
    except Exception as error:
        for request in batch:
            _settle(request.future, error=error)
        raise
    with _trace.span("serve.settle", cat="serve", size=len(batch)):
        for j, request in enumerate(batch):
            _settle(request.future, result=block[:, j])
    return block


def _settle(future: Future, result=None, error=None) -> None:
    """Resolve one future, tolerating client-side settlement races.

    Clients hold these futures and may cancel a queued request at any
    moment; re-setting a settled future raises ``InvalidStateError``,
    which callers up the stack would misread as a worker crash.  A future
    already done keeps its state — it was settled either way, which is
    all the no-hung-futures contract needs.
    """
    if future.done():
        return
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        # Lost the race to a concurrent canceller/resolver.
        pass
