"""Named-tenant matrix registry: preprocess once, pin the plan, serve.

A serving fleet's tenants are sparsity patterns: each registered matrix is
scheduled exactly once — through the existing two-tier
:class:`~repro.core.cache.ScheduleCache` /
:class:`~repro.core.store.DiskScheduleStore`, so a warm store turns
registration into a file read — and pinned to its prepared
:class:`~repro.core.plan.ExecutionPlan` plus a compiled
:class:`~repro.core.spmm.StackedReplay` batch kernel.  Everything a worker
thread touches afterwards (plan, kernel, executor) is immutable, so the
steady-state serving path takes no registry lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.cache import CacheStats, ScheduleCache
from repro.core.compiled import CompiledSpmv
from repro.core.load_balance import BalancedMatrix
from repro.core.pipeline import GustPipeline
from repro.core.plan import ExecutionPlan
from repro.core.schedule import Schedule
from repro.core.spmm import StackedReplay
from repro.core.store import DiskScheduleStore
from repro.errors import ServeError
from repro.sparse.coo import CooMatrix
from repro.types import PreprocessReport


@dataclass(frozen=True)
class RegisteredMatrix:
    """One tenant: a scheduled matrix pinned to its replay machinery."""

    name: str
    matrix: CooMatrix
    pipeline: GustPipeline
    schedule: Schedule
    balanced: BalancedMatrix
    #: The prepared per-request replay (the plan the tenant is pinned to).
    plan: ExecutionPlan
    #: The compiled per-request handle (bit-identity required at compile).
    compiled: CompiledSpmv
    #: The compiled batched-replay kernel (bit-identical to ``plan``).
    stacked: StackedReplay
    preprocess: PreprocessReport

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Single-request reference replay through the pinned handle."""
        return self.compiled.matvec(x)


class MatrixRegistry:
    """Thread-safe registry of named matrices sharing one schedule cache.

    Args:
        cache: shared memory tier — a :class:`ScheduleCache`, a capacity
            ``int``, or ``None`` for a default-capacity private cache.
        store: optional persistent tier (a :class:`DiskScheduleStore`, a
            directory path, or ``True`` for the default location); a fleet
            of servers pointing at one directory shares schedules across
            processes.
        length / algorithm / load_balance: scheduling defaults for
            :meth:`register`, overridable per tenant.
    """

    def __init__(
        self,
        cache: ScheduleCache | int | None = None,
        store: DiskScheduleStore | str | Path | bool | None = None,
        length: int = 64,
        algorithm: str = "matching",
        load_balance: bool = True,
    ):
        if isinstance(cache, int):
            cache = ScheduleCache(capacity=cache)
        self.cache = cache if cache is not None else ScheduleCache()
        self.store = store
        self.default_length = length
        self.default_algorithm = algorithm
        self.default_load_balance = load_balance
        self._lock = threading.Lock()
        self._entries: dict[str, RegisteredMatrix] = {}

    def register(
        self,
        name: str,
        matrix: CooMatrix,
        length: int | None = None,
        algorithm: str | None = None,
        load_balance: bool | None = None,
        force_numpy_backend: bool = False,
        replace: bool = False,
    ) -> RegisteredMatrix:
        """Schedule ``matrix`` under ``name`` and pin its execution plan.

        Preprocessing runs through the shared cache tiers: re-registering
        a pattern another tenant (or a previous process, with a store
        attached) already scheduled costs a cache hit, and a re-register
        of the same pattern with fresh values costs only the value
        refresh.  ``force_numpy_backend`` pins the batch kernel to the
        NumPy fallback (useful for tests and for comparing backends).

        Raises :class:`~repro.errors.ServeError` when ``name`` is already
        taken and ``replace`` is false — checked up front so a duplicate
        costs O(1), not a full scheduling pass (the install re-checks, so
        two threads racing on one name still cannot both win).

        Re-registering a tenant with the *same sparsity pattern* and new
        values (the live-model-update case: a re-assembled Jacobian, a
        reweighted graph) rides the schedule cache's value refresh all the
        way down: the refreshed plan shares its structure with the pinned
        one, so the existing batch kernel re-gathers its value stream in
        place (:meth:`StackedReplay.refresh_from_plan`) instead of
        recompiling the CSR, and the per-request handle refreshes the same
        way.
        """
        if not replace:
            with self._lock:
                if name in self._entries:
                    raise ServeError(
                        f"matrix name {name!r} is already registered; pass "
                        f"replace=True to swap it"
                    )
        pipeline = GustPipeline(
            length if length is not None else self.default_length,
            algorithm=(
                algorithm if algorithm is not None else self.default_algorithm
            ),
            load_balance=(
                load_balance
                if load_balance is not None
                else self.default_load_balance
            ),
            cache=self.cache,
            store=self.store,
            # The serving contract is exactness: every batched column must
            # reproduce the per-request replay bit for bit, so an
            # allclose-only backend can never be selected here.
            require_bit_identical=True,
        )
        schedule, balanced, report = pipeline.preprocess(matrix)
        plan = pipeline.plan_for(schedule, balanced)

        def build_entry(compiled, stacked):
            return RegisteredMatrix(
                name=name,
                matrix=matrix,
                pipeline=pipeline,
                schedule=schedule,
                balanced=balanced,
                plan=plan,
                compiled=compiled,
                stacked=stacked,
                preprocess=report,
            )

        if replace:
            # Same pattern, (possibly) new values: refresh the pinned
            # kernels in place instead of recompiling them.  Checked,
            # refreshed, and installed under ONE lock acquisition — the
            # kernels are shared with the live entry, so two racing
            # re-registrations must not interleave their value swaps
            # (and a reader must never see the swap without the new
            # entry installed, or vice versa, mid-register).
            with self._lock:
                previous = self._entries.get(name)
                if previous is not None and self._same_structure(
                    plan, previous.plan
                ):
                    compiled = previous.compiled
                    stacked = previous.stacked
                    if plan is not compiled.plan:
                        compiled.refresh_from_plan(plan)
                    if force_numpy_backend:
                        if stacked.backend != "bincount":
                            stacked = StackedReplay(plan, force_numpy=True)
                        elif plan is not stacked.plan:
                            stacked.refresh_from_plan(plan)
                    elif stacked._kernel is compiled._kernel:
                        # Shared kernel: already refreshed through the
                        # handle above — just retag the wrapper's plan.
                        stacked.plan = plan
                    else:
                        # Previously pinned (force_numpy) but the pin was
                        # dropped: restore the default kernel sharing, the
                        # same state a fresh registration would produce.
                        stacked = StackedReplay.from_compiled(compiled)
                    entry = build_entry(compiled, stacked)
                    self._entries[name] = entry
                    return entry

        # Fresh pattern (or first registration): compile outside the lock
        # — scheduling already ran there, and kernel compilation can cost
        # O(nnz).  The per-request handle's kernel serves batches too, so
        # the batch wrapper shares it instead of compiling a second CSR.
        compiled = pipeline.compile_schedule(schedule, balanced)
        if force_numpy_backend:
            stacked = StackedReplay(plan, force_numpy=True)
        else:
            stacked = StackedReplay.from_compiled(compiled)
        entry = build_entry(compiled, stacked)
        with self._lock:
            if not replace and name in self._entries:
                raise ServeError(
                    f"matrix name {name!r} is already registered; pass "
                    f"replace=True to swap it"
                )
            self._entries[name] = entry
        return entry

    @staticmethod
    def _same_structure(plan: ExecutionPlan, pinned: ExecutionPlan) -> bool:
        """True when only values moved between two plans.

        A value-refreshed plan shares its index arrays with the plan it
        came from (:meth:`ExecutionPlan.with_values`), so array identity
        is the cheap, exact test for "same pattern" — a genuinely new
        pattern always compiles fresh arrays.
        """
        return (
            plan.shape == pinned.shape
            and plan.nnz == pinned.nnz
            and plan.rows is pinned.rows
            and plan.sources is pinned.sources
        )

    def get(self, name: str) -> RegisteredMatrix:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                known = sorted(self._entries) or "none"
                raise ServeError(
                    f"unknown matrix {name!r}; registered: {known}"
                )
        return entry

    def unregister(self, name: str) -> None:
        with self._lock:
            if self._entries.pop(name, None) is None:
                raise ServeError(f"unknown matrix {name!r}")

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    @property
    def cache_stats(self) -> CacheStats:
        """Counters of the shared schedule cache (both tiers)."""
        return self.cache.stats
