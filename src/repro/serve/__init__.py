"""``repro.serve`` — multi-tenant SpMV serving over prepared plans.

The paper's deployment story (schedule once, replay thousands of times)
implies a serving system: many clients submitting SpMV requests against a
registry of scheduled matrices.  This package is that layer:

* :class:`MatrixRegistry` — named tenants, each preprocessed once through
  the two-tier schedule cache and pinned to a prepared
  :class:`~repro.core.plan.ExecutionPlan` plus a compiled
  :class:`~repro.core.spmm.StackedReplay` batch kernel;
* :class:`RequestBatcher` — per-tenant bounded queues coalescing
  concurrent requests into one stacked right-hand side (admission policy:
  flush at ``max_batch`` or after ``max_wait``, reject above
  ``max_queue``);
* :class:`SpmvServer` — thread-pool workers draining the batcher,
  :class:`ServerStats` metrics (latency percentiles, batch-size histogram,
  schedule-cache hit rates);
* :class:`SpmvClient` — a synchronous in-process client.

Batched execution is **bit-identical** to per-request
:meth:`~repro.core.pipeline.GustPipeline.execute`: a batch of k requests
degenerates to an SpMM block whose every destination row accumulates
sequentially in plan slot order.  See ``benchmarks/
bench_serving_throughput.py`` for the throughput gate and the README's
"Serving SpMV at scale" section for the architecture sketch.
"""

from repro.serve.batcher import BatchPolicy, RequestBatcher, run_batch
from repro.serve.chaos import ChaosReport, run_chaos
from repro.serve.circuit import CircuitBoard, CircuitSnapshot
from repro.serve.client import SpmvClient
from repro.serve.metrics import ServerMetrics, ServerStats
from repro.serve.registry import MatrixRegistry, RegisteredMatrix
from repro.serve.server import SpmvServer

__all__ = [
    "BatchPolicy",
    "ChaosReport",
    "CircuitBoard",
    "CircuitSnapshot",
    "MatrixRegistry",
    "RegisteredMatrix",
    "RequestBatcher",
    "ServerMetrics",
    "ServerStats",
    "SpmvClient",
    "SpmvServer",
    "run_batch",
    "run_chaos",
]
