"""Synchronous in-process client for :class:`~repro.serve.server.SpmvServer`.

The client is a thin convenience over ``server.submit``: blocking
round-trips, bulk submission (which is what actually exercises batching —
k outstanding requests coalesce into one SpMM tile), and a bounded,
jittered-exponential-backoff retry on backpressure.
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.errors import QueueFullError
from repro.serve.server import SpmvServer


class SpmvClient:
    """Blocking client handle bound to one in-process server."""

    def __init__(self, server: SpmvServer):
        self.server = server

    def spmv(
        self,
        name: str,
        x: np.ndarray,
        timeout: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.001,
        backoff_cap_s: float = 0.05,
    ) -> np.ndarray:
        """One blocking SpMV round-trip.

        ``timeout`` is a total budget for the request: it bounds the
        blocking wait *and* travels to the server as an absolute deadline
        (on ``server.batcher.clock``), so a request this caller has given
        up on fails fast in the worker with
        :class:`~repro.errors.DeadlineExceededError` instead of
        computing an answer nobody reads.

        ``retries`` bounds how many times a
        :class:`~repro.errors.QueueFullError` rejection is retried.  The
        pause doubles from ``backoff_s`` up to ``backoff_cap_s`` and is
        jittered to 50–150% of its nominal value — synchronized clients
        that were all rejected by the same full queue must not re-submit
        in lockstep and re-reject each other indefinitely.
        """
        clock = self.server.batcher.clock
        deadline = None if timeout is None else clock() + timeout
        attempts = 0
        while True:
            try:
                future = self.server.submit(name, x, deadline=deadline)
                break
            except QueueFullError:
                attempts += 1
                if attempts > retries:
                    raise
                if deadline is not None and clock() >= deadline:
                    raise
                pause = min(backoff_cap_s, backoff_s * (2 ** (attempts - 1)))
                time.sleep(pause * (0.5 + random.random()))
        if deadline is None:
            return future.result(None)
        return future.result(max(0.0, deadline - clock()))

    def spmv_many(
        self,
        name: str,
        xs: list[np.ndarray],
        timeout: float | None = None,
    ) -> list[np.ndarray]:
        """Submit all of ``xs`` before collecting any result.

        Having every request outstanding at once is what lets the server
        coalesce them into full batches; a loop of :meth:`spmv` calls
        would serialize into batches of one.
        """
        futures = [self.server.submit(name, x) for x in xs]
        return [future.result(timeout) for future in futures]
