"""Synchronous in-process client for :class:`~repro.serve.server.SpmvServer`.

The client is a thin convenience over ``server.submit``: blocking
round-trips, bulk submission (which is what actually exercises batching —
k outstanding requests coalesce into one SpMM tile), and an optional
bounded retry on backpressure.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import QueueFullError
from repro.serve.server import SpmvServer


class SpmvClient:
    """Blocking client handle bound to one in-process server."""

    def __init__(self, server: SpmvServer):
        self.server = server

    def spmv(
        self,
        name: str,
        x: np.ndarray,
        timeout: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.001,
    ) -> np.ndarray:
        """One blocking SpMV round-trip.

        ``retries`` bounds how many times a
        :class:`~repro.errors.QueueFullError` rejection is retried after
        sleeping ``backoff_s`` (simple fixed backoff — the queue drains at
        batch granularity, so a short fixed pause is usually enough).
        """
        attempts = 0
        while True:
            try:
                future = self.server.submit(name, x)
                break
            except QueueFullError:
                attempts += 1
                if attempts > retries:
                    raise
                time.sleep(backoff_s)
        return future.result(timeout)

    def spmv_many(
        self,
        name: str,
        xs: list[np.ndarray],
        timeout: float | None = None,
    ) -> list[np.ndarray]:
        """Submit all of ``xs`` before collecting any result.

        Having every request outstanding at once is what lets the server
        coalesce them into full batches; a loop of :meth:`spmv` calls
        would serialize into batches of one.
        """
        futures = [self.server.submit(name, x) for x in xs]
        return [future.result(timeout) for future in futures]
