"""Measurement core for the serving-throughput benchmark.

Lives in the package (rather than only under ``benchmarks/``) so the
``repro bench-serve`` CLI command and ``benchmarks/
bench_serving_throughput.py`` run the identical measurement:

* **single** — sequential per-request replay through the tenant's pinned
  plan (``RegisteredMatrix.execute``, the PR 3 steady-state path);
* **batched** — the same requests coalesced into stacked right-hand
  sides and executed through :func:`~repro.serve.batcher.run_batch`
  (request objects, futures, and result handout included), exactly the
  code path the server's workers run;
* **server** — an end-to-end threaded run: closed-loop clients against a
  live :class:`~repro.serve.server.SpmvServer`, reporting the achieved
  batch histogram and latency percentiles.

Gates (enforced by the benchmark wrapper): batched throughput >=
:data:`MIN_BATCH_SPEEDUP` over the single-request path at batch >=
:data:`GATE_MIN_BATCH`, every batched result bit-identical to the
per-request compiled replay, and the threaded run answering every request
correctly.

Gate history: the original PR 4 gate demanded 3x, measured against a
single-request path that replayed through ``np.bincount`` with a
plan-memo lookup per call (~10k req/s on this regime).  The backend
registry redesign made the single-request baseline itself ~3x faster —
``"auto"`` selection now hands the per-request replay the probed scipy
CSR kernel and the compiled handle binds it directly — so batching's
*relative* win shrank while every absolute number improved.  The gate is
recalibrated to >= 1.5x over the now-much-faster baseline (measured
~1.6-1.8x at k in {16, 32}, machine-dependent; the CI wrapper retries
wall-clock flakes), still demanding that coalescing beats the best
per-request kernel on pure throughput.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs import clock as _obs_clock
from repro.serve.batcher import BatchPolicy, SpmvRequest, run_batch
from repro.serve.client import SpmvClient
from repro.serve.registry import MatrixRegistry
from repro.serve.server import SpmvServer
from repro.sparse.generators import uniform_random

#: Serving regime: a 2048-dim tenant at ~16 nnz/row, l = 64.  Denser rows
#: keep the batched kernel compute-bound (more arithmetic per byte of
#: right-hand-side traffic), which is both where batching shines and what
#: makes the gate stable on noisy shared runners; the bit-identity checks
#: run at every batch size regardless.
DIM = 2048
TARGET_NNZ = 32_000
LENGTH = 64
SEED = 11

#: Distinct right-hand sides cycled through every measurement.
NUM_VECTORS = 32

#: Batch sizes measured; the gate applies to sizes >= GATE_MIN_BATCH.
BATCH_SIZES = (1, 8, 16, 32)
GATE_MIN_BATCH = 8
MIN_BATCH_SPEEDUP = 1.5

#: Threaded end-to-end run.
SERVER_CLIENTS = 16
SERVER_REQUESTS_PER_CLIENT = 16


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = _obs_clock.monotonic()
        fn()
        best = min(best, _obs_clock.monotonic() - started)
    return best


def measure_batching(repeats: int = 30) -> dict:
    """Batched vs. sequential replay throughput plus bit-identity."""
    matrix = uniform_random(DIM, DIM, TARGET_NNZ / (DIM * DIM), seed=SEED)
    registry = MatrixRegistry(length=LENGTH)
    entry = registry.register("bench", matrix)
    rng = np.random.default_rng(SEED)
    xs = [np.ascontiguousarray(v) for v in rng.normal(size=(NUM_VECTORS, DIM))]
    reference = [entry.execute(x) for x in xs]

    def run_single():
        for x in xs:
            entry.execute(x)

    single_s = _best_of(run_single, repeats)
    results = {
        "matrix": {"dim": DIM, "nnz": matrix.nnz, "length": LENGTH},
        "backend": entry.stacked.backend,
        "num_vectors": NUM_VECTORS,
        "single_s": single_s,
        "single_rps": NUM_VECTORS / single_s,
        "batch": {},
    }

    for size in BATCH_SIZES:
        groups = [xs[i : i + size] for i in range(0, NUM_VECTORS, size)]

        def run_batched():
            blocks = []
            for group in groups:
                batch = [SpmvRequest(x=x) for x in group]
                blocks.append(run_batch(entry, batch))
            return blocks

        # Bit-identity before timing: every batched column must equal the
        # per-request plan replay exactly.
        flat = [
            column
            for block in run_batched()
            for column in np.asarray(block).T
        ]
        identical = all(
            bool((got == want).all())
            for got, want in zip(flat, reference)
        )
        batched_s = _best_of(run_batched, repeats)
        results["batch"][str(size)] = {
            "seconds": batched_s,
            "rps": NUM_VECTORS / batched_s,
            "speedup": single_s / batched_s,
            "bit_identical": identical,
        }
    gated = [
        spec["speedup"]
        for size, spec in results["batch"].items()
        if int(size) >= GATE_MIN_BATCH
    ]
    results["gated_speedup"] = max(gated) if gated else 0.0
    return results


def measure_server() -> dict:
    """End-to-end threaded serving: closed-loop clients, live metrics."""
    rng = np.random.default_rng(SEED + 1)
    registry = MatrixRegistry(length=LENGTH)
    server = SpmvServer(
        registry=registry,
        policy=BatchPolicy(max_batch=16, max_wait_s=0.002, max_queue=512),
        workers=1,
    )
    tenants = {}
    for name in ("alpha", "beta"):
        matrix = uniform_random(
            DIM // 4,
            DIM // 4,
            (TARGET_NNZ // 4) / ((DIM // 4) ** 2),
            seed=int(rng.integers(1 << 30)),
        )
        tenants[name] = server.register(name, matrix)
    client = SpmvClient(server)
    names = sorted(tenants)
    failures = []
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        local = np.random.default_rng(1000 + index)
        name = names[index % len(names)]
        entry = tenants[name]
        for _ in range(SERVER_REQUESTS_PER_CLIENT):
            x = local.normal(size=entry.shape[1])
            y = client.spmv(name, x, timeout=30.0)
            if not (np.asarray(y) == entry.execute(x)).all():
                with lock:
                    failures.append(name)

    started = _obs_clock.monotonic()
    with server:
        threads = [
            threading.Thread(target=client_loop, args=(i,))
            for i in range(SERVER_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    # Counters are exact only once stop() (via the context manager) has
    # joined the workers; futures resolve before metrics are recorded.
    stats = server.stats()
    elapsed = _obs_clock.monotonic() - started
    total = SERVER_CLIENTS * SERVER_REQUESTS_PER_CLIENT
    return {
        "clients": SERVER_CLIENTS,
        "requests": total,
        "elapsed_s": elapsed,
        "throughput_rps": total / elapsed,
        "mismatches": len(failures),
        "completed": stats.completed,
        "batches": stats.batches,
        "mean_batch": stats.mean_batch_size,
        "batch_histogram": {
            str(k): v for k, v in sorted(stats.batch_histogram.items())
        },
        "p50_ms": stats.p50_ms,
        "p99_ms": stats.p99_ms,
    }


def run(json_path: str | None = None) -> dict:
    batching = measure_batching()
    server = measure_server()
    results = {"batching": batching, "server": server}
    print(
        f"matrix: {DIM}x{DIM}, nnz={batching['matrix']['nnz']}, "
        f"length={LENGTH}, backend={batching['backend']}"
    )
    print(
        f"single-request replay {batching['single_rps']:>10.0f} req/s"
    )
    for size, spec in batching["batch"].items():
        print(
            f"batched (k={size:>2s})        {spec['rps']:>10.0f} req/s   "
            f"{spec['speedup']:4.2f}x  "
            f"(bit-identical={spec['bit_identical']})"
        )
    print(
        f"threaded server: {server['throughput_rps']:.0f} req/s over "
        f"{server['clients']} clients, mean batch "
        f"{server['mean_batch']:.2f}, p50 {server['p50_ms']:.2f} ms, "
        f"p99 {server['p99_ms']:.2f} ms, mismatches={server['mismatches']}"
    )
    print(f"batch histogram: {server['batch_histogram']}")
    if json_path:
        import json
        from pathlib import Path

        Path(json_path).write_text(json.dumps(results, indent=2))
        print(f"wrote {json_path}")
    return results


def failures(results: dict) -> list[str]:
    """Gate violations in a :func:`run` result (empty means pass)."""
    batching, server = results["batching"], results["server"]
    problems = []
    if batching["gated_speedup"] < MIN_BATCH_SPEEDUP:
        problems.append(
            f"batched serving {batching['gated_speedup']:.2f}x < "
            f"{MIN_BATCH_SPEEDUP}x at batch >= {GATE_MIN_BATCH}"
        )
    for size, spec in batching["batch"].items():
        if not spec["bit_identical"]:
            problems.append(
                f"batch size {size} is not bit-identical to per-request "
                f"replay"
            )
    if server["mismatches"]:
        problems.append(
            f"{server['mismatches']} threaded responses disagreed with "
            f"the reference replay"
        )
    if server["completed"] != server["requests"]:
        problems.append(
            f"server completed {server['completed']} of "
            f"{server['requests']} requests"
        )
    if server["batches"] >= server["completed"]:
        problems.append(
            "threaded run never coalesced a batch (histogram is trivial)"
        )
    return problems
