"""Serving metrics: latency percentiles, batch histogram, counters.

One :class:`ServerMetrics` instance per server, written from worker and
submit paths under a single lock (every operation is O(1) or amortized
O(1); the latency reservoir is bounded).  :meth:`ServerMetrics.snapshot`
freezes everything into an immutable :class:`ServerStats` for reporting.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CacheStats
from repro.obs import clock as _obs_clock
from repro.obs.metrics import MetricsRegistry
from repro.serve.circuit import CircuitSnapshot

#: Most recent request latencies retained for percentile estimation.  A
#: bounded reservoir keeps the memory footprint flat under sustained
#: traffic while still answering p50/p99 over a recent window.
LATENCY_RESERVOIR = 8192


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of one server's counters and distributions."""

    #: Requests accepted into a queue.
    submitted: int
    #: Requests answered (future resolved with a result).
    completed: int
    #: Requests refused at admission (queue full or server not accepting).
    rejected: int
    #: Requests failed with an exception (shutdown without drain).
    failed: int
    #: Batches executed.
    batches: int
    #: batch size -> number of batches executed at that size.
    batch_histogram: dict[int, int]
    #: Latency percentiles over the recent reservoir, in milliseconds
    #: (0.0 when no request has completed yet).
    p50_ms: float
    p99_ms: float
    #: Wall-clock seconds the server has been running.
    uptime_s: float
    #: Schedule-cache counters folded in from the registry's shared
    #: :class:`~repro.core.cache.ScheduleCache`.
    cache: CacheStats = field(default_factory=CacheStats)
    #: Requests failed fast because their deadline expired before a worker
    #: reached them (the kernel never ran for these).
    deadline_expired: int = 0
    #: Worker threads that died from an unexpected exception and were
    #: respawned by the supervisor — capacity that would have silently
    #: decayed without supervision.
    workers_respawned: int = 0
    #: Worker threads lost past the respawn cap (not replaced).
    workers_lost: int = 0
    #: Per-tenant circuit-breaker states and transition totals.
    circuits: CircuitSnapshot = field(
        default_factory=lambda: CircuitSnapshot(states={})
    )

    @property
    def mean_batch_size(self) -> float:
        """Average executed batch size (0.0 when nothing ran yet).

        An idle server has no mean batch size; fabricating 1.0 made an
        idle server indistinguishable from one that executed every
        request unbatched.
        """
        if not self.batches:
            return 0.0
        return self.completed_in_batches / self.batches

    @property
    def completed_in_batches(self) -> int:
        return sum(size * count for size, count in self.batch_histogram.items())

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of uptime."""
        return self.completed / self.uptime_s if self.uptime_s > 0 else 0.0

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            "serving stats:",
            f"  requests: {self.submitted} submitted, "
            f"{self.completed} completed, {self.rejected} rejected, "
            f"{self.failed} failed, {self.deadline_expired} deadline-expired",
            f"  batches:  {self.batches} "
            f"(mean size {self.mean_batch_size:.2f})",
        ]
        if self.batch_histogram:
            histogram = ", ".join(
                f"{size}x{count}"
                for size, count in sorted(self.batch_histogram.items())
            )
            lines.append(f"  batch histogram (size x batches): {histogram}")
        lines.append(
            f"  latency:  p50 {self.p50_ms:.3f} ms, p99 {self.p99_ms:.3f} ms"
        )
        lines.append(
            f"  throughput: {self.throughput_rps:.0f} req/s "
            f"over {self.uptime_s:.2f} s"
        )
        lines.append(
            f"  schedule cache: {self.cache.hits} hits, "
            f"{self.cache.refreshes} refreshes, {self.cache.misses} misses "
            f"(hit rate {self.cache.hit_rate:.0%}; "
            f"disk {self.cache.disk_hits} hits)"
        )
        lines.append(
            f"  workers:  {self.workers_respawned} respawned, "
            f"{self.workers_lost} lost"
        )
        circuits = self.circuits
        open_now = sorted(
            name
            for name, state in circuits.states.items()
            if state != "closed"
        )
        lines.append(
            f"  circuits: {circuits.opened} opened, "
            f"{circuits.half_opened} half-opened, {circuits.closed} closed, "
            f"{circuits.rejected} rejected, "
            f"{circuits.probes_aborted} probe-aborts, "
            f"{circuits.probes_reclaimed} probe-reclaims"
            + (f"; unhealthy: {', '.join(open_now)}" if open_now else "")
        )
        return "\n".join(lines)


#: Batch-size histogram boundaries: powers of two up to the largest
#: plausible ``max_batch``, so the exposition shows the coalescing shape.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class ServerMetrics:
    """Thread-safe mutable counters behind :class:`ServerStats`.

    Args:
        clock: monotonic time source (defaults to the obs clock seam).
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, request latencies and batch sizes are *also*
            observed into fixed-bucket histograms
            (``gust_request_latency_seconds``, ``gust_batch_size``) at
            record time, so a Prometheus scrape sees full distributions,
            not just the reservoir percentiles.
    """

    def __init__(self, clock=None, registry: MetricsRegistry | None = None):
        self._clock = clock or _obs_clock.monotonic
        self._latency_hist = None
        self._batch_hist = None
        if registry is not None:
            self._latency_hist = registry.histogram(
                "gust_request_latency_seconds",
                help="End-to-end request latency (enqueue to settle).",
            )
            self._batch_hist = registry.histogram(
                "gust_batch_size",
                help="Executed batch sizes (requests coalesced per kernel).",
                buckets=BATCH_SIZE_BUCKETS,
            )
        self._lock = threading.Lock()
        self._started = self._clock()
        self._submitted = 0
        self._rejected = 0
        self._failed = 0
        self._batches = 0
        self._completed = 0
        self._deadline_expired = 0
        self._workers_respawned = 0
        self._workers_lost = 0
        self._histogram: Counter[int] = Counter()
        self._latencies: deque[float] = deque(maxlen=LATENCY_RESERVOIR)

    def mark_started(self) -> None:
        """Re-base uptime on serving start.

        The construction-to-start gap is setup (registrations, plan
        preparation), not serving time; counting it deflates
        ``throughput_rps`` for any server not started immediately.
        """
        with self._lock:
            self._started = self._clock()

    def record_submit(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_reject(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self._failed += count

    def record_deadline_expired(self, count: int = 1) -> None:
        with self._lock:
            self._deadline_expired += count

    def record_worker_respawn(self) -> None:
        with self._lock:
            self._workers_respawned += 1

    def record_worker_lost(self) -> None:
        with self._lock:
            self._workers_lost += 1

    def record_batch(self, size: int, latencies_s: list[float]) -> None:
        """One executed batch: size histogram + per-request latencies."""
        with self._lock:
            self._batches += 1
            self._completed += size
            self._histogram[size] += 1
            self._latencies.extend(latencies_s)
        if self._batch_hist is not None:
            self._batch_hist.observe(size)
            for latency in latencies_s:
                self._latency_hist.observe(latency)

    def snapshot(
        self,
        cache: CacheStats | None = None,
        circuits: CircuitSnapshot | None = None,
    ) -> ServerStats:
        with self._lock:
            latencies = np.array(self._latencies, dtype=np.float64)
            if latencies.size:
                p50, p99 = np.percentile(latencies, [50.0, 99.0]) * 1e3
            else:
                p50 = p99 = 0.0
            return ServerStats(
                submitted=self._submitted,
                completed=self._completed,
                rejected=self._rejected,
                failed=self._failed,
                batches=self._batches,
                batch_histogram=dict(self._histogram),
                p50_ms=float(p50),
                p99_ms=float(p99),
                uptime_s=self._clock() - self._started,
                cache=cache if cache is not None else CacheStats(),
                deadline_expired=self._deadline_expired,
                workers_respawned=self._workers_respawned,
                workers_lost=self._workers_lost,
                circuits=(
                    circuits
                    if circuits is not None
                    else CircuitSnapshot(states={})
                ),
            )
