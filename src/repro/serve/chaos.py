"""The chaos harness: the serve workload under a seeded :class:`FaultPlan`.

``repro chaos --seed N`` (and ``tests/serve/test_chaos.py``) run three
phases against one aggressive fault plan and verify the failure model
end to end:

1. **Scheduling survival** — ``GustScheduler(jobs=2)`` with an injected
   pool-worker kill must produce arrays byte-identical to ``jobs=1``
   (the ``BrokenProcessPool`` serial re-dispatch preserves the identity
   contract).
2. **Store degradation** — a :class:`DiskScheduleStore` hammered with
   read/write ``OSError`` and artifact corruption must absorb every
   fault into counters (``io_errors``, ``corrupt_dropped``) and keep
   answering; no exception escapes to the caller.
3. **Serve chaos** — ``threads`` concurrent clients (default 100)
   against a server injected with kernel exceptions, slow kernels, and
   worker crashes, while tenant registrations run through the sick
   store.  The gate: **zero hangs** (every wait returns), **zero lost
   futures** (every submitted future resolves with a value or a typed
   :class:`~repro.errors.ReproError`), and **bit-identical results** on
   every success.

The serve phase runs twice with fresh plans from the same seed; the
per-site fault decisions of the two runs must agree on their common
prefix — the seeded-replay contract, asserted rather than assumed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from tempfile import TemporaryDirectory

import numpy as np

from repro import faults as _faults
from repro.core.load_balance import identity_balance
from repro.core.scheduler import GustScheduler
from repro.core.store import DiskScheduleStore
from repro.errors import QueueFullError, ReproError
from repro.serve.batcher import BatchPolicy
from repro.serve.registry import MatrixRegistry
from repro.serve.server import SpmvServer
from repro.sparse.generators import uniform_random

#: The aggressive spec the acceptance gate names: store IO faults, two
#: worker deaths, one pool-worker kill, kernel exceptions above 5%.
CHAOS_SPEC = (
    "store-io:0.2,store-corrupt:1,kernel-error:0.08,kernel-slow:0.1,"
    "worker-crash:2,pool-kill:1"
)

#: Accelerator length for the chaos tenants (small: chaos stresses the
#: failure paths, not the kernels).
_LENGTH = 16


@dataclass
class ChaosPhaseResult:
    """Outcome counters for one serve-phase run."""

    submitted: int = 0
    ok: int = 0
    mismatches: int = 0
    hangs: int = 0
    lost_futures: int = 0
    rejected: int = 0
    typed_failures: dict[str, int] = field(default_factory=dict)
    fired: dict[str, list[int]] = field(default_factory=dict)
    stats_text: str = ""

    def note_failure(self, error: BaseException) -> None:
        name = type(error).__name__
        self.typed_failures[name] = self.typed_failures.get(name, 0) + 1


@dataclass(frozen=True)
class ChaosReport:
    """Everything ``repro chaos`` gates on and prints."""

    seed: int
    threads: int
    spec: str
    pool_identical: bool
    store_io_errors: int
    store_corrupt_dropped: int
    store_survived: bool
    runs: tuple[ChaosPhaseResult, ChaosPhaseResult]
    replay_consistent: bool

    def passed(self) -> bool:
        serve_ok = all(
            run.hangs == 0 and run.lost_futures == 0 and run.mismatches == 0
            for run in self.runs
        )
        return (
            serve_ok
            and self.pool_identical
            and self.store_survived
            and self.store_io_errors > 0
            and self.replay_consistent
        )

    def render(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} threads={self.threads}",
            f"  fault spec: {self.spec}",
            f"  [1] scheduler: pool-kill survived, jobs=2 byte-identical "
            f"to jobs=1: {self.pool_identical}",
            f"  [2] store: survived={self.store_survived}, "
            f"{self.store_io_errors} io_errors absorbed, "
            f"{self.store_corrupt_dropped} corrupt artifacts quarantined",
        ]
        for index, run in enumerate(self.runs):
            failures = ", ".join(
                f"{name}:{count}"
                for name, count in sorted(run.typed_failures.items())
            ) or "none"
            lines.append(
                f"  [3] serve run {index + 1}: {run.submitted} submitted, "
                f"{run.ok} bit-identical, {run.rejected} rejected at "
                f"admission, {run.mismatches} mismatches, {run.hangs} hangs, "
                f"{run.lost_futures} lost futures; typed failures: {failures}"
            )
        lines.append(
            f"  seeded replay consistent across runs: {self.replay_consistent}"
        )
        lines.append(f"  verdict: {'PASS' if self.passed() else 'FAIL'}")
        stats = self.runs[-1].stats_text
        if stats:
            lines.append("server stats (final run):")
            lines.extend("  " + line for line in stats.splitlines())
        return "\n".join(lines)


def _fired_by_site(plan: _faults.FaultPlan) -> dict[str, list[int]]:
    fired: dict[str, list[int]] = {}
    for event in plan.history():
        fired.setdefault(event.site, []).append(event.probe)
    return fired


def _scheduler_phase(seed: int) -> bool:
    """Pool-kill survival: jobs=2 under a broken pool vs jobs=1 arrays."""
    matrix = uniform_random(96, 96, 0.08, seed=seed % (2**31))
    balanced = identity_balance(matrix, _LENGTH)
    plan = _faults.FaultPlan(seed=seed, counts={"pool-kill": 1})
    chaotic = GustScheduler(_LENGTH, jobs=2, faults=plan).schedule_balanced(
        balanced
    )
    serial = GustScheduler(_LENGTH, jobs=1).schedule_balanced(balanced)
    return (
        chaotic.m_sch.tobytes() == serial.m_sch.tobytes()
        and chaotic.row_sch.tobytes() == serial.row_sch.tobytes()
        and chaotic.col_sch.tobytes() == serial.col_sch.tobytes()
        and chaotic.window_colors == serial.window_colors
    )


def _store_phase(seed: int, rounds: int = 24) -> tuple[int, int, bool]:
    """Hammer a store with IO faults; returns (io_errors, corrupt, ok)."""
    matrix = uniform_random(48, 48, 0.1, seed=(seed + 1) % (2**31))
    balanced = identity_balance(matrix, _LENGTH)
    schedule = GustScheduler(_LENGTH).schedule_balanced(balanced)
    plan = _faults.FaultPlan(
        seed=seed,
        rates={"store-read": 0.2, "store-write": 0.2},
        counts={"store-corrupt": 1},
    )
    survived = True
    with TemporaryDirectory(prefix="gust-chaos-store-") as tmp:
        store = DiskScheduleStore(tmp, faults=plan)
        key = store.key_for(matrix, _LENGTH, "matching", False)
        for _ in range(rounds):
            try:
                store.store(key, schedule, balanced)
                store.load(key)
            except ReproError:
                survived = False
            except OSError:
                survived = False
        stats = store.stats
    return stats.io_errors, stats.corrupt_dropped, survived


def _serve_phase(
    seed: int, threads: int, store_dir: str
) -> tuple[ChaosPhaseResult, _faults.FaultPlan]:
    """One full concurrent serve run under the aggressive plan."""
    result = ChaosPhaseResult()
    plan = _faults.FaultPlan.from_spec(CHAOS_SPEC, seed=seed)
    store = DiskScheduleStore(store_dir, faults=plan)
    registry = MatrixRegistry(length=_LENGTH, store=store)
    matrices = {
        "alpha": uniform_random(96, 96, 0.08, seed=(seed + 2) % (2**31)),
        "beta": uniform_random(64, 64, 0.1, seed=(seed + 3) % (2**31)),
    }
    server = SpmvServer(
        registry=registry,
        policy=BatchPolicy(max_batch=8, max_wait_s=0.001, max_queue=64),
        workers=2,
        max_worker_respawns=8,
        faults=plan,
    )
    reference = {}
    for name, matrix in matrices.items():
        entry = server.register(name, matrix)
        reference[name] = entry
    names = sorted(matrices)

    futures = []
    futures_lock = threading.Lock()
    result_lock = threading.Lock()
    barrier = threading.Barrier(threads)
    clock = server.batcher.clock

    def one_request(index: int) -> None:
        rng = np.random.default_rng(seed * 100_000 + index)
        name = names[index % len(names)]
        x = rng.normal(size=matrices[name].shape[1])
        # Every fifth request runs on a deliberately tight deadline so
        # kernel-slow stalls push it past expiry: the fail-fast path must
        # answer with DeadlineExceededError, not compute into the void.
        tight = index % 5 == 0
        deadline = clock() + (0.01 if tight else 30.0)
        barrier.wait(timeout=30)
        future = None
        for attempt in range(50):
            try:
                future = server.submit(name, x, deadline=deadline)
                break
            except QueueFullError:
                time.sleep(0.0005 * (attempt + 1))
            except ReproError as error:
                # Typed admission refusal (circuit open, stopped, ...).
                with result_lock:
                    result.rejected += 1
                    result.note_failure(error)
                return
        if future is None:
            with result_lock:
                result.rejected += 1
                result.typed_failures["QueueFullError"] = (
                    result.typed_failures.get("QueueFullError", 0) + 1
                )
            return
        with futures_lock:
            futures.append(future)
        with result_lock:
            result.submitted += 1
        try:
            y = future.result(timeout=30)
        except ReproError as error:
            with result_lock:
                result.note_failure(error)
            return
        except FutureTimeoutError:
            with result_lock:
                result.hangs += 1
            return
        expected = reference[name].execute(x)
        match = (np.asarray(y) == expected).all()
        with result_lock:
            if match:
                result.ok += 1
            else:
                result.mismatches += 1

    with server:
        workers = [
            threading.Thread(target=one_request, args=(i,))
            for i in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        if any(thread.is_alive() for thread in workers):
            result.hangs += sum(
                1 for thread in workers if thread.is_alive()
            )
    # stop() has joined the server's workers: every accepted future must
    # now be settled — an unsettled one is a lost future, the exact bug
    # class this harness exists to catch.
    result.lost_futures = sum(1 for future in futures if not future.done())
    result.fired = _fired_by_site(plan)
    result.stats_text = server.stats().render()
    return result, plan


def _replay_consistent(
    first: _faults.FaultPlan, second: _faults.FaultPlan
) -> bool:
    """Per-site fault decisions must agree on the runs' common prefix.

    Thread timing makes the two runs consume different probe *counts*,
    but the k-th probe of a site must decide identically — compare each
    site's fired-probe set restricted to the shared prefix.
    """
    probes_a, probes_b = first.probes(), second.probes()
    fired_a, fired_b = _fired_by_site(first), _fired_by_site(second)
    for site in set(probes_a) | set(probes_b):
        common = min(probes_a.get(site, 0), probes_b.get(site, 0))
        a = {p for p in fired_a.get(site, []) if p < common}
        b = {p for p in fired_b.get(site, []) if p < common}
        if a != b:
            return False
    return True


def run_chaos(seed: int = 1234, threads: int = 100) -> ChaosReport:
    """Run all three chaos phases; see the module docstring for the gate."""
    pool_identical = _scheduler_phase(seed)
    io_errors, corrupt_dropped, store_survived = _store_phase(seed)
    with TemporaryDirectory(prefix="gust-chaos-serve-") as tmp_a:
        first, plan_a = _serve_phase(seed, threads, tmp_a)
    with TemporaryDirectory(prefix="gust-chaos-serve-") as tmp_b:
        second, plan_b = _serve_phase(seed, threads, tmp_b)
    return ChaosReport(
        seed=seed,
        threads=threads,
        spec=CHAOS_SPEC,
        pool_identical=pool_identical,
        store_io_errors=io_errors,
        store_corrupt_dropped=corrupt_dropped,
        store_survived=store_survived,
        runs=(first, second),
        replay_consistent=_replay_consistent(plan_a, plan_b),
    )
