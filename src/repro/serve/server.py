"""The in-process SpMV server: workers, backpressure, metrics, shutdown.

:class:`SpmvServer` composes a :class:`~repro.serve.registry.
MatrixRegistry` (tenants pinned to prepared plans) with a
:class:`~repro.serve.batcher.RequestBatcher` (bounded queues, batch/
max-wait admission) and a pool of worker threads that drain batches and
resolve futures.  Metrics are always on: per-request latency percentiles,
the executed batch-size histogram, and the shared schedule cache's hit
counters surface through :meth:`SpmvServer.stats`.

Failure model (the contract the chaos suite enforces):

* **No future ever hangs.**  Every accepted request resolves with a
  result or a typed :class:`~repro.errors.ServeError` subclass — on
  kernel failure, deadline expiry, worker crash, shutdown, and every
  combination thereof.
* **Deadlines fail fast.**  A request whose deadline expired before a
  worker reached it gets :class:`~repro.errors.DeadlineExceededError`
  without running the kernel; a saturated server spends cycles only on
  answers someone still wants.
* **Workers are supervised.**  A worker thread that dies from an
  unexpected exception fails its held batch with
  :class:`~repro.errors.WorkerCrashedError`, is counted, and respawns in
  place up to ``max_worker_respawns``; past the cap the lost worker is
  counted, and losing the *last* worker fails all pending requests with
  :class:`~repro.errors.ServerStoppedError` rather than stranding them
  against an empty pool.
* **Sick tenants are isolated.**  Consecutive kernel failures open the
  tenant's circuit breaker (:mod:`repro.serve.circuit`); its submits are
  refused with :class:`~repro.errors.CircuitOpenError` until a half-open
  probe succeeds, so one poisoned tenant cannot monopolize workers.

Shutdown is graceful by default: ``stop()`` stops admissions, flushes
every partial batch immediately (the max-wait timer is bypassed), joins
the workers, and only then returns — no accepted request is ever lost.
``stop(drain=False)`` instead fails queued requests with
:class:`~repro.errors.ServerStoppedError`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, InvalidStateError

import numpy as np

from repro import faults as _faults
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.errors import (
    DeadlineExceededError,
    HardwareConfigError,
    InjectedFaultError,
    ServeError,
    ServerStoppedError,
    WorkerCrashedError,
)
from repro.serve.batcher import (
    BatchPolicy,
    RequestBatcher,
    SpmvRequest,
    run_batch,
)
from repro.serve.circuit import CircuitBoard
from repro.serve.metrics import ServerMetrics, ServerStats
from repro.serve.registry import MatrixRegistry
from repro.sparse.coo import CooMatrix

#: Default total in-place worker respawns before crashes count as lost.
DEFAULT_MAX_WORKER_RESPAWNS = 3


class SpmvServer:
    """Multi-tenant SpMV serving over prepared execution plans.

    Args:
        registry: the tenant registry (one is created when omitted).
        policy: batching/admission policy.
        workers: batch-executor threads.  One worker already overlaps
            Python-side bookkeeping with NumPy/SciPy kernels (which release
            the GIL); more workers help when several tenants are hot.
        circuits: per-tenant circuit breakers (a default
            :class:`CircuitBoard` is created when omitted; pass one to
            tune thresholds or inject a clock).
        max_worker_respawns: total crashed-worker respawns before further
            crashes permanently shrink the pool.
        faults: explicit :class:`~repro.faults.FaultPlan` for the serve
            fault sites (``worker-crash``, ``kernel-error``,
            ``kernel-slow``); ``None`` uses the ambient plan.
        clock: one monotonic time source shared by the batcher, the
            metrics, and (when not passed pre-built) the circuit board —
            deadlines, latencies, and cooldowns must live on a single
            time base.  Defaults to the obs clock seam.
        metrics_registry: optional
            :class:`~repro.obs.metrics.MetricsRegistry`; when given, hot
            paths observe latency/batch-size histograms directly and a
            scrape-time collector republishes every snapshot total
            (requests, cache tiers, disk store, circuits, faults,
            workers) — see :meth:`attach_metrics`.

    Usage::

        server = SpmvServer(workers=1)
        server.register("A", matrix, length=64)
        with server:                       # start() / stop() bracketed
            y = SpmvClient(server).spmv("A", x)
    """

    def __init__(
        self,
        registry: MatrixRegistry | None = None,
        policy: BatchPolicy | None = None,
        workers: int = 1,
        circuits: CircuitBoard | None = None,
        max_worker_respawns: int = DEFAULT_MAX_WORKER_RESPAWNS,
        faults: _faults.FaultPlan | None = None,
        clock=None,
        metrics_registry: MetricsRegistry | None = None,
    ):
        if workers <= 0:
            raise ServeError(f"workers must be positive, got {workers}")
        if max_worker_respawns < 0:
            raise ServeError(
                f"max_worker_respawns must be non-negative, "
                f"got {max_worker_respawns}"
            )
        self.registry = registry if registry is not None else MatrixRegistry()
        self.batcher = RequestBatcher(policy, clock=clock)
        self.workers = workers
        self.circuits = circuits if circuits is not None else CircuitBoard(
            clock=self.batcher.clock
        )
        self.max_worker_respawns = max_worker_respawns
        self.metrics = ServerMetrics(
            clock=self.batcher.clock, registry=metrics_registry
        )
        self._faults = faults
        if metrics_registry is not None:
            self.attach_metrics(metrics_registry)
        self._threads: list[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._stop_done = threading.Event()
        self._respawns = 0
        self._workers_lost = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SpmvServer":
        with self._state_lock:
            if self._stopped:
                raise ServeError("server cannot restart after stop()")
            if self._started:
                raise ServeError("server is already running")
            self._started = True
            # Uptime (and so throughput_rps) measures serving time, not
            # the construction-to-start setup gap.
            self.metrics.mark_started()
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._supervised_worker,
                    name=f"gust-serve-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop admissions and shut the workers down.

        With ``drain`` (default) every queued request is executed before
        the workers exit; without it, queued requests fail with
        :class:`ServerStoppedError` and only in-flight batches complete.
        Idempotent, and *blocking* for every caller: a ``stop()`` that
        loses the race to another thread's ``stop()`` still waits for the
        winner to finish joining the workers before returning, so "my
        stop() returned" always means "no worker is running".
        """
        with self._state_lock:
            first = not self._stopped
            self._stopped = True
            started = self._started
        if not first:
            self._stop_done.wait()
            return
        try:
            # A never-started server has no workers to drain its queues,
            # so a drain request downgrades to abandonment (futures must
            # never hang past stop()).
            abandoned = self.batcher.close(drain=drain and started)
            self._fail_requests(
                abandoned,
                ServerStoppedError(
                    "server stopped before executing this request"
                ),
            )
            for thread in self._threads:
                thread.join()
            self._threads.clear()
        finally:
            self._stop_done.set()

    def _fail_requests(
        self, requests: list[SpmvRequest], error: ServeError
    ) -> None:
        """Resolve still-pending requests with a typed error.

        Tolerates futures that already resolved (a crashed batch may hold
        requests the expiry pass or ``run_batch`` settled first) and ones
        the caller cancelled — only genuinely pending futures get the
        error, and each is counted as a failure exactly once.
        """
        failed = 0
        for request in requests:
            if request.future.done():
                continue
            try:
                request.future.set_exception(error)
            except InvalidStateError:
                # Lost a race with a concurrent resolver/canceller; the
                # future is settled either way, which is all we need.
                continue
            failed += 1
        if failed:
            self.metrics.record_failure(failed)

    def __enter__(self) -> "SpmvServer":
        with self._state_lock:
            already = self._started
        return self if already else self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- registration --------------------------------------------------------

    def register(self, name: str, matrix: CooMatrix, **kwargs):
        """Register a tenant and open its queue; see
        :meth:`MatrixRegistry.register` for keyword arguments."""
        entry = self.registry.register(name, matrix, **kwargs)
        self.batcher.bind(entry)
        return entry

    # -- request path --------------------------------------------------------

    def submit(
        self, name: str, x: np.ndarray, deadline: float | None = None
    ) -> Future:
        """Enqueue one SpMV request; returns its future.

        ``deadline`` is absolute on the batcher's clock
        (``server.batcher.clock()``); an expired request fails fast with
        :class:`DeadlineExceededError` instead of computing.  Raises
        synchronously on unknown tenants, malformed operands, full queues
        (:class:`~repro.errors.QueueFullError` — backpressure), an open
        circuit (:class:`~repro.errors.CircuitOpenError`), and a stopped
        server.
        """
        entry = self.registry.get(name)
        try:
            self.circuits.check(name)
        except ServeError:
            self.metrics.record_reject()
            raise
        try:
            future = self.batcher.submit(entry, x, deadline=deadline)
        except (ServeError, HardwareConfigError):
            # Admission can refuse a request three ways: serving-side
            # (queue full, closed tenant, stopped server — ServeError),
            # health-side (open circuit — CircuitOpenError, raised by
            # check() above), or operand-side (shape/dtype mismatch —
            # HardwareConfigError).  All are rejections the operator
            # should see counted.  A refusal *after* check() admitted the
            # request must also give back the half-open probe slot: this
            # request will never reach a worker, so no outcome would ever
            # be recorded and the tenant would be locked out forever.
            self.circuits.abort_probe(name)
            self.metrics.record_reject()
            raise
        self.metrics.record_submit()
        return future

    # -- workers -------------------------------------------------------------

    def _supervised_worker(self) -> None:
        """Run the worker loop, respawning it in place after crashes.

        A clean return (shutdown observed) ends the thread.  An escaping
        exception is a worker crash: its batch was already failed with
        :class:`WorkerCrashedError` by :meth:`_worker_loop`, so the
        supervisor only decides whether the thread lives on.  Under the
        respawn cap the loop restarts in the same thread (``_threads``
        and ``stop()``'s join stay valid); past it the worker is lost,
        and losing the last one fails every pending request — a server
        with no workers must not hold futures it can never resolve.
        """
        while True:
            try:
                self._worker_loop()
                return
            except Exception:  # lint: disable=R5 — batch futures already
                # failed by _worker_loop; the supervisor's job is to keep
                # (or account for) capacity, not to re-raise into a
                # daemon thread's void.
                with self._state_lock:
                    self._respawns += 1
                    allowed = self._respawns <= self.max_worker_respawns
                    if not allowed:
                        self._workers_lost += 1
                        last = self._workers_lost >= self.workers
                if allowed:
                    self.metrics.record_worker_respawn()
                    continue
                self.metrics.record_worker_lost()
                if last:
                    self._fail_requests(
                        self.batcher.close(drain=False),
                        ServerStoppedError(
                            "server stopped serving: worker pool exhausted "
                            "(all workers crashed past the respawn cap)"
                        ),
                    )
                return

    def _worker_loop(self) -> None:
        while True:
            item = self.batcher.take_batch()
            if item is None:
                return
            entry, batch = item
            try:
                self._run_one(entry, batch)
            except Exception:
                # Unexpected failure outside the kernel try (or an
                # injected worker-crash): the worker is about to die, so
                # resolve the batch it holds before propagating to the
                # supervisor — a crash may cost its batch a typed error,
                # never a hung client.  The crash says nothing about the
                # tenant's kernel, so a probe riding in this batch is
                # aborted (not failed) before clients see the error.
                self.circuits.abort_probe(entry.name)
                self._fail_requests(
                    batch,
                    WorkerCrashedError(
                        "worker thread crashed while executing this batch"
                    ),
                )
                raise

    def _run_one(self, entry, batch: list[SpmvRequest]) -> None:
        """Execute one dequeued batch: expiry, kernel, breaker, metrics.

        Traced as one span tree per batch: ``serve.batch`` wraps the
        expiry pass and :func:`run_batch`'s ``serve.assemble`` /
        ``serve.kernel`` / ``serve.settle`` children (same thread, so
        the tracer's per-thread stack nests them under this root).
        """
        with _trace.span(
            "serve.batch", cat="serve", tenant=entry.name, size=len(batch)
        ):
            live = self._expire_requests(batch)
            if not live:
                # The whole batch expired (or was cancelled) without
                # touching the kernel: no outcome to report, but a probe
                # riding in it must release its slot or the tenant stays
                # locked out.
                self.circuits.abort_probe(entry.name)
                return
            _faults.raise_if(
                "worker-crash",
                lambda: InjectedFaultError("injected worker-crash fault"),
                self._faults,
            )
            try:
                run_batch(entry, live, self._faults)
            except Exception:  # lint: disable=R5 — run_batch already
                # failed every future in the batch with the kernel's
                # exception; the worker stays alive for the other tenants
                # and the breaker hears about the failure.
                self.metrics.record_failure(len(live))
                self.circuits.record_failure(entry.name)
                return
            self.circuits.record_success(entry.name)
            done = self.batcher.clock()
            self.metrics.record_batch(
                len(live), [done - request.enqueued for request in live]
            )

    def _expire_requests(
        self, batch: list[SpmvRequest]
    ) -> list[SpmvRequest]:
        """Fail expired requests fast; returns the still-live remainder.

        Clients hold these futures and may cancel (or otherwise settle)
        them while queued — a settled future is skipped, never re-set:
        an :class:`InvalidStateError` escaping here would read as a
        worker crash and burn the respawn cap on a client-side race.
        """
        now = self.batcher.clock()
        live: list[SpmvRequest] = []
        expired = 0
        for request in batch:
            if request.future.done():
                # Cancelled (or settled by a racing resolver) while
                # queued; nothing left to compute or to fail.
                continue
            if request.deadline is not None and now > request.deadline:
                try:
                    request.future.set_exception(
                        DeadlineExceededError(
                            "request deadline expired before execution"
                        )
                    )
                except InvalidStateError:
                    # Lost the race to a concurrent canceller.
                    continue
                expired += 1
            else:
                live.append(request)
        if expired:
            self.metrics.record_deadline_expired(expired)
        return live

    # -- introspection -------------------------------------------------------

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Publish this server's observable state into ``registry``.

        Registers a scrape-time collector that republishes every
        snapshot total — the subsystems already count authoritatively
        (:class:`ServerMetrics`, :class:`~repro.core.cache.CacheStats`,
        :class:`~repro.core.store.DiskStoreStats`,
        :class:`~repro.serve.circuit.CircuitSnapshot`, the fault plan's
        probe counters) — so one scrape is one consistent read without
        instrumenting each increment site.  Families are created
        eagerly, so every scrape carries the full ``gust_*`` schema even
        before traffic arrives.
        """
        requests = registry.counter(
            "gust_requests_total",
            help="Requests by terminal disposition.",
        )
        batches = registry.counter(
            "gust_batches_total", help="Batches executed."
        )
        quantiles = registry.gauge(
            "gust_request_latency_quantile_seconds",
            help="Latency percentiles over the recent reservoir.",
        )
        uptime = registry.gauge(
            "gust_uptime_seconds", help="Seconds since serving started."
        )
        workers = registry.counter(
            "gust_workers_total",
            help="Worker supervision events (respawned, lost).",
        )
        cache_events = registry.counter(
            "gust_cache_events_total",
            help="Schedule-cache lookup outcomes and evictions.",
        )
        cache_rates = registry.gauge(
            "gust_cache_hit_rate",
            help="Hit rate per cache tier (0 when the tier is cold).",
        )
        store_events = registry.counter(
            "gust_store_events_total",
            help="Disk schedule-store activity incl. io_errors and "
            "quarantined artifacts.",
        )
        circuit_state = registry.gauge(
            "gust_circuit_state",
            help="Per-tenant breaker state: 0 closed, 1 half-open, 2 open.",
        )
        circuit_events = registry.counter(
            "gust_circuit_events_total",
            help="Breaker transitions and admission outcomes.",
        )
        fault_probes = registry.counter(
            "gust_fault_probes_total",
            help="Fault-site probes consumed (decisions taken).",
        )
        faults_fired = registry.counter(
            "gust_faults_fired_total", help="Injected faults that fired."
        )
        state_values = {"closed": 0, "half-open": 1, "open": 2}

        def collect() -> None:
            stats = self.stats()
            for state, value in (
                ("submitted", stats.submitted),
                ("completed", stats.completed),
                ("rejected", stats.rejected),
                ("failed", stats.failed),
                ("deadline_expired", stats.deadline_expired),
            ):
                requests.set_total(value, state=state)
            batches.set_total(stats.batches)
            quantiles.set(stats.p50_ms / 1e3, quantile="0.5")
            quantiles.set(stats.p99_ms / 1e3, quantile="0.99")
            uptime.set(stats.uptime_s)
            workers.set_total(stats.workers_respawned, event="respawned")
            workers.set_total(stats.workers_lost, event="lost")

            cache = stats.cache
            for event, value in (
                ("hit", cache.hits),
                ("refresh", cache.refreshes),
                ("miss", cache.misses),
                ("eviction", cache.evictions),
                ("disk_hit", cache.disk_hits),
                ("disk_miss", cache.disk_misses),
            ):
                cache_events.set_total(value, event=event)
            disk_lookups = cache.disk_hits + cache.disk_misses
            cache_rates.set(cache.hit_rate, tier="overall")
            cache_rates.set(
                (cache.hits + cache.refreshes - cache.disk_hits)
                / cache.lookups if cache.lookups else 0.0,
                tier="memory",
            )
            cache_rates.set(
                cache.disk_hits / disk_lookups if disk_lookups else 0.0,
                tier="disk",
            )

            store = getattr(self.registry.cache, "store", None)
            if store is not None:
                disk = store.stats
                for event, value in (
                    ("hit", disk.hits),
                    ("miss", disk.misses),
                    ("write", disk.writes),
                    ("write_error", disk.write_errors),
                    ("corrupt_dropped", disk.corrupt_dropped),
                    ("eviction", disk.evictions),
                    ("io_error", disk.io_errors),
                    ("stat_walk", disk.stat_walks),
                ):
                    store_events.set_total(value, event=event)

            circuits = stats.circuits
            for tenant, state in circuits.states.items():
                circuit_state.set(state_values[state], tenant=tenant)
            for event, value in (
                ("opened", circuits.opened),
                ("half_opened", circuits.half_opened),
                ("closed", circuits.closed),
                ("rejected", circuits.rejected),
                ("probe_aborted", circuits.probes_aborted),
                ("probe_reclaimed", circuits.probes_reclaimed),
            ):
                circuit_events.set_total(value, event=event)

            plan = _faults.resolve(self._faults)
            probes = plan.probes() if plan is not None else {}
            fired: dict[str, int] = {}
            if plan is not None:
                for event in plan.history():
                    fired[event.site] = fired.get(event.site, 0) + 1
            for site in _faults.SITES:
                fault_probes.set_total(probes.get(site, 0), site=site)
                faults_fired.set_total(fired.get(site, 0), site=site)

        registry.register_collector(collect)

    def stats(self) -> ServerStats:
        """Snapshot of counters, latency percentiles, histogram, circuit
        states, worker supervision totals, and the shared schedule
        cache's hit rates.

        While the server is running the snapshot is eventually
        consistent: a worker resolves a batch's futures *before* it
        records their metrics, so a client that just received its result
        may not be counted yet.  After :meth:`stop` returns (workers
        joined) the counters are exact.
        """
        return self.metrics.snapshot(
            cache=self.registry.cache_stats,
            circuits=self.circuits.snapshot(),
        )
