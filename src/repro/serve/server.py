"""The in-process SpMV server: workers, backpressure, metrics, shutdown.

:class:`SpmvServer` composes a :class:`~repro.serve.registry.
MatrixRegistry` (tenants pinned to prepared plans) with a
:class:`~repro.serve.batcher.RequestBatcher` (bounded queues, batch/
max-wait admission) and a pool of worker threads that drain batches and
resolve futures.  Metrics are always on: per-request latency percentiles,
the executed batch-size histogram, and the shared schedule cache's hit
counters surface through :meth:`SpmvServer.stats`.

Shutdown is graceful by default: ``stop()`` stops admissions, flushes
every partial batch immediately (the max-wait timer is bypassed), joins
the workers, and only then returns — no accepted request is ever lost.
``stop(drain=False)`` instead fails queued requests with
:class:`~repro.errors.ServeError`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

import numpy as np

from repro.errors import HardwareConfigError, ServeError
from repro.serve.batcher import BatchPolicy, RequestBatcher, run_batch
from repro.serve.metrics import ServerMetrics, ServerStats
from repro.serve.registry import MatrixRegistry
from repro.sparse.coo import CooMatrix

import time


class SpmvServer:
    """Multi-tenant SpMV serving over prepared execution plans.

    Args:
        registry: the tenant registry (one is created when omitted).
        policy: batching/admission policy.
        workers: batch-executor threads.  One worker already overlaps
            Python-side bookkeeping with NumPy/SciPy kernels (which release
            the GIL); more workers help when several tenants are hot.

    Usage::

        server = SpmvServer(workers=1)
        server.register("A", matrix, length=64)
        with server:                       # start() / stop() bracketed
            y = SpmvClient(server).spmv("A", x)
    """

    def __init__(
        self,
        registry: MatrixRegistry | None = None,
        policy: BatchPolicy | None = None,
        workers: int = 1,
    ):
        if workers <= 0:
            raise ServeError(f"workers must be positive, got {workers}")
        self.registry = registry if registry is not None else MatrixRegistry()
        self.batcher = RequestBatcher(policy)
        self.workers = workers
        self.metrics = ServerMetrics()
        self._threads: list[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._stop_done = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SpmvServer":
        with self._state_lock:
            if self._stopped:
                raise ServeError("server cannot restart after stop()")
            if self._started:
                raise ServeError("server is already running")
            self._started = True
            # Uptime (and so throughput_rps) measures serving time, not
            # the construction-to-start setup gap.
            self.metrics.mark_started()
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"gust-serve-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop admissions and shut the workers down.

        With ``drain`` (default) every queued request is executed before
        the workers exit; without it, queued requests fail with
        :class:`ServeError` and only in-flight batches complete.
        Idempotent, and *blocking* for every caller: a ``stop()`` that
        loses the race to another thread's ``stop()`` still waits for the
        winner to finish joining the workers before returning, so "my
        stop() returned" always means "no worker is running".
        """
        with self._state_lock:
            first = not self._stopped
            self._stopped = True
            started = self._started
        if not first:
            self._stop_done.wait()
            return
        try:
            # A never-started server has no workers to drain its queues,
            # so a drain request downgrades to abandonment (futures must
            # never hang past stop()).
            abandoned = self.batcher.close(drain=drain and started)
            if abandoned:
                error = ServeError(
                    "server stopped before executing this request"
                )
                for request in abandoned:
                    request.future.set_exception(error)
                self.metrics.record_failure(len(abandoned))
            for thread in self._threads:
                thread.join()
            self._threads.clear()
        finally:
            self._stop_done.set()

    def __enter__(self) -> "SpmvServer":
        with self._state_lock:
            already = self._started
        return self if already else self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- registration --------------------------------------------------------

    def register(self, name: str, matrix: CooMatrix, **kwargs):
        """Register a tenant and open its queue; see
        :meth:`MatrixRegistry.register` for keyword arguments."""
        entry = self.registry.register(name, matrix, **kwargs)
        self.batcher.bind(entry)
        return entry

    # -- request path --------------------------------------------------------

    def submit(self, name: str, x: np.ndarray) -> Future:
        """Enqueue one SpMV request; returns its future.

        Raises synchronously on unknown tenants, malformed operands, full
        queues (:class:`~repro.errors.QueueFullError` — backpressure), and
        a stopped server.
        """
        entry = self.registry.get(name)
        try:
            future = self.batcher.submit(entry, x)
        except (ServeError, HardwareConfigError):
            # Admission can refuse a request two ways: serving-side
            # (queue full, closed tenant, stopped server — ServeError) or
            # operand-side (shape/dtype mismatch — HardwareConfigError).
            # Both are rejections the operator should see counted.
            self.metrics.record_reject()
            raise
        self.metrics.record_submit()
        return future

    # -- workers -------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self.batcher.take_batch()
            if item is None:
                return
            entry, batch = item
            try:
                run_batch(entry, batch)
            except Exception:
                # run_batch already failed the batch's futures; keep the
                # worker alive for the other tenants.
                self.metrics.record_failure(len(batch))
                continue
            done = time.perf_counter()
            self.metrics.record_batch(
                len(batch), [done - request.enqueued for request in batch]
            )

    # -- introspection -------------------------------------------------------

    def stats(self) -> ServerStats:
        """Snapshot of counters, latency percentiles, histogram, and the
        shared schedule cache's hit rates.

        While the server is running the snapshot is eventually
        consistent: a worker resolves a batch's futures *before* it
        records their metrics, so a client that just received its result
        may not be counted yet.  After :meth:`stop` returns (workers
        joined) the counters are exact.
        """
        return self.metrics.snapshot(cache=self.registry.cache_stats)
