"""Per-tenant circuit breakers for the SpMV server.

A tenant whose kernel keeps failing — a poisoned artifact, a pathological
operand pattern, an injected chaos fault — must not be allowed to burn
worker time on requests that are overwhelmingly likely to fail, nor to
crowd out healthy tenants' batches.  The classic remedy is the circuit
breaker:

* **CLOSED** (healthy): requests flow; consecutive kernel failures are
  counted, and any success resets the count.
* **OPEN** (tripped): after ``failure_threshold`` consecutive failures the
  breaker refuses the tenant's submits with
  :class:`~repro.errors.CircuitOpenError` for ``reset_after_s`` — callers
  back off instead of queueing doomed work.
* **HALF_OPEN** (probing): once the cooldown elapses, exactly one request
  is admitted as a probe (concurrent submits are still refused, so a
  thundering herd cannot re-saturate a sick tenant).  The probe's success
  closes the breaker; its failure re-opens it and re-arms the cooldown.

Breakers are bookkeeping on the submit path only: admission consults
:meth:`CircuitBoard.check`, and the worker reports batch outcomes via
``record_success`` / ``record_failure``.  A probe that never reaches the
kernel — the submit is refused synchronously right after admission, the
request expires before execution, the worker holding it crashes, the
queue is dropped on shutdown — must give its slot back, or the tenant is
locked out forever on a probe nobody will ever report.  Two mechanisms
guarantee that: callers that know the probe died without an outcome call
:meth:`CircuitBoard.abort_probe`, and :meth:`CircuitBoard.check` itself
reclaims a probe slot that has been in flight longer than
``reset_after_s`` (the abandoned-probe backstop — a later submit becomes
the new probe instead of being refused forever).  All transitions are
counted and exposed through :meth:`CircuitBoard.snapshot` so
:class:`~repro.serve.metrics.ServerStats` can render them — an operator
should see a breaker flapping, not infer it from latency.

The clock is injectable (monotonic seconds) so cooldown arithmetic is
testable without sleeping; the default is the shared obs clock seam, the
same time base as the batcher's deadlines — a request's deadline and its
tenant's cooldown must never be compared across different clocks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import CircuitOpenError, HardwareConfigError
from repro.obs import clock as _obs_clock

#: State names as exposed in snapshots and stats rendering.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Consecutive kernel failures that trip a tenant's breaker.
DEFAULT_FAILURE_THRESHOLD = 5

#: Seconds an open breaker refuses requests before probing.
DEFAULT_RESET_AFTER_S = 0.05


@dataclass(frozen=True)
class CircuitSnapshot:
    """One consistent view of a :class:`CircuitBoard`.

    Attributes:
        states: tenant name -> current state (only tenants that have
            reported at least one outcome or tripped appear).
        opened: total closed/half-open -> open transitions.
        half_opened: total open -> half-open transitions.
        closed: total half-open -> closed (recovery) transitions.
        rejected: submits refused with :class:`CircuitOpenError`.
        probes_aborted: probe slots released without an outcome
            (refused submit, expired request, crashed worker).
        probes_reclaimed: stale in-flight probes taken over by a later
            submit after ``reset_after_s`` (the abandoned-probe backstop).
    """

    states: dict[str, str]
    opened: int = 0
    half_opened: int = 0
    closed: int = 0
    rejected: int = 0
    probes_aborted: int = 0
    probes_reclaimed: int = 0


class _Breaker:
    """State for one tenant; all access is under the board's lock."""

    __slots__ = ("state", "failures", "opened_at", "probing", "probe_since")

    def __init__(self):
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False
        self.probe_since = 0.0


class CircuitBoard:
    """Every tenant's breaker plus aggregate transition counters.

    Args:
        failure_threshold: consecutive failures that open a breaker.
        reset_after_s: cooldown before an open breaker admits a probe.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_after_s: float = DEFAULT_RESET_AFTER_S,
        clock=None,
    ):
        if failure_threshold < 1:
            raise HardwareConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s < 0:
            raise HardwareConfigError(
                f"reset_after_s must be non-negative, got {reset_after_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.clock = clock or _obs_clock.monotonic
        self._lock = threading.Lock()
        self._breakers: dict[str, _Breaker] = {}
        self._opened = 0
        self._half_opened = 0
        self._closed = 0
        self._rejected = 0
        self._probes_aborted = 0
        self._probes_reclaimed = 0

    def _get(self, name: str) -> _Breaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = _Breaker()
        return breaker

    # -- admission -----------------------------------------------------------

    def check(self, name: str) -> None:
        """Admit or refuse one submit for tenant ``name``.

        Raises :class:`CircuitOpenError` while the breaker is open (and
        the cooldown has not elapsed) or while a half-open probe is
        already in flight.  When the cooldown elapses, this call itself
        becomes the probe: the breaker moves to half-open and admits
        exactly this request until the probe's outcome is reported — or
        until the probe has been in flight for ``reset_after_s`` without
        an outcome, at which point it is presumed lost (refused submit
        whose caller forgot to abort, crashed worker, dropped queue) and
        a later ``check`` reclaims the slot as the new probe.
        """
        now = self.clock()
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None or breaker.state == CLOSED:
                return
            if breaker.state == OPEN:
                elapsed = now - breaker.opened_at
                if elapsed < self.reset_after_s:
                    self._rejected += 1
                    raise CircuitOpenError(
                        f"circuit for matrix {name!r} is open "
                        f"({breaker.failures} consecutive failures); "
                        f"retry after {self.reset_after_s - elapsed:.3f}s"
                    )
                breaker.state = HALF_OPEN
                breaker.probing = True
                breaker.probe_since = now
                self._half_opened += 1
                return
            # HALF_OPEN: one probe at a time.
            if breaker.probing:
                if now - breaker.probe_since < self.reset_after_s:
                    self._rejected += 1
                    raise CircuitOpenError(
                        f"circuit for matrix {name!r} is half-open with a "
                        f"probe in flight; retry shortly"
                    )
                # The in-flight probe outlived the cooldown with no
                # outcome reported: presume it lost (expired, crashed, or
                # abandoned) and let this request take over as the probe,
                # or the tenant stays locked out forever.
                self._probes_reclaimed += 1
            breaker.probing = True
            breaker.probe_since = now

    def abort_probe(self, name: str) -> None:
        """Release ``name``'s probe slot without recording an outcome.

        For probes that die before the kernel can judge them: the submit
        admitted by :meth:`check` is refused synchronously (full queue,
        stopped server, malformed operand), the request expires before
        execution, or the worker holding it crashes.  None of those say
        anything about the tenant's health, so the breaker stays
        half-open and the *next* submit becomes a fresh probe.  A no-op
        when no probe is in flight.
        """
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is not None and breaker.probing:
                breaker.probing = False
                self._probes_aborted += 1

    # -- outcome reporting ---------------------------------------------------

    def record_success(self, name: str) -> None:
        """A batch for ``name`` executed successfully."""
        with self._lock:
            breaker = self._get(name)
            breaker.failures = 0
            breaker.probing = False
            if breaker.state != CLOSED:
                breaker.state = CLOSED
                self._closed += 1

    def record_failure(self, name: str) -> None:
        """A batch for ``name`` failed (one kernel failure, any size)."""
        with self._lock:
            breaker = self._get(name)
            breaker.failures += 1
            breaker.probing = False
            if breaker.state == HALF_OPEN or (
                breaker.state == CLOSED
                and breaker.failures >= self.failure_threshold
            ):
                breaker.state = OPEN
                breaker.opened_at = self.clock()
                self._opened += 1

    # -- introspection -------------------------------------------------------

    def state_of(self, name: str) -> str:
        """Current state of one tenant's breaker (CLOSED if untouched)."""
        with self._lock:
            breaker = self._breakers.get(name)
            return breaker.state if breaker is not None else CLOSED

    def snapshot(self) -> CircuitSnapshot:
        """Consistent point-in-time view for the stats surface."""
        with self._lock:
            return CircuitSnapshot(
                states={
                    name: breaker.state
                    for name, breaker in self._breakers.items()
                },
                opened=self._opened,
                half_opened=self._half_opened,
                closed=self._closed,
                rejected=self._rejected,
                probes_aborted=self._probes_aborted,
                probes_reclaimed=self._probes_reclaimed,
            )
