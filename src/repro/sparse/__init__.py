"""Sparse-matrix substrate for the GUST reproduction.

This subpackage provides the matrix containers, synthetic generators, and
surrogate datasets every simulator in the library consumes.  The containers
are thin, validated wrappers around numpy arrays; scipy interoperability
lives in :mod:`repro.sparse.convert` so the core never requires scipy.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.convert import from_dense, from_scipy, to_dense, to_scipy
from repro.sparse.generators import (
    banded,
    block_diagonal,
    k_regular,
    power_law,
    uniform_random,
)
from repro.sparse.datasets import (
    DatasetSpec,
    figure7_suite,
    load_dataset,
    serpens_suite,
)

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "DatasetSpec",
    "banded",
    "block_diagonal",
    "figure7_suite",
    "from_dense",
    "from_scipy",
    "k_regular",
    "load_dataset",
    "power_law",
    "serpens_suite",
    "to_dense",
    "to_scipy",
    "uniform_random",
]
