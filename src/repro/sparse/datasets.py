"""Surrogate datasets for the paper's real-world matrix suites.

The paper evaluates on SuiteSparse/SNAP matrices that are not available
offline.  For each named matrix we record its true dimension, nonzero count,
and density (from the paper's Table 3 and the density labels of Figures 7-9),
assign a structure family, and generate a deterministic synthetic surrogate
from the matching generator in :mod:`repro.sparse.generators`.

Scaling: pure-Python simulation cannot process tens of millions of nonzeros,
so :func:`load_dataset` accepts a ``scale`` factor that divides the dimension
while *preserving the mean row degree* (so density rises by roughly the same
factor).  GUST's utilization depends on the row/column-segment degree
distribution relative to the accelerator length (Eq. 11 of the paper), which
this scaling preserves; EXPERIMENTS.md records the scale used per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError
from repro.sparse.coo import CooMatrix
from repro.sparse.generators import (
    banded,
    block_diagonal,
    k_regular,
    power_law,
    uniform_random,
)

import numpy as np

#: Families understood by the generator dispatch below.
_FAMILIES = ("circuit", "fem", "social", "kreg", "block", "dense", "quantum")


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one paper matrix and its surrogate recipe.

    Attributes:
        name: the paper's matrix name.
        paper_dim: true square dimension reported by the paper/SuiteSparse.
        paper_nnz: true nonzero count.
        family: structure family used to synthesize the surrogate.
        source: collection the paper took it from (informational).
        seed: deterministic generation seed.
    """

    name: str
    paper_dim: int
    paper_nnz: int
    family: str
    source: str
    seed: int

    @property
    def paper_density(self) -> float:
        return self.paper_nnz / (self.paper_dim * self.paper_dim)

    @property
    def mean_row_degree(self) -> float:
        return self.paper_nnz / self.paper_dim


_FIGURE7_SPECS = [
    DatasetSpec("scircuit", 170_998, 958_936, "circuit", "SuiteSparse", 101),
    DatasetSpec("pre2", 659_033, 5_834_044, "circuit", "SuiteSparse", 102),
    DatasetSpec("poisson3db", 85_623, 2_374_949, "fem", "SuiteSparse", 103),
    DatasetSpec("bcircuit", 68_902, 375_558, "circuit", "SuiteSparse", 104),
    DatasetSpec("soc-Epinions1", 75_888, 508_837, "social", "SNAP", 105),
    DatasetSpec("cage12", 130_228, 2_032_536, "kreg", "SuiteSparse", 106),
    DatasetSpec("nopoly", 10_774, 70_842, "fem", "SuiteSparse", 107),
    DatasetSpec("wiki-Vote", 8_297, 103_689, "social", "SNAP", 108),
    DatasetSpec("CollegeMsg", 1_899, 20_296, "social", "SNAP", 109),
    DatasetSpec("TSCOPF-1047", 1_047, 32_887, "block", "SuiteSparse", 110),
    DatasetSpec("mycielskian11", 1_535, 134_710, "dense", "SuiteSparse", 111),
    DatasetSpec("heart1", 3_557, 1_385_317, "dense", "SuiteSparse", 112),
]

_SERPENS_SPECS = [
    DatasetSpec("crankseg_2", 63_838, 14_148_858, "fem", "SuiteSparse", 201),
    DatasetSpec("Si41Ge41H72", 185_639, 15_011_265, "quantum", "SuiteSparse", 202),
    DatasetSpec("TSOPF_RS_b2383", 38_120, 16_171_169, "block", "SuiteSparse", 203),
    DatasetSpec("ML_Laplace", 377_002, 27_582_698, "fem", "SuiteSparse", 204),
    DatasetSpec("mouse_gene", 45_101, 28_967_291, "dense", "SuiteSparse", 205),
    DatasetSpec("coPapersCiteseer", 434_102, 21_148_134, "social", "SuiteSparse", 206),
    DatasetSpec("PFlow_742", 742_793, 37_138_461, "fem", "SuiteSparse", 207),
    DatasetSpec("googleplus", 107_614, 13_673_453, "social", "SNAP", 208),
    DatasetSpec("soc_pokec", 1_632_803, 30_622_564, "social", "SNAP", 209),
]

_REGISTRY = {spec.name: spec for spec in _FIGURE7_SPECS + _SERPENS_SPECS}


def figure7_suite() -> list[DatasetSpec]:
    """The 12 matrices of Figures 7-9, in the paper's plotting order."""
    return list(_FIGURE7_SPECS)


def serpens_suite() -> list[DatasetSpec]:
    """The 9 matrices of Tables 3-4 (GUST vs Serpens comparison)."""
    return list(_SERPENS_SPECS)


def dataset_names() -> list[str]:
    """All registered dataset names."""
    return list(_REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def load_dataset(
    name: str,
    scale: float = 1.0,
    floor_dim: int = 1024,
) -> CooMatrix:
    """Generate the surrogate for ``name`` at a reduced scale.

    Args:
        name: a registered dataset name (see :func:`dataset_names`).
        scale: dimension divisor; 1.0 reproduces the paper's dimension.
        floor_dim: dimensions are never scaled below this (small matrices
            like CollegeMsg are generated at their true size regardless).

    The mean row degree of the original is preserved, capped so density never
    exceeds 0.5.
    """
    spec = get_spec(name)
    if scale < 1.0:
        raise DatasetError(f"scale must be >= 1, got {scale}")
    dim = spec.paper_dim
    if dim > floor_dim:
        dim = max(floor_dim, int(round(dim / scale)))
    row_degree = min(spec.mean_row_degree, 0.5 * dim)
    return _generate(spec, dim, row_degree)


def _generate(spec: DatasetSpec, dim: int, row_degree: float) -> CooMatrix:
    density = row_degree / dim
    if spec.family == "circuit":
        # Sparse near-diagonal structure plus off-band couplings.
        band_part = banded(dim, dim, bandwidth=2, fill=0.5, seed=spec.seed)
        remaining = max(0.0, density - band_part.density)
        sprinkle = uniform_random(dim, dim, remaining, seed=spec.seed + 1)
        return _overlay(band_part, sprinkle)
    if spec.family == "fem":
        # Stencil band: nonzeros cluster near the diagonal but scatter
        # within a band ~3x wider than the row degree, like real FEM
        # stiffness matrices (a *dense* band would resonate with the
        # accelerator length: columns one length apart share a segment).
        bandwidth = max(1, int(round(1.5 * row_degree)))
        fill = min(1.0, row_degree / (2 * bandwidth + 1))
        return banded(dim, dim, bandwidth=bandwidth, fill=fill, seed=spec.seed)
    if spec.family == "social":
        return power_law(dim, dim, density, seed=spec.seed)
    if spec.family == "kreg":
        k = max(1, min(dim, int(round(row_degree))))
        return k_regular(dim, dim, k, seed=spec.seed)
    if spec.family == "block":
        block = max(2, int(round(row_degree / 0.8)))
        return block_diagonal(dim, dim, block, block_density=0.8, seed=spec.seed)
    if spec.family == "dense":
        return uniform_random(dim, dim, density, seed=spec.seed)
    if spec.family == "quantum":
        # Electronic-structure matrices: a band plus long-range couplings.
        bandwidth = max(1, int(round(row_degree / 4)))
        band_part = banded(dim, dim, bandwidth=bandwidth, fill=0.8, seed=spec.seed)
        remaining = max(0.0, density - band_part.density)
        tail = uniform_random(dim, dim, remaining, seed=spec.seed + 1)
        return _overlay(band_part, tail)
    raise DatasetError(f"spec {spec.name!r} has unknown family {spec.family!r}")


def _overlay(a: CooMatrix, b: CooMatrix) -> CooMatrix:
    """Sum of two matrices of identical shape, as a canonical COO."""
    if a.shape != b.shape:
        raise DatasetError("overlay requires matching shapes")
    return CooMatrix.from_arrays(
        np.concatenate([a.rows, b.rows]),
        np.concatenate([a.cols, b.cols]),
        np.concatenate([a.data, b.data]),
        a.shape,
    )
