"""Coordinate-format sparse matrix container.

The COO layout (parallel ``rows``/``cols``/``data`` arrays) is the library's
interchange format: generators emit it, the scheduler consumes it, and the
paper's own scheduled storage (:class:`repro.core.schedule.Schedule`) notes
that it "can be viewed as a compressed storage format similar to the
Coordinate format".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MatrixFormatError


@dataclass(frozen=True)
class CooMatrix:
    """An immutable sparse matrix in coordinate format.

    Entries are stored deduplicated and sorted by (row, col).  Use
    :meth:`from_arrays` to build from raw, possibly messy triplets.

    Attributes:
        rows: int64 array of row indices, one per nonzero.
        cols: int64 array of column indices, one per nonzero.
        data: float64 array of values, one per nonzero.
        shape: (m, n) matrix dimensions.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    # -- construction -----------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        sum_duplicates: bool = True,
    ) -> "CooMatrix":
        """Build a canonical COO matrix from raw triplets.

        Triplets are validated against ``shape``, sorted by (row, col), and
        duplicates are summed (set ``sum_duplicates=False`` to reject them
        instead).  Explicit zeros are dropped.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not (rows.ndim == cols.ndim == data.ndim == 1):
            raise MatrixFormatError("rows, cols and data must be 1-D arrays")
        if not (rows.size == cols.size == data.size):
            raise MatrixFormatError(
                f"triplet arrays disagree in length: "
                f"{rows.size}, {cols.size}, {data.size}"
            )
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise MatrixFormatError(f"shape must be non-negative, got {shape}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= m:
                raise MatrixFormatError("row index out of range")
            if cols.min() < 0 or cols.max() >= n:
                raise MatrixFormatError("column index out of range")

        order = np.lexsort((cols, rows))
        rows, cols, data = rows[order], cols[order], data[order]

        if rows.size:
            key_same = np.zeros(rows.size, dtype=bool)
            key_same[1:] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if key_same.any():
                if not sum_duplicates:
                    raise MatrixFormatError("duplicate (row, col) entries present")
                group_id = np.cumsum(~key_same) - 1
                summed = np.zeros(group_id[-1] + 1, dtype=np.float64)
                np.add.at(summed, group_id, data)
                first = ~key_same
                rows, cols, data = rows[first], cols[first], summed

        keep = data != 0.0
        if not keep.all():
            rows, cols, data = rows[keep], cols[keep], data[keep]

        return cls(rows=rows, cols=cols, data=data, shape=(m, n))

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CooMatrix":
        """An all-zero matrix of the given shape."""
        zero = np.zeros(0, dtype=np.int64)
        return cls.from_arrays(zero, zero, np.zeros(0), shape)

    # -- basic properties --------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """nnz divided by m*n (0.0 for degenerate shapes)."""
        m, n = self.shape
        if m == 0 or n == 0:
            return 0.0
        return self.nnz / (m * n)

    def row_counts(self) -> np.ndarray:
        """Array of length m: nonzeros in each row."""
        return np.bincount(self.rows, minlength=self.shape[0])

    def col_counts(self) -> np.ndarray:
        """Array of length n: nonzeros in each column."""
        return np.bincount(self.cols, minlength=self.shape[1])

    # -- operations ---------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A @ x used as the library's numerical oracle."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise MatrixFormatError(
                f"vector length {x.shape} incompatible with shape {self.shape}"
            )
        y = np.zeros(self.shape[0], dtype=np.float64)
        np.add.at(y, self.rows, self.data * x[self.cols])
        return y

    def transpose(self) -> "CooMatrix":
        """Return the transpose as a new canonical COO matrix."""
        return CooMatrix.from_arrays(
            self.cols, self.rows, self.data, (self.shape[1], self.shape[0])
        )

    def permute_rows(self, perm: np.ndarray) -> "CooMatrix":
        """Return a copy with row i moved to position perm[i].

        ``perm`` must be a permutation of ``range(m)``.  Used by the load
        balancer, whose Step 1 sorts rows by nonzero count.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if not _is_permutation(perm, self.shape[0]):
            raise MatrixFormatError("perm is not a permutation of range(m)")
        return CooMatrix.from_arrays(
            perm[self.rows], self.cols, self.data, self.shape
        )

    def permute_cols(self, perm: np.ndarray) -> "CooMatrix":
        """Return a copy with column j moved to position perm[j]."""
        perm = np.asarray(perm, dtype=np.int64)
        if not _is_permutation(perm, self.shape[1]):
            raise MatrixFormatError("perm is not a permutation of range(n)")
        return CooMatrix.from_arrays(
            self.rows, perm[self.cols], self.data, self.shape
        )

    def row_window(self, start: int, stop: int) -> "CooMatrix":
        """Extract rows [start, stop) as a (stop-start, n) matrix.

        This is the windowing primitive: GUST processes an m-by-n matrix in
        consecutive sets of ``l`` rows.
        """
        if not (0 <= start <= stop <= self.shape[0]):
            raise MatrixFormatError(
                f"window [{start}, {stop}) outside 0..{self.shape[0]}"
            )
        mask = (self.rows >= start) & (self.rows < stop)
        return CooMatrix.from_arrays(
            self.rows[mask] - start,
            self.cols[mask],
            self.data[mask],
            (stop - start, self.shape[1]),
        )

    def with_data(self, data: np.ndarray) -> "CooMatrix":
        """Same sparsity pattern, new values (Jacobian/Hessian reuse case).

        The paper notes that when values change but the pattern does not, the
        edge-coloring need not be recomputed — only the value stream.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.shape != self.data.shape:
            raise MatrixFormatError("data length must match nnz")
        if (data == 0.0).any():
            raise MatrixFormatError("with_data cannot introduce explicit zeros")
        return CooMatrix(rows=self.rows, cols=self.cols, data=data, shape=self.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CooMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CooMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )


def _is_permutation(perm: np.ndarray, size: int) -> bool:
    if perm.shape != (size,):
        return False
    seen = np.zeros(size, dtype=bool)
    valid = (perm >= 0) & (perm < size)
    if not valid.all():
        return False
    seen[perm] = True
    return bool(seen.all())
