"""Synthetic sparse-matrix generators.

The paper evaluates GUST on synthetic matrices with uniform, power-law, and
k-regular nonzero distributions (Section 4, "Dataset"), generated there with
the SNAP tooling.  Offline, we regenerate the same families directly:

* :func:`uniform_random` — every cell nonzero independently with probability
  equal to the target density (the model behind the paper's statistical
  bound, Section 3.4).
* :func:`power_law` — Zipf-distributed row degrees with Zipf-weighted column
  selection, matching social/web graph structure.
* :func:`k_regular` — exactly ``k`` nonzeros per row and per column, built as
  a union of ``k`` random permutation matrices.
* :func:`banded` and :func:`block_diagonal` — structured families used by the
  surrogate datasets (FEM meshes, circuits, power networks).

All generators are deterministic given ``seed`` and return
:class:`~repro.sparse.coo.CooMatrix` with values drawn uniformly from
[value_lo, value_hi] excluding zero.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.sparse.coo import CooMatrix

_VALUE_LO = 0.1
_VALUE_HI = 1.0


def _values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Nonzero values bounded away from zero so dedup never drops entries."""
    return rng.uniform(_VALUE_LO, _VALUE_HI, size=count)


def uniform_random(
    m: int, n: int, density: float, seed: int = 0
) -> CooMatrix:
    """Bernoulli-uniform sparse matrix: each cell is NZ with prob ``density``.

    The expected nonzero count is ``m * n * density``; we sample the exact
    count from the corresponding binomial so small matrices stay faithful to
    the Bernoulli model without requiring an m*n materialization.
    """
    _check_shape(m, n)
    if not 0.0 <= density <= 1.0:
        raise DatasetError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    total = m * n
    if total == 0 or density == 0.0:
        return CooMatrix.empty((m, n))
    nnz = int(rng.binomial(total, density))
    if nnz == 0:
        return CooMatrix.empty((m, n))
    # Sample distinct flat positions.  For the densities used in the paper
    # (<= 1e-1) rejection via unique-choice is cheap and exact.
    flat = rng.choice(total, size=nnz, replace=False)
    rows, cols = np.divmod(flat, n)
    return CooMatrix.from_arrays(rows, cols, _values(rng, nnz), (m, n))


def power_law(
    m: int,
    n: int,
    density: float,
    seed: int = 0,
    exponent: float = 2.1,
    hub_cap: float = 50.0,
) -> CooMatrix:
    """Power-law matrix: Zipf row degrees, Zipf-weighted column endpoints.

    ``exponent`` is the Zipf tail exponent; 2.1 matches typical social
    networks.  ``hub_cap`` bounds the expected degree of the heaviest hub at
    that multiple of the mean degree (wiki-Vote's real hub sits at ~37x its
    mean; 50 is a representative social-graph ceiling) so that scaled-down
    surrogates keep realistic tails instead of one row swallowing the
    matrix.  The realized nnz approximates ``m * n * density`` (duplicate
    endpoints within a row are merged, as in a simple graph).
    """
    _check_shape(m, n)
    if density <= 0.0:
        return CooMatrix.empty((m, n))
    if hub_cap <= 1.0:
        raise DatasetError(f"hub_cap must exceed 1, got {hub_cap}")
    rng = np.random.default_rng(seed)
    target_nnz = max(1, int(round(m * n * density)))

    row_weights = _zipf_weights(m, exponent, hub_cap, rng)
    col_weights = _zipf_weights(n, exponent, hub_cap, rng)

    # Oversample, then dedup: power-law sampling collides on hub cells.
    oversample = int(target_nnz * 1.5) + 8
    rows = rng.choice(m, size=oversample, p=row_weights)
    cols = rng.choice(n, size=oversample, p=col_weights)
    flat = rows.astype(np.int64) * n + cols
    unique_flat = np.unique(flat)[: target_nnz]
    rows, cols = np.divmod(unique_flat, n)
    return CooMatrix.from_arrays(
        rows, cols, _values(rng, rows.size), (m, n)
    )


def k_regular(m: int, n: int, k: int, seed: int = 0) -> CooMatrix:
    """Exactly ``k`` nonzeros per row; columns balanced to ceil/floor of k*m/n.

    For square matrices this is a true k-regular bipartite structure: the
    union of ``k`` random permutation matrices, with duplicate cells repaired
    by cyclic shifting so every permutation stays disjoint from the others.
    For rectangular matrices each round assigns columns round-robin from a
    fresh random permutation.
    """
    _check_shape(m, n)
    if k < 0:
        raise DatasetError(f"k must be non-negative, got {k}")
    if k > n:
        raise DatasetError(f"k={k} exceeds column count n={n}")
    if k == 0 or m == 0:
        return CooMatrix.empty((m, n))
    rng = np.random.default_rng(seed)
    taken: set[tuple[int, int]] = set()
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    for _ in range(k):
        # Tile column permutations to length m (handles rectangular shapes).
        reps = -(-m // n)  # ceil
        cols_round = np.concatenate(
            [rng.permutation(n) for _ in range(reps)]
        )[:m]
        # Repair duplicates against previous rounds by cyclic shift.
        for i in range(m):
            attempts = 0
            while (i, int(cols_round[i])) in taken:
                cols_round[i] = (cols_round[i] + 1) % n
                attempts += 1
                if attempts > n:
                    raise DatasetError(
                        "could not complete k-regular structure; k too close to n"
                    )
        for i in range(m):
            taken.add((i, int(cols_round[i])))
        rows_out.append(np.arange(m, dtype=np.int64))
        cols_out.append(cols_round.astype(np.int64))
    rows = np.concatenate(rows_out)
    cols = np.concatenate(cols_out)
    return CooMatrix.from_arrays(rows, cols, _values(rng, rows.size), (m, n))


def banded(
    m: int,
    n: int,
    bandwidth: int,
    fill: float = 1.0,
    seed: int = 0,
) -> CooMatrix:
    """Band matrix: nonzeros within ``bandwidth`` of the scaled diagonal.

    ``fill`` is the probability that each in-band cell is nonzero; 1.0 gives
    a full band (FEM-stencil-like structure).
    """
    _check_shape(m, n)
    if bandwidth < 0:
        raise DatasetError("bandwidth must be non-negative")
    if not 0.0 <= fill <= 1.0:
        raise DatasetError("fill must be in [0, 1]")
    if m == 0 or n == 0:
        return CooMatrix.empty((m, n))
    rng = np.random.default_rng(seed)
    rows_list: list[np.ndarray] = []
    cols_list: list[np.ndarray] = []
    scale = n / m if m else 1.0
    for i in range(m):
        center = int(i * scale)
        lo = max(0, center - bandwidth)
        hi = min(n, center + bandwidth + 1)
        cols_i = np.arange(lo, hi, dtype=np.int64)
        if fill < 1.0:
            keep = rng.random(cols_i.size) < fill
            # Always keep the diagonal cell when it exists so rows stay nonempty.
            if lo <= center < hi:
                keep[center - lo] = True
            cols_i = cols_i[keep]
        rows_list.append(np.full(cols_i.size, i, dtype=np.int64))
        cols_list.append(cols_i)
    rows = np.concatenate(rows_list) if rows_list else np.zeros(0, dtype=np.int64)
    cols = np.concatenate(cols_list) if cols_list else np.zeros(0, dtype=np.int64)
    return CooMatrix.from_arrays(rows, cols, _values(rng, rows.size), (m, n))


def block_diagonal(
    m: int,
    n: int,
    block: int,
    block_density: float = 0.8,
    seed: int = 0,
) -> CooMatrix:
    """Dense-ish blocks along the diagonal (power-network / TSOPF structure)."""
    _check_shape(m, n)
    if block <= 0:
        raise DatasetError("block size must be positive")
    if not 0.0 <= block_density <= 1.0:
        raise DatasetError("block_density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    rows_list: list[np.ndarray] = []
    cols_list: list[np.ndarray] = []
    blocks = -(-m // block)
    for b in range(blocks):
        r0 = b * block
        c0 = min(b * block, max(0, n - block))
        r_hi = min(m, r0 + block)
        c_hi = min(n, c0 + block)
        height, width = r_hi - r0, c_hi - c0
        if height <= 0 or width <= 0:
            continue
        mask = rng.random((height, width)) < block_density
        r_local, c_local = np.nonzero(mask)
        rows_list.append(r_local + r0)
        cols_list.append(c_local + c0)
    if not rows_list:
        return CooMatrix.empty((m, n))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return CooMatrix.from_arrays(rows, cols, _values(rng, rows.size), (m, n))


def _check_shape(m: int, n: int) -> None:
    if m < 0 or n < 0:
        raise DatasetError(f"matrix dimensions must be non-negative, got {(m, n)}")


def _zipf_weights(
    count: int, exponent: float, hub_cap: float, rng: np.random.Generator
) -> np.ndarray:
    """Shuffled, normalized Zipf weights with the head clipped at
    ``hub_cap`` times the mean weight."""
    weights = 1.0 / np.power(
        np.arange(1, count + 1, dtype=np.float64), exponent - 1.0
    )
    rng.shuffle(weights)
    weights /= weights.sum()
    ceiling = hub_cap / count
    for _ in range(4):  # clip/renormalize to convergence
        clipped = np.minimum(weights, ceiling)
        clipped /= clipped.sum()
        if np.allclose(clipped, weights):
            break
        weights = clipped
    return weights
