"""Compressed sparse row container.

CSR is what the baseline accelerator simulators iterate over: it gives O(1)
access to each row's nonzeros, which matches how 1D systolic arrays, adder
trees, and Serpens consume the matrix row by row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class CsrMatrix:
    """An immutable CSR matrix (indptr / indices / data).

    Column indices are sorted within each row.  Construct via
    :meth:`from_coo` or :meth:`from_arrays`.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> "CsrMatrix":
        """Validate and canonicalize raw CSR arrays."""
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        m, n = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.size != m + 1:
            raise MatrixFormatError(f"indptr must have length m+1={m + 1}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise MatrixFormatError("indptr must start at 0 and end at nnz")
        if (np.diff(indptr) < 0).any():
            raise MatrixFormatError("indptr must be non-decreasing")
        if indices.size != data.size:
            raise MatrixFormatError("indices and data must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise MatrixFormatError("column index out of range")
        return cls(indptr=indptr, indices=indices, data=data, shape=(m, n))

    @classmethod
    def from_coo(cls, coo: CooMatrix) -> "CsrMatrix":
        """Convert a canonical COO matrix (already row-major sorted)."""
        m, _ = coo.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(coo.rows, minlength=m), out=indptr[1:])
        return cls(
            indptr=indptr,
            indices=coo.cols.copy(),
            data=coo.data.copy(),
            shape=coo.shape,
        )

    def to_coo(self) -> CooMatrix:
        """Convert back to the canonical COO container."""
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        return CooMatrix.from_arrays(rows, self.indices, self.data, self.shape)

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def row_nnz(self, i: int) -> int:
        """Number of nonzeros in row ``i``."""
        return int(self.indptr[i + 1] - self.indptr[i])

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i``, sorted by column."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A @ x."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise MatrixFormatError(
                f"vector length {x.shape} incompatible with shape {self.shape}"
            )
        products = self.data * x[self.indices]
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        return np.bincount(rows, weights=products, minlength=self.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"
