"""Minimal Matrix Market (coordinate, real, general) reader and writer.

Lets users persist surrogate matrices and load real SuiteSparse downloads
when they have them, without relying on scipy.io at the core layer.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import CooMatrix

_HEADER = "%%MatrixMarket matrix coordinate real general"


def write_matrix_market(matrix: CooMatrix, path: str | Path) -> None:
    """Write a matrix in MatrixMarket coordinate format (1-based indices)."""
    path = Path(path)
    m, n = matrix.shape
    with path.open("w", encoding="ascii") as handle:
        handle.write(_HEADER + "\n")
        handle.write(f"{m} {n} {matrix.nnz}\n")
        for r, c, v in zip(matrix.rows, matrix.cols, matrix.data):
            handle.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")


def read_matrix_market(path: str | Path) -> CooMatrix:
    """Read a MatrixMarket coordinate file (real or pattern, general or
    symmetric).  Symmetric storage is expanded to full."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = handle.readline().strip()
        if not header.startswith("%%MatrixMarket"):
            raise MatrixFormatError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise MatrixFormatError(f"{path}: only coordinate format supported")
        pattern = "pattern" in tokens
        symmetric = "symmetric" in tokens

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        try:
            m, n, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise MatrixFormatError(f"{path}: bad size line {line!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        data = np.ones(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = handle.readline().split()
            if len(parts) < 2:
                raise MatrixFormatError(f"{path}: truncated at entry {k}")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            if not pattern:
                data[k] = float(parts[2])

    if symmetric:
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        data = np.concatenate([data, data[off_diag]])
    return CooMatrix.from_arrays(rows, cols, data, (m, n))
