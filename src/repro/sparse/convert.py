"""Boundary conversions: scipy.sparse and dense numpy interop.

scipy is confined to this module (and tests, where it serves as the
numerical oracle) so the rest of the library stays dependency-light.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import CooMatrix


def from_scipy(matrix) -> CooMatrix:
    """Convert any scipy.sparse matrix to a canonical :class:`CooMatrix`."""
    coo = matrix.tocoo()
    return CooMatrix.from_arrays(
        np.asarray(coo.row), np.asarray(coo.col), np.asarray(coo.data), coo.shape
    )


def to_scipy(matrix: CooMatrix):
    """Convert a :class:`CooMatrix` to ``scipy.sparse.coo_matrix``."""
    import scipy.sparse as sp

    return sp.coo_matrix(
        (matrix.data, (matrix.rows, matrix.cols)), shape=matrix.shape
    )


def from_dense(array: np.ndarray) -> CooMatrix:
    """Convert a dense 2-D array, dropping zeros."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise MatrixFormatError("dense input must be 2-D")
    rows, cols = np.nonzero(array)
    return CooMatrix.from_arrays(rows, cols, array[rows, cols], array.shape)


def to_dense(matrix: CooMatrix) -> np.ndarray:
    """Materialize a :class:`CooMatrix` as a dense float64 array."""
    out = np.zeros(matrix.shape, dtype=np.float64)
    out[matrix.rows, matrix.cols] = matrix.data
    return out
