"""Sparsity statistics used by the scheduler, bound model, and experiments.

The quantities here mirror Section 3.4/3.5 of the paper: per-row nonzero
counts, per-column-*segment* nonzero counts within a row window (column
segments are the columns folded modulo the accelerator length ``l``), and
the standard deviations the load balancer tries to shrink.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix


def require_positive_length(length: int) -> None:
    """Validate an accelerator length parameter."""
    if length <= 0:
        raise HardwareConfigError(f"accelerator length must be positive, got {length}")


def window_count(m: int, length: int) -> int:
    """Number of row windows (ceil(m / l)); at least the paper's m/l."""
    require_positive_length(length)
    return -(-m // length) if m > 0 else 0


def window_bounds(m: int, length: int) -> list[tuple[int, int]]:
    """[start, stop) row ranges of every window."""
    return [
        (w * length, min(m, (w + 1) * length))
        for w in range(window_count(m, length))
    ]


def row_degrees(matrix: CooMatrix) -> np.ndarray:
    """Nonzeros per row (length m)."""
    return matrix.row_counts()


def colseg_degrees(matrix: CooMatrix, length: int) -> np.ndarray:
    """Nonzeros per column segment, whole matrix (length l).

    Column segment ``j`` aggregates columns j, j+l, j+2l, ... — the columns
    that share the ``j``-th multiplier.
    """
    require_positive_length(length)
    return np.bincount(matrix.cols % length, minlength=length)


def window_color_lower_bound(matrix: CooMatrix, length: int) -> list[int]:
    """Per-window max bipartite degree — the paper's Eq. (1) value of C.

    For each window of ``l`` rows, the minimum schedulable buffer length is
    the larger of (max nonzeros in any row of the window) and (max nonzeros
    in any column segment of the window).
    """
    require_positive_length(length)
    m, _ = matrix.shape
    bounds = []
    window_of_row = matrix.rows // length
    for w in range(window_count(m, length)):
        mask = window_of_row == w
        if not mask.any():
            bounds.append(0)
            continue
        rows_w = matrix.rows[mask] % length
        cols_w = matrix.cols[mask] % length
        max_row = int(np.bincount(rows_w, minlength=length).max())
        max_col = int(np.bincount(cols_w, minlength=length).max())
        bounds.append(max(max_row, max_col))
    return bounds


def window_degree_std(matrix: CooMatrix, length: int) -> tuple[float, float]:
    """(row-degree STD, column-segment-degree STD) averaged over windows.

    Section 3.5: "the smaller the standard deviation of #NZ in rows and
    column segments within row sets, the smaller the execution time."
    """
    require_positive_length(length)
    m, _ = matrix.shape
    row_stds: list[float] = []
    col_stds: list[float] = []
    window_of_row = matrix.rows // length
    for w in range(window_count(m, length)):
        mask = window_of_row == w
        rows_w = matrix.rows[mask] % length
        cols_w = matrix.cols[mask] % length
        rows_in_window = min(length, m - w * length)
        row_counts = np.bincount(rows_w, minlength=rows_in_window)
        col_counts = np.bincount(cols_w, minlength=length)
        row_stds.append(float(np.std(row_counts)))
        col_stds.append(float(np.std(col_counts)))
    if not row_stds:
        return 0.0, 0.0
    return float(np.mean(row_stds)), float(np.mean(col_stds))


def geometric_mean(values) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
