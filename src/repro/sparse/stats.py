"""Sparsity statistics used by the scheduler, bound model, and experiments.

The quantities here mirror Section 3.4/3.5 of the paper: per-row nonzero
counts, per-column-*segment* nonzero counts within a row window (column
segments are the columns folded modulo the accelerator length ``l``), and
the standard deviations the load balancer tries to shrink.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix


def require_positive_length(length: int) -> None:
    """Validate an accelerator length parameter."""
    if length <= 0:
        raise HardwareConfigError(f"accelerator length must be positive, got {length}")


def window_count(m: int, length: int) -> int:
    """Number of row windows (ceil(m / l)); at least the paper's m/l."""
    require_positive_length(length)
    return -(-m // length) if m > 0 else 0


def window_bounds(m: int, length: int) -> list[tuple[int, int]]:
    """[start, stop) row ranges of every window."""
    return [
        (w * length, min(m, (w + 1) * length))
        for w in range(window_count(m, length))
    ]


def row_degrees(matrix: CooMatrix) -> np.ndarray:
    """Nonzeros per row (length m)."""
    return matrix.row_counts()


def colseg_degrees(matrix: CooMatrix, length: int) -> np.ndarray:
    """Nonzeros per column segment, whole matrix (length l).

    Column segment ``j`` aggregates columns j, j+l, j+2l, ... — the columns
    that share the ``j``-th multiplier.
    """
    require_positive_length(length)
    return np.bincount(matrix.cols % length, minlength=length)


def _window_degree_tables(
    matrix: CooMatrix, length: int, windows: int
) -> tuple[np.ndarray, np.ndarray]:
    """(windows, l) nonzero counts per local row and per column segment.

    One flat ``bincount`` over ``window * l + local_index`` keys replaces
    the former per-window boolean-mask scan (the same partition trick the
    vectorized scheduler uses: the canonical COO order is row-sorted, so a
    window is a contiguous slice and its local degree histogram is a
    bincount on offset keys — no O(windows x nnz) mask passes).
    """
    window_ids = matrix.rows // length
    row_keys = window_ids * length + matrix.rows % length
    seg_keys = window_ids * length + matrix.cols % length
    shape = (windows, length)
    row_deg = np.bincount(row_keys, minlength=windows * length).reshape(shape)
    seg_deg = np.bincount(seg_keys, minlength=windows * length).reshape(shape)
    return row_deg, seg_deg


def window_color_lower_bound(matrix: CooMatrix, length: int) -> list[int]:
    """Per-window max bipartite degree — the paper's Eq. (1) value of C.

    For each window of ``l`` rows, the minimum schedulable buffer length is
    the larger of (max nonzeros in any row of the window) and (max nonzeros
    in any column segment of the window).  Computed for every window at
    once from the flat degree tables; empty windows report 0.
    """
    require_positive_length(length)
    m, _ = matrix.shape
    windows = window_count(m, length)
    if windows == 0:
        return []
    if matrix.nnz == 0:
        return [0] * windows
    row_deg, seg_deg = _window_degree_tables(matrix, length, windows)
    bounds = np.maximum(row_deg.max(axis=1), seg_deg.max(axis=1))
    return [int(b) for b in bounds]


def window_degree_std(matrix: CooMatrix, length: int) -> tuple[float, float]:
    """(row-degree STD, column-segment-degree STD) averaged over windows.

    Section 3.5: "the smaller the standard deviation of #NZ in rows and
    column segments within row sets, the smaller the execution time."

    Row statistics are taken over the rows a window actually has (the last
    window of a matrix whose height is not a multiple of ``l`` is short);
    column-segment statistics always span all ``l`` lanes.  Vectorized as
    moments over the flat degree tables: std^2 = E[d^2] - E[d]^2 per
    window, with the per-window population size carried explicitly.
    """
    require_positive_length(length)
    m, _ = matrix.shape
    windows = window_count(m, length)
    if windows == 0:
        return 0.0, 0.0
    if matrix.nnz == 0:
        return 0.0, 0.0
    row_deg, seg_deg = _window_degree_tables(matrix, length, windows)
    # Rows actually present in each window (short last window included).
    rows_in_window = np.full(windows, length, dtype=np.int64)
    rows_in_window[-1] = m - (windows - 1) * length
    row_sum = row_deg.sum(axis=1, dtype=np.float64)
    row_sumsq = (row_deg.astype(np.float64) ** 2).sum(axis=1)
    row_mean = row_sum / rows_in_window
    row_var = np.maximum(row_sumsq / rows_in_window - row_mean**2, 0.0)
    seg = seg_deg.astype(np.float64)
    seg_mean = seg.mean(axis=1)
    seg_var = np.maximum((seg**2).mean(axis=1) - seg_mean**2, 0.0)
    return (
        float(np.mean(np.sqrt(row_var))),
        float(np.mean(np.sqrt(seg_var))),
    )


def geometric_mean(values) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
