"""Shared data model for the ``repro lint`` contract checker.

A :class:`SourceFile` wraps one parsed Python module together with the
comment-level metadata the rules consume:

* ``# lint: disable=R1`` (comma-separated rule IDs allowed) on a line
  suppresses findings reported *at that line*;
* ``# guarded-by: _lock`` declares that the field assigned (or the
  method defined) on that line must only be touched under ``self._lock``.

Rules are pure functions ``check(source) -> list[Finding]``; suppression
bookkeeping lives here so every rule gets it for free and unused
suppressions can be reported as warnings (``W1``).

This package must never import ``repro.core``: the runtime-validation
hooks in core import ``repro.analysis.runtime``, and a reverse edge
would create an import cycle.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, pinned to a rule ID and a ``file:line``."""

    rule: str
    path: str
    line: int
    message: str
    warning: bool = False

    def render(self) -> str:
        kind = "warning" if self.warning else "error"
        return f"{self.path}:{self.line}: {self.rule} [{kind}] {self.message}"


@dataclass
class SourceFile:
    """A parsed module plus its comment annotations."""

    path: Path
    text: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    guards: dict[int, str] = field(default_factory=dict)
    #: sha256 of the raw bytes — the incremental lint cache's content key.
    content_hash: str = ""

    @classmethod
    def parse(cls, path: Path) -> "SourceFile":
        return cls.from_bytes(path, path.read_bytes())

    @classmethod
    def from_bytes(cls, path: Path, raw: bytes) -> "SourceFile":
        content_hash = hashlib.sha256(raw).hexdigest()
        text = raw.decode("utf-8")
        tree = ast.parse(text, filename=str(path))
        suppressions: dict[int, set[str]] = {}
        guards: dict[int, str] = {}
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type != tokenize.COMMENT:
                continue
            line = token.start[0]
            match = _SUPPRESS_RE.search(token.string)
            if match:
                rules = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                suppressions.setdefault(line, set()).update(rules)
            match = _GUARDED_RE.search(token.string)
            if match:
                guards[line] = match.group(1)
        return cls(path, text, tree, suppressions, guards, content_hash)

    def finding(
        self, rule: str, node: ast.AST, message: str, *, warning: bool = False
    ) -> Finding:
        return Finding(rule, str(self.path), node.lineno, message, warning)

    def guard_for_header(self, node: ast.AST) -> str | None:
        """Guard annotation anywhere in a statement's header lines.

        ``def`` signatures and assignments may wrap; the annotation is
        accepted on any line from the statement's first line up to (and
        including) the line its body/value starts on.
        """
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if body:
            end = body[0].lineno
        for line in range(start, end + 1):
            lock = self.guards.get(line)
            if lock is not None:
                return lock
        return None
