"""Rule R6: timed code in ``core/`` and ``serve/`` uses the obs clock.

The serving stack once mixed time bases — ``time.monotonic`` cooldowns
compared against ``time.perf_counter`` deadlines — which is exactly the
kind of bug that never shows up in a unit test (both clocks advance at
1 s/s) and silently skews arithmetic the moment values from the two are
combined.  :mod:`repro.obs.clock` is now the one sanctioned seam:
components import :data:`repro.obs.clock.monotonic` (or take an
injectable ``clock=`` defaulting to it) and tracing/metrics timing goes
through :mod:`repro.obs`.

This rule flags any direct reference to ``time.time``,
``time.perf_counter``, ``time.monotonic`` (and their ``_ns`` variants)
— calls, defaults like ``clock or time.perf_counter``, and
``from time import perf_counter`` — in modules under a ``core`` or
``serve`` path segment.  ``time.sleep`` is allowed: sleeping is
scheduling, not timestamp arithmetic.  Deliberate exceptions use the
``# lint: disable=R6`` escape hatch.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, SourceFile

RULE = "R6"

#: ``time`` attributes that produce timestamps (``sleep`` is allowed).
_CLOCK_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
}

#: Path segments placing a module in scope.
_SCOPED_SEGMENTS = {"core", "serve"}

#: The seam itself is exempt: it exists to wrap ``time.perf_counter``.
_EXEMPT_SEGMENT = "obs"


def _in_scope(source: SourceFile) -> bool:
    parts = source.path.parts
    if _EXEMPT_SEGMENT in parts:
        return False
    return any(segment in parts for segment in _SCOPED_SEGMENTS)


def check(source: SourceFile) -> list[Finding]:
    if not _in_scope(source):
        return []
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in _CLOCK_ATTRS
        ):
            reference = f"time.{node.attr}"
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            clocky = sorted(
                alias.name
                for alias in node.names
                if alias.name in _CLOCK_ATTRS
            )
            if not clocky:
                continue
            reference = "from time import " + ", ".join(clocky)
        else:
            continue
        findings.append(
            Finding(
                RULE,
                str(source.path),
                node.lineno,
                f"direct clock reference {reference!r}; route timing in "
                "core/ and serve/ through repro.obs.clock.monotonic (or "
                "an injectable clock= defaulting to it) so deadlines, "
                "cooldowns, and latencies share one time base "
                "(# lint: disable=R6 for deliberate exceptions)",
            )
        )
    return findings
