"""Content-hash-keyed incremental cache for ``repro lint``.

Phase 1 of the analyzer does all the per-file work — parse, per-file
rules, import/API extraction — and *all* of it is a pure function of
the file's bytes (plus the ruleset version).  So the cache keys each
file's payload by ``sha256(bytes)``: a warm run re-reads bytes (cheap,
and unavoidable to compute the hash) but re-parses **nothing**
unchanged, restoring per-file findings, the raw import list, the
public-API table, and the suppression table straight from JSON.  The
cross-file rules (R7 layering/cycles, R8 API drift) are recomputed
every run over the restored model — they are graph walks over a few
hundred nodes, not parses.

Storage is one JSON file under the gust cache root (``GUST_CACHE_DIR``
> ``XDG_CACHE_HOME`` > ``~/.cache/gust`` — the same resolution the
schedule store uses), named per ruleset version and Python minor
version so a rule change or interpreter bump invalidates wholesale.
Writes are atomic (write-then-rename, the repo convention); a missing
or corrupt cache file degrades to a cold run, never an error.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, RawImport

#: Bump whenever any rule or extraction changes meaning: every cached
#: payload is invalidated at once.
RULESET_VERSION = 1


def default_cache_path() -> Path:
    root = os.environ.get("GUST_CACHE_DIR")
    if root is None:
        xdg = os.environ.get("XDG_CACHE_HOME")
        root = (
            str(Path(xdg) / "gust")
            if xdg
            else str(Path.home() / ".cache" / "gust")
        )
    name = (
        f"lintcache-v{RULESET_VERSION}"
        f"-py{sys.version_info[0]}{sys.version_info[1]}.json"
    )
    return Path(root) / name


def _finding_to_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
        "warning": finding.warning,
    }


def _finding_from_json(payload: dict) -> Finding:
    return Finding(
        payload["rule"],
        payload["path"],
        payload["line"],
        payload["message"],
        payload["warning"],
    )


def entry_from_info(info: ModuleInfo) -> dict:
    return {
        "hash": info.content_hash,
        "imports": [raw.to_json() for raw in info.raw_imports],
        "api": info.api,
        "suppressions": {
            str(line): list(rules)
            for line, rules in info.suppressions.items()
        },
        "findings": [_finding_to_json(f) for f in info.findings],
    }


def info_from_entry(path: Path, module: str, entry: dict) -> ModuleInfo:
    return ModuleInfo(
        path=path,
        module=module,
        content_hash=entry["hash"],
        raw_imports=tuple(
            RawImport.from_json(raw) for raw in entry["imports"]
        ),
        api=entry["api"],
        suppressions={
            int(line): tuple(rules)
            for line, rules in entry["suppressions"].items()
        },
        findings=tuple(_finding_from_json(f) for f in entry["findings"]),
        parsed=False,
    )


@dataclass
class LintCache:
    """Per-path payloads keyed by content hash, with hit/miss counters."""

    path: Path | None
    entries: dict[str, dict] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _touched: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | None) -> "LintCache":
        if path is None:
            return cls(None)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            entries = payload["entries"]
            if not isinstance(entries, dict):
                raise ValueError("malformed cache")
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            entries = {}
        return cls(path, entries)

    def lookup(self, file_path: Path, content_hash: str) -> dict | None:
        entry = self.entries.get(str(file_path))
        if entry is not None and entry.get("hash") == content_hash:
            self.hits += 1
            self._touched[str(file_path)] = entry
            return entry
        self.misses += 1
        return None

    def store(self, file_path: Path, entry: dict) -> None:
        self.entries[str(file_path)] = entry
        self._touched[str(file_path)] = entry

    def save(self) -> None:
        """Persist only this run's paths (bounds growth), atomically."""
        if self.path is None:
            return
        payload = {
            "ruleset": RULESET_VERSION,
            "entries": self._touched,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                dir=self.path.parent,
                prefix=self.path.name + ".",
                suffix=".tmp",
                delete=False,
                encoding="utf-8",
            )
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, self.path)
        except OSError:
            # A read-only cache dir degrades to always-cold, not a crash.
            pass
