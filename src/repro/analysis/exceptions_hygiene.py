"""Rule R5: no silently swallowed exceptions on the serving path.

The serving layer's failure model rests on one invariant: an exception
is either propagated (``raise``) or *routed* — set on a request's future
(``.set_exception(...)``) so a typed :class:`~repro.errors.ReproError`
reaches the caller.  A bare ``except:`` / ``except Exception:`` whose
body does neither silently eats the failure: the future hangs, the
counter never increments, capacity decays without a trace — precisely
the bugs the chaos harness exists to catch.

Scope: modules under a ``serve`` path segment plus ``core/store.py``
(the store's absorb-and-count contract makes it part of the serving
failure surface).  Typed handlers (``except OSError:``,
``except ReproError:``) are always allowed — the rule targets only the
catch-everything forms.  Deliberate absorb sites (e.g. a supervisor that
must outlive worker crashes, a worker whose batch futures were already
failed upstream) use the ``# lint: disable=R5`` escape hatch, which
doubles as documentation that the swallow is intentional.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, SourceFile

RULE = "R5"

#: Catch-everything exception names the rule targets.
_BROAD_NAMES = {"Exception", "BaseException"}

#: Path segment placing a module on the serving path.
_SERVE_SEGMENT = "serve"

#: Individual modules outside ``serve/`` that share the contract.
_EXTRA_FILES = {"store.py": "core"}


def _in_scope(source: SourceFile) -> bool:
    parts = source.path.parts
    if _SERVE_SEGMENT in parts:
        return True
    parent = _EXTRA_FILES.get(source.path.name)
    return parent is not None and parent in parts


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """Exception names a handler catches (empty for a bare ``except:``)."""
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
    return names


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return any(name in _BROAD_NAMES for name in _caught_names(handler))


def _routes_or_reraises(handler: ast.ExceptHandler) -> bool:
    """True if the body raises, or sets the exception on a future."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set_exception"
        ):
            return True
    return False


def check(source: SourceFile) -> list[Finding]:
    if not _in_scope(source):
        return []
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _routes_or_reraises(node):
            continue
        caught = ", ".join(_caught_names(node)) or "everything (bare except)"
        findings.append(
            Finding(
                RULE,
                str(source.path),
                node.lineno,
                f"broad handler catching {caught} neither re-raises nor "
                "routes through a future's set_exception; serving-path "
                "failures must stay typed and visible "
                "(# lint: disable=R5 for deliberate absorb sites)",
            )
        )
    return findings
