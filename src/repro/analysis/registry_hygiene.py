"""Rule R4: backend capability declarations must be total and explicit.

``compile_plan()`` negotiates on :class:`BackendCapabilities`
(``bit_identical`` / ``supports_block`` / ``thread_safe`` / ``probed``).
A declaration that omits a flag silently inherits a default, and a
positional declaration stops meaning anything when the dataclass grows
a field — both have bitten registry-negotiation code before.  Every
``BackendCapabilities(...)`` construction must therefore pass all four
flags as explicit keywords.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, SourceFile

RULE = "R4"

REQUIRED_FLAGS = ("bit_identical", "supports_block", "thread_safe", "probed")


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "BackendCapabilities":
            continue
        if node.args:
            findings.append(
                source.finding(
                    RULE,
                    node,
                    "BackendCapabilities flags must be passed as explicit "
                    "keywords, not positionally",
                )
            )
        # Positional args fill flags in declaration order — already
        # flagged for style above, so don't double-report them missing.
        provided = set(REQUIRED_FLAGS[: len(node.args)])
        provided |= {keyword.arg for keyword in node.keywords}
        if None in provided:  # **kwargs splat: cannot prove totality
            findings.append(
                source.finding(
                    RULE,
                    node,
                    "BackendCapabilities built from **kwargs cannot be "
                    "checked; spell out all capability flags",
                )
            )
            continue
        missing = [flag for flag in REQUIRED_FLAGS if flag not in provided]
        if missing:
            findings.append(
                source.finding(
                    RULE,
                    node,
                    "BackendCapabilities must declare every capability flag "
                    f"explicitly; missing: {', '.join(missing)}",
                )
            )
    return findings
