"""Rule R3: no internal use of removed compatibility shims.

The ``use_plans=`` constructor flag, the ``pipeline.use_plans``
attribute, and ``pipeline.executor()`` were one-release deprecation
shims superseded by the ``backend=`` / ``compile_schedule()`` API.
This rule proves no internal caller remains, which is what allows the
shims to stay deleted.  Matching is AST-based, so docstrings and
comments mentioning the old names do not trip it.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, SourceFile

RULE = "R3"


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "use_plans":
                    findings.append(
                        source.finding(
                            RULE,
                            node,
                            "use_plans= keyword is a removed shim; pass "
                            "backend= ('bincount', 'legacy-scatter', ...) "
                            "instead",
                        )
                    )
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "executor":
                findings.append(
                    source.finding(
                        RULE,
                        node,
                        ".executor() is a removed shim; use "
                        "compile_schedule()/compile() for a bound handle",
                    )
                )
        elif isinstance(node, ast.Attribute) and node.attr == "use_plans":
            findings.append(
                source.finding(
                    RULE,
                    node,
                    ".use_plans attribute is a removed shim; inspect "
                    ".backend instead",
                )
            )
    return findings
