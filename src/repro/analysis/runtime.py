"""Runtime gate for plan/schedule invariant validation.

``GUST_VALIDATE=1`` switches on structural validation at the points
where plans and schedules cross a trust boundary: ``DiskScheduleStore``
load (artifacts from disk), cache insertion, and fresh plan compilation
in the pipeline.  The checks are the existing ``Schedule.validate()`` /
``ExecutionPlan.validate()`` methods; this module only decides *when*
they run.  Kept dependency-free so ``repro.core`` can import it without
cycles.
"""

from __future__ import annotations

import os

ENV_VALIDATE = "GUST_VALIDATE"

_TRUTHY = {"1", "true", "yes", "on"}


def validation_enabled() -> bool:
    """True when ``GUST_VALIDATE`` requests invariant validation."""
    return os.environ.get(ENV_VALIDATE, "").strip().lower() in _TRUTHY
