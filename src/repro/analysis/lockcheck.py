"""Runtime lock-order checker for the serving layer's concurrency tests.

:class:`LockOrderMonitor` wraps existing ``threading`` locks in proxies
that record, per thread, the stack of monitor-named locks currently
held.  Every acquisition of ``B`` while holding ``A`` inserts the edge
``A -> B`` into a global order graph; an acquisition that closes a
cycle in that graph is an ABBA deadlock waiting for the right thread
schedule, and is recorded as a violation *at the moment the inconsistent
order is observed* — no actual deadlock needs to occur.

Violations are collected rather than raised (raising inside ``acquire``
would poison unrelated worker threads mid-test); call
:meth:`LockOrderMonitor.assert_no_inversions` at the end of the test.
Re-entrant acquisitions of a held lock (``RLock``) do not add edges.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.errors import LockOrderError

__all__ = ["LockOrderError", "LockOrderMonitor"]


class _InstrumentedLock:
    """Proxy that reports acquisition order to its monitor.

    Supports the ``Lock``/``RLock`` surface the repo uses: ``acquire``,
    ``release``, context-manager protocol, and ``locked`` when the
    underlying lock provides it.
    """

    def __init__(
        self, monitor: "LockOrderMonitor", inner, name: str
    ) -> None:
        self._monitor = monitor
        self._inner = inner
        self._name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor._note_attempt(self._name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor._note_acquired(self._name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._monitor._note_released(self._name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<instrumented {self._name!r} wrapping {self._inner!r}>"


class LockOrderMonitor:
    """Records lock-acquisition order and detects order inversions."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._meta = threading.Lock()
        # edges[a] = names acquired at least once while `a` was held
        self._edges: dict[str, set[str]] = {}
        self._violations: list[str] = []
        self._reported: set[frozenset[str]] = set()
        self._acquisitions = 0

    def wrap(self, lock, name: str) -> _InstrumentedLock:
        """Wrap ``lock`` in an order-recording proxy under ``name``."""
        return _InstrumentedLock(self, lock, name)

    @property
    def acquisitions(self) -> int:
        """Total successful acquisitions seen (proves instrumentation ran)."""
        with self._meta:
            return self._acquisitions

    @property
    def violations(self) -> list[str]:
        with self._meta:
            return list(self._violations)

    def assert_no_inversions(self) -> None:
        violations = self.violations
        if violations:
            raise LockOrderError(
                "lock-order inversions detected:\n" + "\n".join(violations)
            )

    # -- proxy callbacks -------------------------------------------------

    def _held(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _note_attempt(self, name: str) -> None:
        held = self._held()
        if name in held:  # re-entrant (RLock): no new ordering constraint
            return
        with self._meta:
            for prior in dict.fromkeys(held):
                self._edges.setdefault(prior, set()).add(name)
                pair = frozenset((prior, name))
                if self._reaches(name, prior) and pair not in self._reported:
                    self._reported.add(pair)
                    self._violations.append(
                        f"acquiring {name!r} while holding {prior!r}, but "
                        f"{prior!r} is also acquired while {name!r} is held "
                        f"(cycle: {' -> '.join([prior, name, prior])})"
                    )

    def _note_acquired(self, name: str) -> None:
        self._held().append(name)
        with self._meta:
            self._acquisitions += 1

    def _note_released(self, name: str) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    def _reaches(self, start: str, goal: str) -> bool:
        """True if the order graph has a path ``start -> ... -> goal``."""
        seen: set[str] = set()
        frontier: list[str] = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))
        return False


def instrument_all(monitor: LockOrderMonitor, named_locks: Iterable[tuple[object, str, str]]):
    """Replace ``attr`` on each ``(owner, attr, name)`` with a wrapped lock.

    Convenience for tests: returns the owners so callers can chain.
    """
    owners = []
    for owner, attr, name in named_locks:
        setattr(owner, attr, monitor.wrap(getattr(owner, attr), name))
        owners.append(owner)
    return owners
