"""Rule R2: lock discipline for classes with instance locks.

For every class that creates a ``threading`` lock in one of its methods
(``self._lock = threading.Lock()`` and friends), the checker builds a
map of *guarded fields* — instance attributes that must only be written
while that lock is held.  A field becomes guarded two ways:

* explicitly, via a ``# guarded-by: _lock`` comment on the line that
  assigns it (typically its ``__init__`` declaration); or
* by inference: any field written inside a ``with self._lock:`` block
  somewhere in the class is assumed to be guarded by that lock.

Every other write to a guarded field (``self.f = ...``,
``self.f += ...``, ``self.f[k] = ...``) must then be inside a
``with self._lock:`` block, with two exceptions: writes in ``__init__``
(construction happens-before publication) and methods whose ``def``
line carries ``# guarded-by: _lock`` — the annotation documents a
"caller must hold the lock" contract the AST cannot see.

Method *calls* on guarded fields (``self.f.append(...)``) are not
tracked; the rule is about attribute and item writes, where a torn
update is silent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, SourceFile

RULE = "R2"

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _is_lock_factory(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _LOCK_FACTORIES
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    )


def _self_attr(node: ast.expr) -> str | None:
    """Name of the instance attribute if ``node`` is ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_fields(target: ast.expr) -> Iterator[str]:
    """Instance fields written by one assignment target."""
    attr = _self_attr(target)
    if attr is not None:
        yield attr
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            yield attr
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _written_fields(element)
    elif isinstance(target, ast.Starred):
        yield from _written_fields(target.value)


def _assignment_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


class _ClassModel:
    def __init__(self, source: SourceFile, class_node: ast.ClassDef) -> None:
        self.source = source
        self.class_node = class_node
        self.methods = [
            node
            for node in class_node.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.locks: set[str] = set()
        self.guarded: dict[str, str] = {}

    def collect(self) -> None:
        for method in self.methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.stmt):
                    continue
                for target in _assignment_targets(node):
                    attr = _self_attr(target)
                    value = getattr(node, "value", None)
                    if attr and value is not None and _is_lock_factory(value):
                        self.locks.add(attr)
        if not self.locks:
            return
        for method in self.methods:
            self._collect_guards(method)

    def _collect_guards(self, method: ast.FunctionDef) -> None:
        def visit(stmts: list[ast.stmt], held: frozenset[str]) -> None:
            for stmt in stmts:
                for target in _assignment_targets(stmt):
                    for field in _written_fields(target):
                        lock = self.source.guard_for_header(stmt)
                        if lock is not None and lock in self.locks:
                            self.guarded.setdefault(field, lock)
                        elif held:
                            self.guarded.setdefault(field, min(held))
                self._recurse(stmt, held, visit)

        visit(method.body, frozenset())

    def violations(self) -> Iterator[Finding]:
        if not self.locks or not self.guarded:
            return
        for method in self.methods:
            if method.name == "__init__":
                continue
            yield from self._check_method(method)

    def _check_method(self, method: ast.FunctionDef) -> Iterator[Finding]:
        findings: list[Finding] = []
        annotated = self.source.guard_for_header(method)
        initial = frozenset({annotated}) if annotated in self.locks else frozenset()

        def visit(stmts: list[ast.stmt], held: frozenset[str]) -> None:
            for stmt in stmts:
                for target in _assignment_targets(stmt):
                    for field in _written_fields(target):
                        lock = self.guarded.get(field)
                        if lock is not None and lock not in held:
                            findings.append(
                                self.source.finding(
                                    RULE,
                                    stmt,
                                    f"write to '{field}' (guarded by "
                                    f"'{lock}') outside 'with self.{lock}' "
                                    f"in {self.class_node.name}."
                                    f"{method.name}",
                                )
                            )
                self._recurse(stmt, held, visit)

        visit(method.body, initial)
        yield from findings

    def _recurse(self, stmt: ast.stmt, held: frozenset[str], visit) -> None:
        """Visit child statement blocks, updating the held-lock set."""
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = {
                attr
                for item in stmt.items
                if (attr := _self_attr(item.context_expr)) in self.locks
            }
            visit(stmt.body, held | acquired)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later, possibly without the lock;
            # only its own guarded-by annotation counts.
            annotated = self.source.guard_for_header(stmt)
            inner = frozenset({annotated}) if annotated in self.locks else frozenset()
            visit(stmt.body, inner)
            return
        for block in ("body", "orelse", "finalbody"):
            children = getattr(stmt, block, None)
            if children:
                visit(children, held)
        for handler in getattr(stmt, "handlers", []):
            visit(handler.body, held)


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = _ClassModel(source, node)
        model.collect()
        findings.extend(model.violations())
    return findings
