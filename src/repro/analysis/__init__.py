"""Project contract checker: static lint rules plus runtime validators.

Static side (``repro lint``): a two-phase analyzer.  Phase 1 parses
every target module once (or restores it from the content-hash-keyed
incremental cache) into a shared project model; phase 2 runs the
per-file AST rules — bit-identity (R1), lock discipline (R2),
removed-shim usage (R3), backend capability hygiene (R4), exception
hygiene (R5), clock hygiene (R6), deterministic-kernel hygiene (R9) —
plus the cross-file rules over the model: import layering and cycle
freedom (R7) and public-API drift against ``api_manifest.json`` (R8).
``# lint: disable=<rule>`` suppresses in place; unused suppressions
warn as ``W1`` and unknown rule IDs as ``W2``.

Runtime side: :func:`validation_enabled` gates ``ExecutionPlan`` /
``Schedule`` structural validation behind ``GUST_VALIDATE=1``, and
:class:`LockOrderMonitor` instruments live locks to fail tests on
lock-order inversion.

Import discipline — now machine-checked by R7 on this very package:
nothing here may import anything outside the stdlib, ``repro.errors``,
and itself.  Core imports :mod:`repro.analysis.runtime` at module
load, and a reverse edge would be a cycle.
"""

from repro.analysis.findings import Finding, SourceFile
from repro.analysis.lockcheck import LockOrderError, LockOrderMonitor
from repro.analysis.project import ProjectModel
from repro.analysis.runner import (
    RULE_DOCS,
    LintReport,
    build_model,
    lint_file,
    lint_paths,
)
from repro.analysis.runtime import validation_enabled

__all__ = [
    "Finding",
    "LintReport",
    "LockOrderError",
    "LockOrderMonitor",
    "ProjectModel",
    "RULE_DOCS",
    "SourceFile",
    "build_model",
    "lint_file",
    "lint_paths",
    "validation_enabled",
]
