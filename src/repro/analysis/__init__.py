"""Project contract checker: static lint rules plus runtime validators.

Static side (``repro lint``): AST rules R1–R4 over the repo's own
source — bit-identity (R1), lock discipline (R2), removed-shim usage
(R3), and backend capability hygiene (R4) — with ``# lint:
disable=<rule>`` suppressions and unused-suppression warnings (W1).

Runtime side: :func:`validation_enabled` gates ``ExecutionPlan`` /
``Schedule`` structural validation behind ``GUST_VALIDATE=1``, and
:class:`LockOrderMonitor` instruments live locks to fail tests on
lock-order inversion.

Import discipline: nothing in this package may import ``repro.core`` —
core imports :mod:`repro.analysis.runtime` at module load, and a
reverse edge would be a cycle.
"""

from repro.analysis.findings import Finding, SourceFile
from repro.analysis.lockcheck import LockOrderError, LockOrderMonitor
from repro.analysis.runner import (
    RULE_DOCS,
    LintReport,
    lint_file,
    lint_paths,
)
from repro.analysis.runtime import validation_enabled

__all__ = [
    "Finding",
    "LintReport",
    "LockOrderError",
    "LockOrderMonitor",
    "RULE_DOCS",
    "SourceFile",
    "lint_file",
    "lint_paths",
    "validation_enabled",
]
