"""Discovery, orchestration, and reporting for ``repro lint``.

``lint_paths()`` walks the given files/directories (default: the
installed ``repro`` package), parses each module once, runs every rule,
applies ``# lint: disable=<rule>`` suppressions, and reports
suppressions that matched nothing as ``W1`` warnings.  Exit-code
policy: findings are fatal; warnings are fatal only under ``--strict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import (
    bit_identity,
    clock_hygiene,
    deprecation,
    exceptions_hygiene,
    locks,
    registry_hygiene,
)
from repro.analysis.findings import Finding, SourceFile

PARSE_RULE = "E1"
UNUSED_SUPPRESSION_RULE = "W1"

ALL_CHECKS = (
    bit_identity.check,
    locks.check,
    deprecation.check,
    registry_hygiene.check,
    exceptions_hygiene.check,
    clock_hygiene.check,
)

RULE_DOCS = {
    "R1": "bit-identity: no order-sensitive/registry-bypassing reductions",
    "R2": "lock discipline: guarded fields written only under their lock",
    "R3": "deprecation: no use_plans=/.executor() shim call sites",
    "R4": "registry hygiene: BackendCapabilities flags total and explicit",
    "R5": "exception hygiene: serving-path broad handlers re-raise or route",
    "R6": "clock hygiene: core/serve timing goes through the obs clock seam",
    "W1": "unused # lint: disable suppression",
    "E1": "file does not parse",
}


@dataclass(frozen=True)
class LintReport:
    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.warning)

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.warning)

    def exit_code(self, *, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"repro lint: {self.files_checked} files, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )
        return "\n".join(lines + [summary])


def default_target() -> Path:
    """The installed ``repro`` package — what CI lints."""
    return Path(__file__).resolve().parents[1]


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_file(path: Path) -> list[Finding]:
    try:
        source = SourceFile.parse(path)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return [Finding(PARSE_RULE, str(path), line, f"cannot parse: {exc}")]
    raw: list[Finding] = []
    for run_check in ALL_CHECKS:
        raw.extend(run_check(source))

    kept: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in sorted(raw, key=lambda f: (f.line, f.rule)):
        if finding.rule in source.suppressions.get(finding.line, ()):
            used.add((finding.line, finding.rule))
        else:
            kept.append(finding)
    for line in sorted(source.suppressions):
        for rule in sorted(source.suppressions[line]):
            if (line, rule) not in used:
                kept.append(
                    Finding(
                        UNUSED_SUPPRESSION_RULE,
                        str(path),
                        line,
                        f"suppression '# lint: disable={rule}' matched no "
                        "finding",
                        warning=True,
                    )
                )
    kept.sort(key=lambda f: (f.line, f.rule))
    return kept


def lint_paths(paths: Iterable[Path] | None = None) -> LintReport:
    targets = [Path(p) for p in paths] if paths else [default_target()]
    files = iter_python_files(targets)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    return LintReport(tuple(findings), len(files))
