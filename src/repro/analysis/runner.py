"""Discovery, orchestration, and reporting for ``repro lint``.

The analyzer runs in two phases:

* **Phase 1 — project model.**  Every target file is hashed; unchanged
  files restore their per-file findings, import list, API table, and
  suppression table from the incremental cache
  (:mod:`repro.analysis.lintcache`) without re-parsing.  Changed files
  are parsed once into a :class:`~repro.analysis.findings.SourceFile`,
  run through every per-file rule (R1–R6, R9), and their extraction
  products recorded into the shared
  :class:`~repro.analysis.project.ProjectModel`.
* **Phase 2 — cross-file rules.**  R7 (import layering, restricted
  packages, load-time cycle detection) and R8 (public-API drift
  against ``api_manifest.json``) run over the model, then one global
  suppression pass applies ``# lint: disable=<rule>`` to *all*
  findings, reports unused suppressions as ``W1`` and unknown rule IDs
  in suppressions as ``W2``.

Exit-code policy is unchanged: findings are fatal; warnings are fatal
only under ``--strict``.  Output renders as human text (default),
``--format=json`` (machine-readable findings + cache statistics), or
``--format=github`` (workflow annotation commands for inline CI
review).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import (
    api_drift,
    bit_identity,
    clock_hygiene,
    deprecation,
    determinism,
    exceptions_hygiene,
    layers,
    locks,
    registry_hygiene,
)
from repro.analysis.findings import Finding, SourceFile
from repro.analysis.lintcache import (
    LintCache,
    default_cache_path,
    entry_from_info,
    info_from_entry,
)
from repro.analysis.project import ModuleInfo, ProjectModel, module_name_for

PARSE_RULE = "E1"
MISSING_RULE = "E2"
UNUSED_SUPPRESSION_RULE = "W1"
UNKNOWN_SUPPRESSION_RULE = "W2"

PER_FILE_CHECKS = (
    bit_identity.check,
    locks.check,
    deprecation.check,
    registry_hygiene.check,
    exceptions_hygiene.check,
    clock_hygiene.check,
    determinism.check,
)

#: Back-compat alias (pre-PR-10 name for the per-file rule tuple).
ALL_CHECKS = PER_FILE_CHECKS

RULE_DOCS = {
    "R1": "bit-identity: no order-sensitive/registry-bypassing reductions",
    "R2": "lock discipline: guarded fields written only under their lock",
    "R3": "deprecation: no use_plans=/.executor() shim call sites",
    "R4": "registry hygiene: BackendCapabilities flags total and explicit",
    "R5": "exception hygiene: serving-path broad handlers re-raise or route",
    "R6": "clock hygiene: core/serve timing goes through the obs clock seam",
    "R7": "import layering: layer map respected, restricted packages "
    "stdlib-only, no load-time cycles",
    "R8": "API drift: public surface matches api_manifest.json "
    "(regenerate with --update-api)",
    "R9": "determinism: stable sorts and no set/dict-order arrays in "
    "plan-order-sensitive modules",
    "W1": "unused # lint: disable suppression",
    "W2": "unknown rule ID in a # lint: disable suppression",
    "E1": "file does not parse",
    "E2": "lint target does not exist",
}


@dataclass(frozen=True)
class LintReport:
    findings: tuple[Finding, ...]
    files_checked: int
    #: Files parsed this run — a warm cache makes this 0.
    files_parsed: int = 0
    #: Files restored from the incremental cache.
    cache_hits: int = 0

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.warning)

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.warning)

    def exit_code(self, *, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def summary(self) -> str:
        return (
            f"repro lint: {self.files_checked} files "
            f"({self.files_parsed} parsed, {self.cache_hits} cached), "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        return "\n".join(lines + [self.summary()])

    def to_json(self) -> str:
        payload = {
            "files_checked": self.files_checked,
            "files_parsed": self.files_parsed,
            "cache_hits": self.cache_hits,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                    "warning": f.warning,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_github(self) -> str:
        """GitHub Actions workflow commands: inline PR annotations."""
        lines = []
        cwd = Path.cwd()
        for f in self.findings:
            try:
                where = Path(f.path).resolve().relative_to(cwd)
            except ValueError:
                where = Path(f.path)
            kind = "warning" if f.warning else "error"
            message = f.message.replace("%", "%25").replace("\n", "%0A")
            lines.append(
                f"::{kind} file={where},line={f.line},"
                f"title={f.rule}::{message}"
            )
        lines.append(self.summary())
        return "\n".join(lines)


def default_target() -> Path:
    """The installed ``repro`` package — what CI lints."""
    return Path(__file__).resolve().parents[1]


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Target files, deduplicated by resolved path and globally sorted.

    Overlapping targets (a directory plus a file inside it, the same
    directory twice) must not double-lint a file, and the report order
    must not depend on the order directories were passed in.
    """
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for found in path.rglob("*.py"):
                seen.add(found.resolve())
        else:
            seen.add(path.resolve())
    return sorted(seen, key=str)


def _run_per_file(source: SourceFile) -> tuple[Finding, ...]:
    raw: list[Finding] = []
    for run_check in PER_FILE_CHECKS:
        raw.extend(run_check(source))
    return tuple(sorted(raw, key=lambda f: (f.line, f.rule)))


def _load_or_parse(path: Path, cache: LintCache) -> ModuleInfo:
    """Phase-1 unit of work: one :class:`ModuleInfo`, cached by content."""
    raw_bytes = path.read_bytes()
    content_hash = hashlib.sha256(raw_bytes).hexdigest()
    entry = cache.lookup(path, content_hash)
    module = module_name_for(path)
    if entry is not None:
        return info_from_entry(path, module, entry)
    try:
        source = SourceFile.from_bytes(path, raw_bytes)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", None) or 1
        info = ModuleInfo(
            path=path,
            module=module,
            content_hash=content_hash,
            raw_imports=(),
            api={},
            suppressions={},
            findings=(
                Finding(PARSE_RULE, str(path), line, f"cannot parse: {exc}"),
            ),
        )
    else:
        info = ModuleInfo.from_source(source, _run_per_file(source))
    cache.store(path, entry_from_info(info))
    return info


def build_model(
    files: Iterable[Path], cache: LintCache | None = None
) -> ProjectModel:
    """Phase 1 on its own: the shared model for the given files."""
    if cache is None:
        cache = LintCache(None)
    model = ProjectModel()
    for path in files:
        model.add(_load_or_parse(path, cache))
    return model


def _apply_suppressions(
    model: ProjectModel, cross_file: list[Finding]
) -> list[Finding]:
    """One global pass: suppress, then report W1 (unused) and W2 (unknown).

    Cross-file findings land on import/def lines in ordinary files, so
    the same ``# lint: disable=R7`` mechanism covers them — which is
    why this pass runs after phase 2, over *all* findings at once.
    """
    by_path: dict[str, list[Finding]] = {}
    for info in model.modules.values():
        by_path.setdefault(str(info.path), []).extend(info.findings)
    for finding in cross_file:
        by_path.setdefault(finding.path, []).append(finding)

    suppressions_of = {
        str(info.path): info.suppressions for info in model.modules.values()
    }
    kept: list[Finding] = []
    for path, raw in by_path.items():
        suppressions = suppressions_of.get(path, {})
        used: set[tuple[int, str]] = set()
        for finding in raw:
            if finding.rule in suppressions.get(finding.line, ()):
                used.add((finding.line, finding.rule))
            else:
                kept.append(finding)
        for line in sorted(suppressions):
            for rule in sorted(suppressions[line]):
                if rule not in RULE_DOCS:
                    kept.append(
                        Finding(
                            UNKNOWN_SUPPRESSION_RULE,
                            path,
                            line,
                            f"unknown rule '{rule}' in suppression "
                            f"'# lint: disable={rule}' — known rules: "
                            + ", ".join(sorted(RULE_DOCS)),
                            warning=True,
                        )
                    )
                elif (line, rule) not in used:
                    kept.append(
                        Finding(
                            UNUSED_SUPPRESSION_RULE,
                            path,
                            line,
                            f"suppression '# lint: disable={rule}' matched "
                            "no finding",
                            warning=True,
                        )
                    )
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def lint_paths(
    paths: Iterable[Path] | None = None,
    *,
    use_cache: bool = True,
    cache_path: Path | None = None,
    api_manifest: Path | None = None,
    update_api: bool = False,
) -> LintReport:
    """Run the full two-phase analyzer.

    ``paths=None`` lints the installed ``repro`` package with R8
    enabled against the checked-in manifest; explicit paths skip R8
    unless ``api_manifest`` is supplied (a partial tree cannot be
    diffed against a whole-tree manifest).  ``update_api=True``
    regenerates the manifest from the model before checking, making
    the surface change deliberate.
    """
    default_scope = paths is None
    targets = [Path(p) for p in paths] if paths else [default_target()]

    missing: list[Finding] = []
    present: list[Path] = []
    for target in targets:
        if target.exists():
            present.append(target)
        else:
            missing.append(
                Finding(
                    MISSING_RULE,
                    str(target),
                    1,
                    "lint target does not exist",
                )
            )
    files = iter_python_files(present)

    cache = LintCache.load(
        (cache_path or default_cache_path()) if use_cache else None
    )
    model = build_model(files, cache)

    cross_file: list[Finding] = list(layers.check_model(model))
    manifest_path = api_manifest
    if manifest_path is None and default_scope:
        manifest_path = api_drift.default_manifest_path()
    if manifest_path is not None:
        if update_api:
            api_drift.write_manifest(model, manifest_path)
        cross_file.extend(api_drift.check_model(model, manifest_path))

    findings = missing + _apply_suppressions(model, cross_file)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    cache.save()
    return LintReport(
        tuple(findings),
        files_checked=len(files),
        files_parsed=cache.misses,
        cache_hits=cache.hits,
    )


def lint_file(path: Path) -> list[Finding]:
    """Single-file compatibility entry point (used heavily by tests).

    Runs the per-file rules plus the suppression/W1/W2 pass; cross-file
    rules see a one-module model, so R7 can only report the file's own
    restricted-package violations and R8 is skipped entirely.
    """
    report = lint_paths([path], use_cache=False)
    return list(report.findings)
