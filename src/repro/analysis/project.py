"""Phase 1 of the two-phase analyzer: the shared project model.

``repro lint`` used to be a bag of independent ``check(source)``
functions, each seeing one file at a time.  The contracts that actually
keep this codebase safe to grow — layered imports, a frozen public API,
deterministic kernels — span files, so phase 1 now parses every target
module exactly once into a :class:`ProjectModel`:

* a :class:`ModuleInfo` per file — dotted module name (derived by
  walking up through ``__init__.py`` packages), raw per-file findings,
  suppression table, and the two extraction products below;
* a static import graph: every ``import``/``from`` statement as a
  :class:`RawImport`, classified as *load-time* (module level),
  *lazy* (inside a function body — cannot participate in an import
  cycle), or *type-only* (under ``if TYPE_CHECKING:`` — not a runtime
  dependency at all), and resolved against the model's own module set
  so ``from repro.core import plan`` is an edge to ``repro.core.plan``,
  not to the package ``__init__``;
* a public-symbol table per module: top-level functions, classes
  (bases, annotated fields, public-method signatures), and ``__all__``
  re-exports, with signatures rendered from the AST — the input to the
  R8 API-drift rule.

Everything here is stdlib-only (the package contract, enforced by R7 on
this very package): no numpy, no repro.core.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, SourceFile

#: Module roots that never count as third-party for the restricted
#: packages (R7): the standard library plus ``__future__``.
STDLIB_MODULES = frozenset(sys.stdlib_module_names) | {"__future__"}


@dataclass(frozen=True)
class RawImport:
    """One ``import``/``from`` statement, before cross-file resolution.

    Kept in as-written form (module text, imported names, relative
    level) so it serializes into the lint cache; resolution against the
    model's module set happens per run in :meth:`ProjectModel.edges`.
    """

    module: str
    names: tuple[str, ...]
    level: int
    line: int
    lazy: bool
    type_checking: bool

    def to_json(self) -> dict:
        return {
            "module": self.module,
            "names": list(self.names),
            "level": self.level,
            "line": self.line,
            "lazy": self.lazy,
            "type_checking": self.type_checking,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RawImport":
        return cls(
            payload["module"],
            tuple(payload["names"]),
            payload["level"],
            payload["line"],
            payload["lazy"],
            payload["type_checking"],
        )


@dataclass(frozen=True)
class ImportEdge:
    """A resolved dependency: ``importer`` needs ``target`` at ``line``."""

    importer: str
    target: str
    line: int
    lazy: bool
    type_checking: bool

    @property
    def load_time(self) -> bool:
        """True when the import runs while the module itself loads."""
        return not self.lazy and not self.type_checking


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def extract_imports(tree: ast.Module) -> tuple[RawImport, ...]:
    """All import statements in ``tree``, classified lazy/type-only."""
    records: list[RawImport] = []

    def visit(node: ast.AST, lazy: bool, type_checking: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_lazy = lazy
            child_tc = type_checking
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_lazy = True
            elif isinstance(child, ast.If) and _is_type_checking_test(
                child.test
            ):
                for stmt in child.body:
                    visit_stmt(stmt, child_lazy, True)
                for stmt in child.orelse:
                    visit_stmt(stmt, child_lazy, child_tc)
                continue
            visit_stmt(child, child_lazy, child_tc)

    def visit_stmt(child: ast.AST, lazy: bool, type_checking: bool) -> None:
        if isinstance(child, ast.Import):
            for alias in child.names:
                records.append(
                    RawImport(
                        alias.name, (), 0, child.lineno, lazy, type_checking
                    )
                )
        elif isinstance(child, ast.ImportFrom):
            records.append(
                RawImport(
                    child.module or "",
                    tuple(alias.name for alias in child.names),
                    child.level,
                    child.lineno,
                    lazy,
                    type_checking,
                )
            )
        visit(child, lazy, type_checking)

    visit(tree, False, False)
    return tuple(records)


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    ``src/repro/core/plan.py`` -> ``repro.core.plan`` (because
    ``src/`` has no ``__init__.py``); a loose file outside any package
    is just its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


# ---------------------------------------------------------------------------
# Public-API extraction (the R8 input)


def _format_arguments(args: ast.arguments) -> str:
    """Render an ``ast.arguments`` the way ``inspect.signature`` would."""
    rendered: list[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    # Defaults right-align against the positional parameters.
    pad: list[ast.expr | None] = [None] * (len(positional) - len(defaults))
    padded = pad + defaults

    def one(arg: ast.arg, default: ast.expr | None) -> str:
        text = arg.arg
        if arg.annotation is not None:
            text += f": {ast.unparse(arg.annotation)}"
            if default is not None:
                text += f" = {ast.unparse(default)}"
        elif default is not None:
            text += f"={ast.unparse(default)}"
        return text

    for index, arg in enumerate(positional):
        rendered.append(one(arg, padded[index]))
        if args.posonlyargs and index == len(args.posonlyargs) - 1:
            rendered.append("/")
    if args.vararg is not None:
        rendered.append("*" + one(args.vararg, None))
    elif args.kwonlyargs:
        rendered.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        rendered.append(one(arg, default))
    if args.kwarg is not None:
        rendered.append("**" + one(args.kwarg, None))
    return "(" + ", ".join(rendered) + ")"


def _function_descriptor(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict:
    signature = _format_arguments(node.args)
    if node.returns is not None:
        signature += f" -> {ast.unparse(node.returns)}"
    decorators = sorted(
        d.id
        for d in node.decorator_list
        if isinstance(d, ast.Name)
        and d.id in ("property", "staticmethod", "classmethod")
    )
    descriptor = {"kind": "function", "signature": signature, "line": node.lineno}
    if isinstance(node, ast.AsyncFunctionDef):
        descriptor["kind"] = "async function"
    if decorators:
        descriptor["decorators"] = decorators
    return descriptor


def _class_descriptor(node: ast.ClassDef) -> dict:
    fields: dict[str, str] = {}
    methods: dict[str, dict] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if not stmt.target.id.startswith("_"):
                fields[stmt.target.id] = ast.unparse(stmt.annotation)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = stmt.name
            if name.startswith("_") and name != "__init__":
                continue
            descriptor = _function_descriptor(stmt)
            descriptor.pop("line", None)
            methods[name] = descriptor
    descriptor = {
        "kind": "class",
        "bases": [ast.unparse(base) for base in node.bases],
        "line": node.lineno,
    }
    if fields:
        descriptor["fields"] = fields
    if methods:
        descriptor["methods"] = methods
    return descriptor


def _declared_all(tree: ast.Module) -> tuple[str, ...] | None:
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    return tuple(names)
    return None


def extract_api(tree: ast.Module) -> dict[str, dict]:
    """Public symbol table: ``{name: descriptor}`` with def lines.

    Symbols are the module's top-level functions and classes whose names
    do not start with ``_``; if the module declares ``__all__``, names
    listed there but defined elsewhere (re-exports) are recorded with
    ``kind: "name"`` so removing them from ``__all__`` is drift too.
    """
    api: dict[str, dict] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not stmt.name.startswith("_"):
                api[stmt.name] = _function_descriptor(stmt)
        elif isinstance(stmt, ast.ClassDef):
            if not stmt.name.startswith("_"):
                api[stmt.name] = _class_descriptor(stmt)
    declared = _declared_all(tree)
    if declared is not None:
        for name in declared:
            if name not in api and not name.startswith("_"):
                api[name] = {"kind": "name", "line": 1}
    return api


# ---------------------------------------------------------------------------
# The model


@dataclass
class ModuleInfo:
    """Everything the cross-file rules need to know about one file.

    Restorable from the lint cache without re-parsing: all fields are
    either path-derived (recomputed each run) or JSON round-trippable.
    """

    path: Path
    module: str
    content_hash: str
    raw_imports: tuple[RawImport, ...]
    api: dict[str, dict]
    suppressions: dict[int, tuple[str, ...]]
    findings: tuple[Finding, ...]
    parsed: bool = True

    @classmethod
    def from_source(
        cls, source: SourceFile, findings: tuple[Finding, ...]
    ) -> "ModuleInfo":
        return cls(
            path=source.path,
            module=module_name_for(source.path),
            content_hash=source.content_hash,
            raw_imports=extract_imports(source.tree),
            api=extract_api(source.tree),
            suppressions={
                line: tuple(sorted(rules))
                for line, rules in source.suppressions.items()
            },
            findings=findings,
        )

    @property
    def root_package(self) -> str:
        return self.module.split(".", 1)[0]


@dataclass
class ProjectModel:
    """The shared phase-1 product: all modules plus the import graph."""

    modules: dict[Path, ModuleInfo] = field(default_factory=dict)

    def add(self, info: ModuleInfo) -> None:
        self.modules[info.path] = info

    @property
    def by_name(self) -> dict[str, ModuleInfo]:
        return {info.module: info for info in self.modules.values()}

    def edges(self) -> list[ImportEdge]:
        """The resolved import graph, restricted to in-model targets.

        ``from pkg import name`` resolves to the submodule ``pkg.name``
        when the model contains it, else to ``pkg`` itself; relative
        imports resolve against the importer's package.  Imports whose
        targets live outside the model (numpy, stdlib, uninstalled
        optional deps) produce no edge — :mod:`repro.analysis.layers`
        inspects those separately for the restricted packages.
        """
        known = set(self.by_name)
        edges: list[ImportEdge] = []
        for info in self.modules.values():
            for raw in info.raw_imports:
                base = self._resolve_base(info, raw)
                if base is None:
                    continue
                targets: set[str] = set()
                if not raw.names:
                    if base in known:
                        targets.add(base)
                else:
                    for name in raw.names:
                        candidate = f"{base}.{name}" if base else name
                        if candidate in known:
                            targets.add(candidate)
                        elif base in known:
                            targets.add(base)
                for target in sorted(targets):
                    if target != info.module:
                        edges.append(
                            ImportEdge(
                                info.module,
                                target,
                                raw.line,
                                raw.lazy,
                                raw.type_checking,
                            )
                        )
        return edges

    @staticmethod
    def _resolve_base(info: ModuleInfo, raw: RawImport) -> str | None:
        if raw.level == 0:
            return raw.module
        # Relative import: drop `level` trailing components from the
        # importer's package path (one for the module itself).
        parts = info.module.split(".")
        if info.path.name == "__init__.py":
            parts.append("")  # packages resolve one level shallower
        if raw.level >= len(parts):
            return None
        base_parts = parts[: len(parts) - raw.level]
        if raw.module:
            base_parts.append(raw.module)
        return ".".join(part for part in base_parts if part)

    def external_imports(self, info: ModuleInfo) -> list[RawImport]:
        """Imports of ``info`` that leave its own root package."""
        root = info.root_package
        out = []
        for raw in info.raw_imports:
            if raw.level > 0:
                continue  # relative imports stay inside the package
            top = raw.module.split(".", 1)[0]
            if top and top != root:
                out.append(raw)
        return out
