"""Rule R9: deterministic-kernel hygiene in plan-order-sensitive code.

The paper reproduction is pinned on bit-identical replay: every backend
must produce the same bytes for the same schedule, which means every
array ordering decision on the compile/replay path must be a pure
function of the input pattern.  Two classic ways to silently lose that:

* ``np.sort`` / ``np.argsort`` (function or ``.argsort()`` method form)
  default to introsort, which is *unstable*: equal keys land in an
  arbitrary order that can change with numpy version, array layout, or
  SIMD width.  Everything on the plan path already passes
  ``kind="stable"``; this rule keeps it that way.  ``np.lexsort`` is
  deliberately **not** flagged: numpy guarantees it is stable (it is a
  sequence of mergesorts and accepts no ``kind=``), so flagging it
  would only breed no-op suppressions.
* ``set``/``dict``-iteration feeding an array constructor
  (``np.array(list(seen))``, ``np.fromiter(d.keys(), ...)``): set order
  is hash-and-history dependent, and even dict insertion order is a
  program-history artifact rather than a function of the data.  Wrap
  the iterable in ``sorted(...)`` to make the order canonical — the
  rule recognizes that and stays quiet.

Scope: modules under a ``core``, ``graph``, or ``serve`` path segment —
the packages whose output feeds schedules, plans, or served responses.
``# lint: disable=R9`` suppresses a deliberate exception in place.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, SourceFile

RULE = "R9"

#: Path segments placing a module in scope.
_SCOPED_SEGMENTS = {"core", "graph", "serve"}

#: numpy functions that must carry a stable ``kind=``.
_SORT_FUNCTIONS = {"sort", "argsort"}

#: ``kind=`` values numpy documents as stable.
_STABLE_KINDS = {"stable", "mergesort"}

#: Array constructors whose argument order becomes array order.
_ARRAY_CONSTRUCTORS = {
    "array",
    "asarray",
    "asanyarray",
    "fromiter",
    "concatenate",
    "stack",
    "hstack",
    "vstack",
}

#: Dict-view methods whose iteration order is insertion history.
_VIEW_METHODS = {"keys", "values", "items"}


def _in_scope(source: SourceFile) -> bool:
    return bool(set(source.path.parts) & _SCOPED_SEGMENTS)


def _is_np_call(node: ast.Call, names: set[str]) -> str | None:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in names
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _has_stable_kind(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "kind":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value in _STABLE_KINDS
            )
    return False


def _unordered_iteration(node: ast.AST) -> ast.AST | None:
    """First set/dict-iteration node in the subtree, honoring sorted().

    Walks the expression tree under an array-constructor argument;
    descending stops at any ``sorted(...)`` call because sorting
    canonicalizes whatever order the iterable had.
    """
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return None
            if func.id in ("set", "frozenset"):
                return node
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _VIEW_METHODS
            and not node.args
            and not node.keywords
        ):
            return node
    if isinstance(node, (ast.Set, ast.SetComp)):
        return node
    for child in ast.iter_child_nodes(node):
        hit = _unordered_iteration(child)
        if hit is not None:
            return hit
    return None


def check(source: SourceFile) -> list[Finding]:
    if not _in_scope(source):
        return []
    findings: list[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        sort_name = _is_np_call(node, _SORT_FUNCTIONS)
        method_sort = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "argsort"
            and sort_name is None
        )
        if (sort_name or method_sort) and not _has_stable_kind(node):
            name = f"np.{sort_name}" if sort_name else ".argsort()"
            findings.append(
                source.finding(
                    RULE,
                    node,
                    f"{name} without kind=\"stable\": the default "
                    "introsort breaks ties in an arbitrary, "
                    "numpy-version-dependent order, which silently "
                    "forfeits bit-identical replay on the plan path "
                    "(# lint: disable=R9 for a deliberate exception)",
                )
            )
            continue
        if _is_np_call(node, _ARRAY_CONSTRUCTORS):
            for arg in node.args:
                hit = _unordered_iteration(arg)
                if hit is not None:
                    what = (
                        "set iteration"
                        if isinstance(hit, (ast.Set, ast.SetComp))
                        or (
                            isinstance(hit, ast.Call)
                            and isinstance(hit.func, ast.Name)
                        )
                        else f"dict .{hit.func.attr}() iteration"  # type: ignore[union-attr]
                    )
                    findings.append(
                        source.finding(
                            RULE,
                            node,
                            f"{what} feeding an array constructor: the "
                            "element order is hash/insertion history, "
                            "not a function of the data — wrap it in "
                            "sorted(...) to canonicalize "
                            "(# lint: disable=R9 for a deliberate "
                            "exception)",
                        )
                    )
                    break
    return findings
