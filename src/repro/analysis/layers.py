"""Rule R7: import layering and cycle freedom over the project model.

The architecture this repo has converged on is a strict layering —
each package may import its own layer and anything below, never above:

    =====  ==============================  =================================
    layer  packages                        role
    =====  ==============================  =================================
    5      cli, __main__, repro (root)     entry points / aggregator
    4      serve, eval                     traffic + experiments
    3      accelerators, solvers, energy   workloads over the core
    2      core                            scheduling/plans/backends/store
    1      sparse, graph, hw,              formats, coloring math, models,
           obs, faults, analysis           and the restricted utilities
    0      errors, types                   leaf vocabulary
    =====  ==============================  =================================

Three additional contracts, previously enforced by docstrings only:

* **Restricted packages** — ``obs``, ``faults``, and ``analysis`` may
  import only the standard library, ``repro.errors``, and themselves.
  They sit below ``core`` *and* ``serve`` precisely so both can import
  them freely (runtime validation hooks, fault probes, clock seam);
  any heavier dependency would recreate the cycles this rule exists to
  prevent, and a third-party import (numpy!) would break the
  "stdlib-only" promise their docstrings make.
* **Cycle freedom** — any load-time import cycle anywhere in the model
  is fatal, whatever the layers involved.  Lazy (function-body) imports
  are excluded from cycle detection: deferring an import is the
  sanctioned way to break a genuine runtime cycle (``core.store`` ->
  ``core.cache`` does exactly this), and the deferral makes the cycle
  harmless at load time.  They still count for layering.
* **Type-only imports are free** — an import under ``if TYPE_CHECKING:``
  is not a runtime dependency, so it neither violates layers nor forms
  cycles.

The layer map keys on the path segment *under the root package* and
only constrains the package named in :data:`ROOT_PACKAGE`; foreign
trees handed to ``repro lint`` still get cycle detection, nothing more.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.project import (
    STDLIB_MODULES,
    ImportEdge,
    ModuleInfo,
    ProjectModel,
)

RULE = "R7"

#: The package the layer map below describes.
ROOT_PACKAGE = "repro"

#: Lowest to highest.  A module's segment is the first dotted component
#: after the root (`repro.core.plan` -> `core`); top-level modules are
#: their own segment (`repro.errors` -> `errors`), and the root
#: ``__init__`` itself is the aggregator at the top.
LAYERS: tuple[frozenset[str], ...] = (
    frozenset({"errors", "types"}),
    frozenset({"sparse", "graph", "hw", "obs", "faults", "analysis"}),
    frozenset({"core"}),
    frozenset({"accelerators", "solvers", "energy"}),
    frozenset({"serve", "eval"}),
    frozenset({"cli", "__main__", "__root__"}),
)

#: Packages restricted to stdlib + ``repro.errors`` + themselves.
RESTRICTED: frozenset[str] = frozenset({"obs", "faults", "analysis"})

#: The only repro package a restricted package may import.
RESTRICTED_ALLOWED: frozenset[str] = frozenset({"errors"})

_LAYER_OF: dict[str, int] = {
    segment: index for index, group in enumerate(LAYERS) for segment in group
}


def segment_of(module: str) -> str | None:
    """Layer-map segment of a dotted module, or None outside the root."""
    parts = module.split(".")
    if parts[0] != ROOT_PACKAGE:
        return None
    if len(parts) == 1:
        return "__root__"
    return parts[1]


def _layer(module: str) -> int | None:
    segment = segment_of(module)
    if segment is None:
        return None
    return _LAYER_OF.get(segment)


def _restricted_violations(model: ProjectModel) -> list[Finding]:
    findings: list[Finding] = []
    for info in model.modules.values():
        segment = segment_of(info.module)
        if segment not in RESTRICTED:
            continue
        for raw in info.raw_imports:
            if raw.type_checking or raw.level > 0:
                continue
            top = raw.module.split(".", 1)[0]
            if not top or top in STDLIB_MODULES:
                continue
            if top == ROOT_PACKAGE:
                parts = raw.module.split(".")
                inner = parts[1] if len(parts) > 1 else ""
                # `from repro import faults` style: resolve the imported
                # names, not the bare root.
                inner_names = (
                    {inner} if inner else set(raw.names) or {"__root__"}
                )
                bad = inner_names - RESTRICTED_ALLOWED - {segment}
                if not bad:
                    continue
                what = ", ".join(f"repro.{name}" for name in sorted(bad))
            else:
                what = top
            findings.append(
                Finding(
                    RULE,
                    str(info.path),
                    raw.line,
                    f"restricted package '{segment}' imports {what}; "
                    f"repro.{segment} is limited to the stdlib, "
                    "repro.errors, and itself so core/serve can import "
                    "it without cycles "
                    "(# lint: disable=R7 for a justified exception)",
                )
            )
    return findings


def _layer_violations(
    model: ProjectModel, edges: list[ImportEdge]
) -> list[Finding]:
    by_name = model.by_name
    findings: list[Finding] = []
    for edge in edges:
        if edge.type_checking:
            continue
        if segment_of(edge.importer) in RESTRICTED:
            continue  # the restricted check reports these, more precisely
        importer_layer = _layer(edge.importer)
        target_layer = _layer(edge.target)
        if importer_layer is None or target_layer is None:
            continue
        if importer_layer >= target_layer:
            continue
        info = by_name[edge.importer]
        importer_segment = segment_of(edge.importer)
        target_segment = segment_of(edge.target)
        findings.append(
            Finding(
                RULE,
                str(info.path),
                edge.line,
                f"layering violation: '{importer_segment}' (layer "
                f"{importer_layer}) imports {edge.target} "
                f"('{target_segment}', layer {target_layer}); "
                "lower layers must not import higher ones — invert the "
                "dependency, gate it under TYPE_CHECKING if type-only, "
                "or move the code "
                "(# lint: disable=R7 for a justified exception)",
            )
        )
    return findings


def _cycles(
    model: ProjectModel, edges: list[ImportEdge]
) -> list[Finding]:
    """Load-time import cycles, one finding per strongly-connected set."""
    graph: dict[str, set[str]] = {}
    edge_lines: dict[tuple[str, str], int] = {}
    for edge in edges:
        if not edge.load_time:
            continue
        graph.setdefault(edge.importer, set()).add(edge.target)
        graph.setdefault(edge.target, set())
        edge_lines.setdefault((edge.importer, edge.target), edge.line)

    # Iterative Tarjan SCC: recursion depth would otherwise track the
    # longest import chain in the tree.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, list[str] | None]] = [(start, None)]
        while work:
            node, pending = work[-1]
            if pending is None:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
                pending = sorted(graph[node])
                work[-1] = (node, pending)
            advanced = False
            while pending:
                successor = pending.pop(0)
                if successor not in index:
                    work[-1] = (node, pending)
                    work.append((successor, None))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    by_name = model.by_name
    findings: list[Finding] = []
    for component in sorted(sccs):
        members = set(component)
        anchor = component[0]
        anchor_target = next(
            target for target in sorted(graph[anchor]) if target in members
        )
        line = edge_lines[(anchor, anchor_target)]
        info = by_name.get(anchor)
        path = str(info.path) if info is not None else anchor
        findings.append(
            Finding(
                RULE,
                path,
                line,
                "load-time import cycle: "
                + " -> ".join(component + [component[0]])
                + "; break it by inverting an edge or deferring one "
                "import into the function that needs it",
            )
        )
    return findings


def check_model(model: ProjectModel) -> list[Finding]:
    """All R7 findings for the model: layers, restrictions, cycles."""
    edges = model.edges()
    findings = _restricted_violations(model)
    findings.extend(_layer_violations(model, edges))
    findings.extend(_cycles(model, edges))
    return findings
