"""Rule R8: the public API surface matches the checked-in manifest.

``src/repro/api_manifest.json`` records every public module's public
symbols with their signatures (functions: rendered argument lists;
classes: bases, annotated fields, public-method signatures; ``__all__``
re-exports as bare names).  ``repro lint`` recomputes that table from
the project model on every run and reports **any** difference — a
changed signature, a removed symbol, and also a newly added one — as an
R8 finding.

The point is not to forbid API evolution but to make it *deliberate*:
the serving front end (ROADMAP item 1) and the GPU backend (item 2)
will both build on this surface, and a signature that drifts without a
manifest update is exactly the change that silently breaks callers
living in another process or repo.  The workflow is::

    $ repro lint                  # fails with R8 naming the drift
    $ repro lint --update-api     # regenerate the manifest, review the
    $ git diff api_manifest.json  # diff alongside the code change

The manifest round-trips byte-for-byte through ``--update-api``
(sorted keys, fixed indentation), so "no accidental drift" is a
zero-diff check in CI.

R8 runs when linting the default target (the whole installed package)
or when an explicit manifest is supplied; partial-path lints skip it,
since a subset of the tree cannot be compared against a whole-tree
manifest without reporting every unvisited module as deleted.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel

RULE = "R8"

#: The checked-in manifest, shipped inside the package.
DEFAULT_MANIFEST_NAME = "api_manifest.json"


def default_manifest_path() -> Path:
    return Path(__file__).resolve().parents[1] / DEFAULT_MANIFEST_NAME


def _is_public_module(module: str) -> bool:
    return all(not part.startswith("_") for part in module.split("."))


def build_manifest(model: ProjectModel) -> dict[str, dict[str, dict]]:
    """``{module: {symbol: descriptor}}`` for every public module.

    Descriptors are the project model's symbol table minus the ``line``
    fields (line numbers are presentation, not API).
    """
    manifest: dict[str, dict[str, dict]] = {}
    for info in model.modules.values():
        if not _is_public_module(info.module):
            continue
        symbols: dict[str, dict] = {}
        for name, descriptor in info.api.items():
            cleaned = {
                key: value
                for key, value in descriptor.items()
                if key != "line"
            }
            symbols[name] = cleaned
        manifest[info.module] = symbols
    return manifest


def render_manifest(manifest: dict) -> str:
    """The canonical byte form: sorted keys, two-space indent."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(model: ProjectModel, path: Path) -> int:
    """Regenerate ``path`` from the model; returns the module count."""
    manifest = build_manifest(model)
    path.write_text(render_manifest(manifest), encoding="utf-8")
    return len(manifest)


def load_manifest(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


_REGEN = "run `repro lint --update-api` and review the manifest diff"


def check_model(model: ProjectModel, manifest_path: Path) -> list[Finding]:
    """R8 findings: computed public surface vs the checked-in manifest."""
    manifest = load_manifest(manifest_path)
    if manifest is None:
        return [
            Finding(
                RULE,
                str(manifest_path),
                1,
                "API manifest missing or unreadable; " + _REGEN,
            )
        ]
    computed = build_manifest(model)
    by_name = model.by_name
    findings: list[Finding] = []

    for module in sorted(set(manifest) - set(computed)):
        findings.append(
            Finding(
                RULE,
                str(manifest_path),
                1,
                f"module {module} is in the API manifest but gone from "
                "the tree; " + _REGEN,
            )
        )
    for module in sorted(set(computed) - set(manifest)):
        findings.append(
            Finding(
                RULE,
                str(by_name[module].path),
                1,
                f"public module {module} is not in the API manifest; "
                + _REGEN,
            )
        )
    for module in sorted(set(computed) & set(manifest)):
        recorded = manifest[module]
        current = computed[module]
        info = by_name[module]
        for symbol in sorted(set(recorded) - set(current)):
            findings.append(
                Finding(
                    RULE,
                    str(info.path),
                    1,
                    f"public symbol {module}.{symbol} was removed (or "
                    "renamed) without a manifest update; " + _REGEN,
                )
            )
        for symbol in sorted(set(current) - set(recorded)):
            line = info.api.get(symbol, {}).get("line", 1)
            findings.append(
                Finding(
                    RULE,
                    str(info.path),
                    line,
                    f"new public symbol {module}.{symbol} is not in the "
                    "API manifest; " + _REGEN,
                )
            )
        for symbol in sorted(set(current) & set(recorded)):
            if current[symbol] != recorded[symbol]:
                line = info.api.get(symbol, {}).get("line", 1)
                findings.append(
                    Finding(
                        RULE,
                        str(info.path),
                        line,
                        f"signature of {module}.{symbol} drifted from "
                        "the API manifest "
                        f"(manifest: {json.dumps(recorded[symbol], sort_keys=True)}; "
                        f"tree: {json.dumps(current[symbol], sort_keys=True)}); "
                        + _REGEN,
                    )
                )
    return findings
