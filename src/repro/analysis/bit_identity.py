"""Rule R1: bit-identity contract for replay execution.

Two hazards, both rooted in the NumPy 2.x accumulation-order problem:

* ``np.add.reduceat`` (or any ``np.add.reduce``-family call) performs a
  pairwise, order-sensitive reduction.  It is only allowed inside a
  backend module that *declares* ``bit_identical=False`` in its
  :class:`BackendCapabilities` — anywhere else it silently downgrades a
  bit-identity guarantee to allclose-grade.
* ``np.add.at`` is the scatter-replay primitive.  Outside the backend
  package, the mathematical oracles (``sparse/``, ``_reference.py``)
  and the accelerator cost models, calling it directly bypasses the
  ``ReplayBackend`` registry — capability negotiation, probing, and the
  ``GUST_BACKEND`` override all stop applying to that call site.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, SourceFile

RULE = "R1"

# Path segments whose modules legitimately scatter directly: registered
# backends, the COO/CSR oracles, and other-paper accelerator models that
# are never on the replay path.
_SCATTER_EXEMPT_SEGMENTS = {"backends", "accelerators", "sparse"}
_ORACLE_SUFFIX = "_reference.py"


def _is_np_add_method(node: ast.Call, method: str) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == method
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "add"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in ("np", "numpy")
    )


def _declares_allclose_capabilities(tree: ast.Module) -> bool:
    """True if the module declares ``BackendCapabilities(bit_identical=False)``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "BackendCapabilities":
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "bit_identical"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return True
    return False


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    reduceat_exempt = _declares_allclose_capabilities(source.tree)
    parts = set(source.path.parts)
    scatter_exempt = bool(parts & _SCATTER_EXEMPT_SEGMENTS) or source.path.name.endswith(
        _ORACLE_SUFFIX
    )
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if not reduceat_exempt and _is_np_add_method(node, "reduceat"):
            findings.append(
                source.finding(
                    RULE,
                    node,
                    "order-sensitive reduction np.add.reduceat outside a "
                    "backend declaring bit_identical=False breaks the "
                    "bit-identity contract",
                )
            )
        if not scatter_exempt and _is_np_add_method(node, "at"):
            findings.append(
                source.finding(
                    RULE,
                    node,
                    "direct np.add.at scatter replay bypasses the "
                    "ReplayBackend registry; go through compile_plan() or a "
                    "registered backend",
                )
            )
    return findings
