"""Exception hierarchy for the GUST reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
library itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class MatrixFormatError(ReproError):
    """A sparse matrix container was constructed from inconsistent data."""


class ScheduleError(ReproError):
    """A schedule is malformed or violates the collision-freedom contract."""


class CollisionError(ScheduleError):
    """Two partial products were routed to the same adder in one cycle.

    Raised by the cycle-accurate machine when fed an improperly scheduled
    stream; the edge-coloring scheduler guarantees this never happens.
    """


class HardwareConfigError(ReproError):
    """An accelerator was configured with impossible parameters."""


class ColoringError(ReproError):
    """An edge coloring failed validation (adjacent edges share a color)."""


class DatasetError(ReproError):
    """An unknown dataset name or invalid generation parameters."""


class BackendError(ReproError):
    """An execution backend could not be resolved or compiled.

    Raised by the :mod:`repro.core.backends` registry for unknown backend
    names, backends whose runtime dependency is missing (e.g. ``"scipy"``
    without scipy installed), and duplicate registrations.
    """


class BackendCapabilityError(BackendError):
    """A backend was requested for a job its capabilities cannot honor.

    The typed form of what used to be an ``allclose``-only test gate: e.g.
    selecting the ``"reduceat"`` backend (whose ``np.add.reduceat``
    reduction is only numerically close to sequential accumulation on
    NumPy >= 2.x) for a caller that demanded bit-identical replay.
    """


class LockOrderError(ReproError):
    """Two locks were acquired in inconsistent orders across call paths.

    Raised by :class:`repro.analysis.lockcheck.LockOrderMonitor` when the
    recorded acquisition graph contains a cycle — the precondition for an
    ABBA deadlock, reported even when the schedule that would actually
    deadlock never occurred during the run.
    """


class SolverError(ReproError):
    """An iterative solver failed to converge or received bad operands."""


class ServeError(ReproError):
    """The serving layer rejected a request or is in the wrong state."""


class QueueFullError(ServeError):
    """A tenant queue is at capacity; the caller should back off and retry.

    Raised synchronously by ``submit`` so backpressure propagates to the
    client instead of growing an unbounded queue inside the server.
    """


class DeadlineExceededError(ServeError):
    """A request's deadline expired before the server executed it.

    Set on the request's future by the worker that dequeued it: an
    expired request fails fast and never reaches the kernel, so a
    saturated server spends its cycles only on answers someone is still
    waiting for.
    """


class ServerStoppedError(ServeError):
    """The server shut down (or lost its worker pool) before executing
    this request.

    The typed resolution for every future abandoned by ``stop(
    drain=False)``, by a crash-path shutdown, or by worker-pool
    exhaustion — a pending future must resolve with *something*; hanging
    the caller forever is the one outcome the serving layer never allows.
    """


class WorkerCrashedError(ServeError):
    """A worker thread died while holding this request's batch.

    The supervisor resolves the held futures with this error before
    respawning the worker, so a crash costs its batch a typed failure —
    never a hung client.
    """


class CircuitOpenError(ServeError):
    """The tenant's circuit breaker is open; the request was refused.

    After ``failure_threshold`` consecutive kernel failures the breaker
    stops admitting the tenant's requests for ``reset_after_s``, then
    lets a single half-open probe through; callers should back off and
    retry after the cooldown.
    """


class FaultSpecError(ReproError):
    """A ``GUST_FAULTS`` fault-injection spec could not be parsed."""


class InjectedFaultError(ReproError):
    """A deterministic fault raised by :mod:`repro.faults`.

    Only ever raised when a :class:`~repro.faults.FaultPlan` is active;
    production code paths treat it like any other unexpected failure,
    which is exactly the point — the chaos harness proves the handling
    is typed, counted, and hang-free.
    """
