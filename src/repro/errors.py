"""Exception hierarchy for the GUST reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
library itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class MatrixFormatError(ReproError):
    """A sparse matrix container was constructed from inconsistent data."""


class ScheduleError(ReproError):
    """A schedule is malformed or violates the collision-freedom contract."""


class CollisionError(ScheduleError):
    """Two partial products were routed to the same adder in one cycle.

    Raised by the cycle-accurate machine when fed an improperly scheduled
    stream; the edge-coloring scheduler guarantees this never happens.
    """


class HardwareConfigError(ReproError):
    """An accelerator was configured with impossible parameters."""


class ColoringError(ReproError):
    """An edge coloring failed validation (adjacent edges share a color)."""


class DatasetError(ReproError):
    """An unknown dataset name or invalid generation parameters."""


class BackendError(ReproError):
    """An execution backend could not be resolved or compiled.

    Raised by the :mod:`repro.core.backends` registry for unknown backend
    names, backends whose runtime dependency is missing (e.g. ``"scipy"``
    without scipy installed), and duplicate registrations.
    """


class BackendCapabilityError(BackendError):
    """A backend was requested for a job its capabilities cannot honor.

    The typed form of what used to be an ``allclose``-only test gate: e.g.
    selecting the ``"reduceat"`` backend (whose ``np.add.reduceat``
    reduction is only numerically close to sequential accumulation on
    NumPy >= 2.x) for a caller that demanded bit-identical replay.
    """


class LockOrderError(ReproError):
    """Two locks were acquired in inconsistent orders across call paths.

    Raised by :class:`repro.analysis.lockcheck.LockOrderMonitor` when the
    recorded acquisition graph contains a cycle — the precondition for an
    ABBA deadlock, reported even when the schedule that would actually
    deadlock never occurred during the run.
    """


class SolverError(ReproError):
    """An iterative solver failed to converge or received bad operands."""


class ServeError(ReproError):
    """The serving layer rejected a request or is in the wrong state."""


class QueueFullError(ServeError):
    """A tenant queue is at capacity; the caller should back off and retry.

    Raised synchronously by ``submit`` so backpressure propagates to the
    client instead of growing an unbounded queue inside the server.
    """
