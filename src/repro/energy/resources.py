"""FPGA resource scaling laws (paper Tables 2 and 5).

The paper synthesizes length-8, -87, and -256 GUST and a length-256 1D on
an Alveo U280 and reports per-partition resources.  Three regimes emerge:

* **arithmetic** and **I/O** scale linearly with length;
* the **crossbar** scales quadratically in LUTs and superlinearly in power
  — the reason very long GUSTs are impractical (Section 5.5).

We encode those laws anchored to the paper's published data points, so the
reproduction can regenerate both tables and extrapolate to other lengths
(e.g. the parallel-vs-monolithic comparison of the scalability study).
Between anchors, power values follow log-log interpolation; unit counts
follow the exact linear/quadratic fits noted per field.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.errors import HardwareConfigError
from repro.hw.memory import timestep_bits

#: The paper's anchor lengths.
ANCHOR_LENGTHS = (8, 87, 256)

# Table 5 anchors: {segment: {length: power_w}}.
_POWER_ANCHORS = {
    "arithmetic": {8: 0.3, 87: 3.5, 256: 6.3},
    "crossbar": {8: 1.0, 87: 3.6, 256: 16.4},
    "io": {8: 0.5, 87: 7.1, 256: 28.1},
}

# Table 2 anchors for GUST static power and the 1D-256 design.
_STATIC_POWER_ANCHORS = {8: 2.5, 87: 3.2, 256: 3.8}
_1D_256_POWER = {
    "static": 3.2,
    "logic": 3.4,
    "signals": 2.6,
    "dsp": 0.3,
    "io": 25.7,
    "total": 35.3,
}
_1D_256_UNITS = {
    "register": 8_200,
    "input_buffers": 8_200,
    "lut": 132_000,
    "dsp": 256,
    "io_pins": 16_000,
}


@dataclass(frozen=True)
class ResourceBreakdown:
    """Resources of one GUST partition (or a whole design when summed)."""

    power_w: float
    lut: int
    register: int
    dsp: int
    carry8: int
    io_pins: int
    input_buffers: int

    def __add__(self, other: "ResourceBreakdown") -> "ResourceBreakdown":
        return ResourceBreakdown(
            power_w=self.power_w + other.power_w,
            lut=self.lut + other.lut,
            register=self.register + other.register,
            dsp=self.dsp + other.dsp,
            carry8=self.carry8 + other.carry8,
            io_pins=self.io_pins + other.io_pins,
            input_buffers=self.input_buffers + other.input_buffers,
        )


def _loglog_interpolate(anchors: dict[int, float], length: int) -> float:
    """Power-law interpolation through anchor points (log-log linear).

    Outside the anchor range, the nearest segment's exponent extrapolates.
    """
    if length <= 0:
        raise HardwareConfigError(f"length must be positive, got {length}")
    points = sorted(anchors.items())
    if length in anchors:
        return anchors[length]
    if length < points[0][0]:
        (l0, v0), (l1, v1) = points[0], points[1]
    elif length > points[-1][0]:
        (l0, v0), (l1, v1) = points[-2], points[-1]
    else:
        for (l0, v0), (l1, v1) in zip(points, points[1:]):
            if l0 <= length <= l1:
                break
    exponent = math.log(v1 / v0) / math.log(l1 / l0)
    return v0 * (length / l0) ** exponent


def arithmetic_resources(length: int) -> ResourceBreakdown:
    """Multiplier + adder banks: everything linear in length.

    Anchors (length 256): 132K LUT, 8.2K registers, 512 DSP, 4.8K Carry8.
    """
    _require_positive(length)
    return ResourceBreakdown(
        power_w=_loglog_interpolate(_POWER_ANCHORS["arithmetic"], length),
        lut=round(132_000 * length / 256),
        register=32 * length,
        dsp=2 * length,
        carry8=round(4_800 * length / 256),
        io_pins=0,
        input_buffers=0,
    )


_CROSSBAR_LUT_ANCHORS = {8: 772.0, 87: 17_300.0, 256: 756_000.0}


def crossbar_resources(length: int) -> ResourceBreakdown:
    """The crossbar: LUTs super-linear (quadratic-and-worse at the top end),
    registers linear, power superlinear.

    LUT counts follow log-log interpolation through the paper's three
    synthesis points (772 / 17.3K / 756K), which grow faster than quadratic
    between lengths 87 and 256 — the effect Section 5.5's parallel-GUST
    argument rests on.
    """
    _require_positive(length)
    return ResourceBreakdown(
        power_w=_loglog_interpolate(_POWER_ANCHORS["crossbar"], length),
        lut=round(_loglog_interpolate(_CROSSBAR_LUT_ANCHORS, length)),
        register=32 * length,
        dsp=0,
        carry8=0,
        io_pins=0,
        input_buffers=0,
    )


def io_resources(length: int) -> ResourceBreakdown:
    """I/O partition: pins and buffers linear in length.

    Anchors: ~105 pins/lane and ~70 buffer entries/lane.
    """
    _require_positive(length)
    return ResourceBreakdown(
        power_w=_loglog_interpolate(_POWER_ANCHORS["io"], length),
        lut=0,
        register=0,
        dsp=0,
        carry8=0,
        io_pins=round(27_000 * length / 256),
        input_buffers=round(18_000 * length / 256),
    )


def static_power_w(length: int) -> float:
    """GUST static power (Table 2 anchors: 2.5 / 3.2 / 3.8 W)."""
    return _loglog_interpolate(_STATIC_POWER_ANCHORS, length)


def gust_resources(length: int) -> ResourceBreakdown:
    """Whole-design GUST resources: arithmetic + crossbar + I/O."""
    return (
        arithmetic_resources(length)
        + crossbar_resources(length)
        + io_resources(length)
    )


_TOTAL_POWER_ANCHORS = {8: 3.4, 87: 16.8, 256: 56.9}


def gust_dynamic_power_w(length: int) -> float:
    """Total GUST power, anchored to Table 2's measured totals.

    (Table 5's per-partition figures sum to within ~2 W of these but not
    exactly — the paper's tables are mutually inconsistent at that level —
    so the totals used for energy accounting come straight from Table 2.)
    """
    return _loglog_interpolate(_TOTAL_POWER_ANCHORS, length)


def systolic1d_resources(length: int = 256) -> ResourceBreakdown:
    """1D systolic array resources (Table 2 anchors at length 256)."""
    _require_positive(length)
    scale = length / 256
    return ResourceBreakdown(
        power_w=_1D_256_POWER["total"] * scale,
        lut=round(_1D_256_UNITS["lut"] * scale),
        register=round(_1D_256_UNITS["register"] * scale),
        dsp=round(_1D_256_UNITS["dsp"] * scale),
        carry8=0,
        io_pins=round(_1D_256_UNITS["io_pins"] * scale),
        input_buffers=round(_1D_256_UNITS["input_buffers"] * scale),
    )


def max_bandwidth_gbps(design: str, length: int, frequency_hz: float) -> float:
    """Peak streaming bandwidth of a design (Table 2's "Maximum BW" row).

    GUST needs ``timestep_bits(l)`` fresh bits per cycle.  The 1D anchor is
    150 GB/s at length 256 / 96 MHz, i.e. 48 bits + a fixed 212-bit sideband
    per lane-cycle (value + 16-bit position tag), scaled linearly.
    """
    if design == "GUST":
        return timestep_bits(length) * frequency_hz / 8 / 1e9
    if design == "1D":
        return (48 * length + 212) * frequency_hz / 8 / 1e9
    raise HardwareConfigError(f"unknown design {design!r}")


def _require_positive(length: int) -> None:
    if length <= 0:
        raise HardwareConfigError(f"length must be positive, got {length}")
