"""Bandwidth requirement and utilization (Section 3.3 and Figure 9).

A length-``l`` GUST at frequency ``f`` consumes one schedule timestep per
cycle: ``l`` 32-bit matrix values, ``l`` 32-bit vector values, ``l``
log2(l)-bit row indices, and one dump bit — the paper's
``(64 l + log(l) + 1) f`` bits/s requirement (224 GB/s for l = 256 at
96 MHz).

*Average* bandwidth over a run counts only the words actually streamed
(occupied schedule slots); Figure 9 plots that average for GUST-256,
GUST-87, and 1D-256, showing GUST's densified stream keeps the memory
system busy while 1D's dense-with-zeros stream wastes it.
"""

from __future__ import annotations

from repro.core.schedule import EMPTY, Schedule
from repro.errors import HardwareConfigError
from repro.hw.memory import row_index_bits, timestep_bits
from repro.sparse.coo import CooMatrix
from repro.sparse.stats import window_count


def required_bandwidth_gbps(length: int, frequency_hz: float) -> float:
    """Minimum sustained bandwidth for stall-free streaming (GB/s)."""
    if frequency_hz <= 0:
        raise HardwareConfigError("frequency must be positive")
    return timestep_bits(length) * frequency_hz / 8.0 / 1e9


def average_bandwidth_gbps(schedule: Schedule, frequency_hz: float) -> float:
    """Average bandwidth actually consumed by a scheduled SpMV (GB/s).

    Occupied slots stream a matrix value, a vector value, and a row index;
    every cycle streams the dump bit.
    """
    if frequency_hz <= 0:
        raise HardwareConfigError("frequency must be positive")
    cycles = schedule.execution_cycles
    if cycles == 0:
        return 0.0
    bits_per_element = 64 + row_index_bits(schedule.length)
    occupied = int((schedule.row_sch != EMPTY).sum())
    total_bits = occupied * bits_per_element + schedule.total_colors
    seconds = cycles / frequency_hz
    return total_bits / 8.0 / 1e9 / seconds


def average_bandwidth_1d_gbps(
    matrix: CooMatrix, length: int, frequency_hz: float
) -> float:
    """Useful average bandwidth of a 1D systolic array run (GB/s).

    1D streams the dense matrix, but only nonzero words are useful traffic;
    over its m*n/l-cycle run the useful average collapses with sparsity.
    """
    if frequency_hz <= 0:
        raise HardwareConfigError("frequency must be positive")
    m, n = matrix.shape
    cycles = window_count(m, length) * n + length + 1
    if cycles == 0 or matrix.nnz == 0:
        return 0.0
    useful_bits = matrix.nnz * 48  # value + 16-bit position tag
    seconds = cycles / frequency_hz
    return useful_bits / 8.0 / 1e9 / seconds
