"""Energy, power, resource, and bandwidth models (paper Section 4).

The paper computes energy analytically from published per-operation costs
(Dally's pJ tables), wire distances, and dynamic power measured at FPGA
synthesis.  This subpackage encodes those exact constants
(:mod:`repro.energy.params`), the per-design energy accounting
(:mod:`repro.energy.model`), the FPGA resource scaling laws of Tables 2 & 5
(:mod:`repro.energy.resources`), and the bandwidth requirements of
Figure 9 (:mod:`repro.energy.bandwidth`).
"""

from repro.energy.bandwidth import (
    average_bandwidth_gbps,
    required_bandwidth_gbps,
)
from repro.energy.model import DesignEnergySpec, EnergyModel
from repro.energy.params import EnergyParams, PAPER_PARAMS
from repro.energy.resources import (
    ResourceBreakdown,
    gust_dynamic_power_w,
    gust_resources,
    systolic1d_resources,
)

__all__ = [
    "DesignEnergySpec",
    "EnergyModel",
    "EnergyParams",
    "PAPER_PARAMS",
    "ResourceBreakdown",
    "average_bandwidth_gbps",
    "gust_dynamic_power_w",
    "gust_resources",
    "required_bandwidth_gbps",
    "systolic1d_resources",
]
