"""Per-design energy accounting (paper Section 4).

Energy for one SpMV is the sum of four components:

* **dynamic** — measured dynamic power integrated over the run;
* **memory** — off-/on-chip reads and writes of every streamed word;
* **arithmetic** — 10 pJ per floating-point multiply or accumulate;
* **movement** — wire energy: every word crossing the off-chip interface
  travels 5 mm at 160 pJ/mm; on-chip words travel the design's average hop
  (1 mm in 1D's neighbour-to-neighbour strip, ~129 mm across a length-256
  GUST crossbar) at 0.95 pJ/mm.

Only nonzero traffic is counted, matching the paper ("energy consumption as
a result of dynamic power, NZ data movements, reads, writes, and arithmetic
operations").  The vector transfer that precedes GUST's SpMV is included,
as the paper does ("we add the power consumption of GUST times the duration
it takes to forward the values").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.params import (
    EnergyParams,
    PAPER_PARAMS,
    PREPROCESS_CPU_POWER_W,
)
from repro.errors import HardwareConfigError
from repro.hw.memory import row_index_bits
from repro.sparse.coo import CooMatrix
from repro.types import EnergyReport


@dataclass(frozen=True)
class DesignEnergySpec:
    """What one design streams and moves per scheduled nonzero.

    Attributes:
        dynamic_power_w: synthesis-measured dynamic power.
        frequency_hz: clock rate (converts cycles to seconds).
        words_per_nnz: 32-bit words fetched off-chip per nonzero (value +
            whatever indices the design's format carries).
        onchip_distance_mm: average on-chip hop length for this design.
        onchip_moves_per_nnz: how many on-chip word-hops each nonzero takes
            (operand delivery plus result routing).
    """

    dynamic_power_w: float
    frequency_hz: float
    words_per_nnz: float
    onchip_distance_mm: float
    onchip_moves_per_nnz: float


def gust_spec(
    length: int,
    dynamic_power_w: float,
    frequency_hz: float,
    params: EnergyParams = PAPER_PARAMS,
) -> DesignEnergySpec:
    """GUST streams value + Col_sch word + Row_sch subword per nonzero and
    routes operands and partial products across the crossbar."""
    words = 2.0 + row_index_bits(length) / 32.0
    return DesignEnergySpec(
        dynamic_power_w=dynamic_power_w,
        frequency_hz=frequency_hz,
        words_per_nnz=words,
        onchip_distance_mm=params.gust_onchip_distance_mm(length),
        # matrix word and vector word to the multiplier, product to the
        # crossbar, routed product to the adder.
        onchip_moves_per_nnz=4.0,
    )


def systolic1d_spec(
    dynamic_power_w: float,
    frequency_hz: float,
    params: EnergyParams = PAPER_PARAMS,
) -> DesignEnergySpec:
    """1D streams value + position per nonzero; hops are neighbour-length."""
    return DesignEnergySpec(
        dynamic_power_w=dynamic_power_w,
        frequency_hz=frequency_hz,
        words_per_nnz=2.0,
        onchip_distance_mm=params.onchip_distance_1d_mm,
        onchip_moves_per_nnz=2.0,
    )


def serpens_spec(
    dynamic_power_w: float,
    frequency_hz: float,
    params: EnergyParams = PAPER_PARAMS,
) -> DesignEnergySpec:
    """Serpens streams (value, column) pairs to channel-local PEs."""
    return DesignEnergySpec(
        dynamic_power_w=dynamic_power_w,
        frequency_hz=frequency_hz,
        words_per_nnz=2.0,
        onchip_distance_mm=params.onchip_distance_1d_mm,
        onchip_moves_per_nnz=2.0,
    )


class EnergyModel:
    """Prices one SpMV run for any design described by a spec."""

    def __init__(self, params: EnergyParams = PAPER_PARAMS):
        self.params = params

    def spmv_energy(
        self, spec: DesignEnergySpec, matrix: CooMatrix, cycles: int
    ) -> EnergyReport:
        """Energy of one SpMV taking ``cycles`` on the given design."""
        if cycles < 0:
            raise HardwareConfigError(f"cycles must be non-negative, got {cycles}")
        p = self.params
        m, n = matrix.shape
        nnz = matrix.nnz
        seconds = cycles / spec.frequency_hz

        dynamic_j = spec.dynamic_power_w * seconds

        # Words crossing the off-chip boundary: the input vector once, the
        # nonzero stream, and the output vector.
        words_in = n + spec.words_per_nnz * nnz
        words_out = float(m)
        memory_pj = (
            words_in * (p.offchip_read_pj + p.onchip_write_pj)
            + words_out * (p.offchip_write_pj + p.onchip_read_pj)
            # operand fetches from on-chip buffers into the datapath
            + 2.0 * nnz * p.onchip_read_pj
        )

        arithmetic_pj = 2.0 * nnz * p.flop_pj

        movement_pj = (
            (words_in + words_out)
            * p.offchip_distance_mm
            * p.offchip_move_pj_per_mm
            + spec.onchip_moves_per_nnz
            * nnz
            * spec.onchip_distance_mm
            * p.onchip_move_pj_per_mm
        )

        return EnergyReport(
            dynamic_j=dynamic_j,
            memory_j=memory_pj * 1e-12,
            arithmetic_j=arithmetic_pj * 1e-12,
            movement_j=movement_pj * 1e-12,
        )

    @staticmethod
    def preprocessing_energy_j(seconds: float) -> float:
        """CPU preprocessing energy: 45 W i7 times wall-clock (Table 4)."""
        if seconds < 0:
            raise HardwareConfigError("preprocessing time must be non-negative")
        return PREPROCESS_CPU_POWER_W * seconds
