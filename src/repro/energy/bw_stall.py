"""Bandwidth-constrained execution: what happens below the 224 GB/s line.

Section 3.3 derives GUST's stall-free streaming requirement,
``(64 l + log(l) + 1) f`` bits/s — 224 GB/s for length 256 at 96 MHz, which
the paper provisions from the U280's 460 GB/s HBM2.  A deployment with
less bandwidth still works, it just stalls: the multipliers can only
consume timesteps as fast as memory delivers them.

This model computes the effective cycle count under a provisioned
bandwidth: compute time and stream time race, and the slower one wins.
The knee sits exactly at the requirement — the property tests pin — and
below it execution time scales inversely with bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.bandwidth import required_bandwidth_gbps
from repro.errors import HardwareConfigError
from repro.hw.memory import timestep_bits


@dataclass(frozen=True)
class BandwidthStallReport:
    """Execution under a provisioned bandwidth."""

    compute_cycles: int
    effective_cycles: int
    required_gbps: float
    provisioned_gbps: float

    @property
    def stall_cycles(self) -> int:
        return self.effective_cycles - self.compute_cycles

    @property
    def bandwidth_bound(self) -> bool:
        return self.effective_cycles > self.compute_cycles

    @property
    def slowdown(self) -> float:
        if self.compute_cycles == 0:
            return 1.0
        return self.effective_cycles / self.compute_cycles


def bandwidth_limited_cycles(
    compute_cycles: int,
    length: int,
    frequency_hz: float,
    provisioned_gbps: float,
) -> BandwidthStallReport:
    """Effective cycles when streaming through ``provisioned_gbps``.

    Each timestep needs :func:`~repro.hw.memory.timestep_bits` bits; at
    bandwidth B the memory system delivers a timestep every
    ``timestep_bits * f / (8e9 * B)`` cycles.  Above the requirement that
    interval is < 1 cycle and compute wins; below it the stream paces
    execution.
    """
    if compute_cycles < 0:
        raise HardwareConfigError("compute_cycles must be non-negative")
    if provisioned_gbps <= 0:
        raise HardwareConfigError("provisioned bandwidth must be positive")
    if frequency_hz <= 0:
        raise HardwareConfigError("frequency must be positive")
    required = required_bandwidth_gbps(length, frequency_hz)
    if compute_cycles == 0:
        return BandwidthStallReport(
            compute_cycles=0,
            effective_cycles=0,
            required_gbps=required,
            provisioned_gbps=provisioned_gbps,
        )
    cycles_per_timestep = max(1.0, required / provisioned_gbps)
    effective = int(round(compute_cycles * cycles_per_timestep))
    return BandwidthStallReport(
        compute_cycles=compute_cycles,
        effective_cycles=max(effective, compute_cycles),
        required_gbps=required,
        provisioned_gbps=provisioned_gbps,
    )


def bandwidth_knee_sweep(
    compute_cycles: int,
    length: int,
    frequency_hz: float,
    bandwidths_gbps: tuple[float, ...],
) -> list[BandwidthStallReport]:
    """Sweep provisioned bandwidths (the Figure-9-adjacent design question)."""
    return [
        bandwidth_limited_cycles(compute_cycles, length, frequency_hz, bw)
        for bw in bandwidths_gbps
    ]
