"""Energy constants — the paper's Section 4 numbers, verbatim.

All per-event energies are for one 32-bit word, in picojoules, sourced by
the paper from Dally's cost-of-computation tables [5, 6]:

====================================  =======
event                                 pJ/32b
====================================  =======
off-chip memory read                  64
on-chip memory read                   11.84
off-chip memory write                 64
on-chip memory write                  16
floating-point multiply or accumulate 10
moving data 1 mm off-chip             160
moving data 1 mm on-chip              0.95
====================================  =======

Distances: 5 mm between off-chip memory and on-chip elements, 1 mm between
on-chip elements in 1D, and 129 mm *average* between on-chip elements in a
length-256 GUST (the crossbar's doing; it scales linearly with length).

Dynamic power from FPGA synthesis: 35.3 W (length-256 1D), 56.9 W
(length-256 GUST), 16.8 W (length-87 GUST); Serpens measures 46.2 W at
223 MHz.  GUST's clock is 96 MHz, bounded by the crossbar's longest route.
Preprocessing runs on a 45 W Intel i7-10750H.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy and distance constants used by the energy model."""

    offchip_read_pj: float = 64.0
    onchip_read_pj: float = 11.84
    offchip_write_pj: float = 64.0
    onchip_write_pj: float = 16.0
    flop_pj: float = 10.0
    offchip_move_pj_per_mm: float = 160.0
    onchip_move_pj_per_mm: float = 0.95
    offchip_distance_mm: float = 5.0
    onchip_distance_1d_mm: float = 1.0
    onchip_distance_gust256_mm: float = 129.0

    def gust_onchip_distance_mm(self, length: int) -> float:
        """Average on-chip hop for a length-``l`` GUST.

        The 129 mm figure is for length 256; crossbar route length grows
        linearly with the number of lanes.
        """
        return self.onchip_distance_gust256_mm * length / 256.0


#: The paper's exact constants.
PAPER_PARAMS = EnergyParams()

#: Dynamic power (W) measured at synthesis (Tables 2, 4).
DYNAMIC_POWER_W = {
    ("1D", 256): 35.3,
    ("GUST", 8): 3.4,
    ("GUST", 87): 16.8,
    ("GUST", 256): 56.9,
    ("Serpens", 0): 46.2,
}

#: Clock frequencies (Hz).
GUST_FREQUENCY_HZ = 96e6
SERPENS_FREQUENCY_HZ = 223e6

#: Preprocessing platform (Intel i7-10750H) power draw in watts.
PREPROCESS_CPU_POWER_W = 45.0

#: Alveo U280 HBM2 peak bandwidth (Section 4).
U280_PEAK_BANDWIDTH_GBPS = 460.0

#: Alveo U280 on-chip memory (Section 4), bytes.
U280_ONCHIP_BYTES = 41 * 1024 * 1024
