"""Deterministic fault injection: seeded chaos for the serving stack.

Production data services treat degraded caches, sick disks, and crashed
workers as normal operating conditions; this module makes those
conditions *reproducible* so tests can assert the failure handling
instead of hoping for it.  A :class:`FaultPlan` is a seeded decision
source over a fixed set of named **fault sites** — points in the library
instrumented with a cheap probe:

========================  =====================================================
site                      effect when the probe fires
========================  =====================================================
``store-read``            ``DiskScheduleStore.load`` raises ``OSError``
``store-write``           ``DiskScheduleStore.store`` raises ``OSError``
``store-corrupt``         a just-written artifact has bytes flipped on disk
``kernel-error``          batch execution raises ``InjectedFaultError``
``kernel-slow``           batch execution sleeps ``SLOW_KERNEL_SLEEP_S`` first
``worker-crash``          a server worker thread dies holding its batch
``pool-kill``             one process-pool scheduling worker calls ``os._exit``
========================  =====================================================

``store-io`` is an alias expanding to ``store-read`` + ``store-write``.

The seeded-replay contract
--------------------------

Each site owns an independent ``random.Random`` seeded from
``(seed, site)`` and a probe counter.  Whether the *k*-th probe of a
site fires is a pure function of ``(seed, site, k)`` — independent of
thread interleaving, of other sites, and of wall-clock time — so a chaos
run is replayable: the same seed produces the same per-site firing
sequence, and :meth:`FaultPlan.decisions` lets a test precompute it.
(The *number* of probes a concurrent workload performs may vary run to
run — batch coalescing is timing-dependent — but every probe it does
perform decides identically.)

Spec grammar
------------

``GUST_FAULTS`` (or :meth:`FaultPlan.from_spec`) takes a comma-separated
list of ``site:value`` entries.  A value in ``[0, 1)`` is a per-probe
firing probability; an integral value >= 1 is an exact count — the first
N probes of the site fire, the rest never do (``worker-crash:2`` means
exactly two injected worker deaths).  The seed comes from
``GUST_FAULTS_SEED`` (default 0).

Activation
----------

Components take an explicit ``faults=`` keyword (a plan, or ``None`` for
ambient), tests use the :func:`overridden` context manager, and the
environment variables activate a process-wide ambient plan — which is
how CI runs the whole tier-1 suite under ``GUST_FAULTS=store-io:0.2`` to
prove the compute-fallback paths stay green.

This module is stdlib-only and imports nothing from ``repro`` except
:mod:`repro.errors`, so any layer (core, serve, CLI) can probe it
without import cycles.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass

from repro.errors import FaultSpecError

#: Seconds the ``kernel-slow`` site stalls one batch execution — long
#: enough to trip a tight per-request deadline, short enough that an
#: aggressive chaos run still finishes in seconds.
SLOW_KERNEL_SLEEP_S = 0.02

#: Every injectable site, in documentation order.
SITES = (
    "store-read",
    "store-write",
    "store-corrupt",
    "kernel-error",
    "kernel-slow",
    "worker-crash",
    "pool-kill",
)

#: Spec-level aliases expanding to several concrete sites.
ALIASES = {"store-io": ("store-read", "store-write")}

#: Environment variables activating an ambient plan.
ENV_SPEC = "GUST_FAULTS"
ENV_SEED = "GUST_FAULTS_SEED"


@dataclass(frozen=True)
class FaultEvent:
    """One *fired* fault: the site and its probe index (0-based)."""

    site: str
    probe: int


class FaultPlan:
    """A seeded, thread-safe decision source over the named fault sites.

    Args:
        seed: base seed; each site derives its own RNG from
            ``(seed, site)``.
        rates: site -> per-probe firing probability in ``[0, 1)``.
        counts: site -> exact number of probes that fire (the first N).

    A site may appear in ``rates`` or ``counts`` but not both; sites in
    neither never fire.  Probes of unknown site names raise
    :class:`~repro.errors.FaultSpecError` so a typo'd site cannot
    silently never inject.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: dict[str, float] | None = None,
        counts: dict[str, int] | None = None,
    ):
        rates = dict(rates or {})
        counts = dict(counts or {})
        for site, value in rates.items():
            self._require_site(site)
            if not 0.0 <= value < 1.0:
                raise FaultSpecError(
                    f"rate for site {site!r} must be in [0, 1), got {value}"
                )
        for site, value in counts.items():
            self._require_site(site)
            if value < 1 or value != int(value):
                raise FaultSpecError(
                    f"count for site {site!r} must be a positive integer, "
                    f"got {value}"
                )
        overlap = set(rates) & set(counts)
        if overlap:
            raise FaultSpecError(
                f"sites {sorted(overlap)} given both a rate and a count"
            )
        self.seed = seed
        self.rates = rates
        self.counts = {site: int(n) for site, n in counts.items()}
        self._lock = threading.Lock()
        self._rngs = {
            site: random.Random(f"{seed}:{site}") for site in rates
        }
        self._probes: dict[str, int] = {}
        self._fired: list[FaultEvent] = []

    @staticmethod
    def _require_site(site: str) -> None:
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; choose from {SITES} "
                f"(aliases: {tuple(ALIASES)})"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``site:value,site:value`` spec (see module docstring)."""
        rates: dict[str, float] = {}
        counts: dict[str, int] = {}
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, sep, raw = entry.partition(":")
            site = site.strip()
            if not sep or not raw.strip():
                raise FaultSpecError(
                    f"malformed fault spec entry {entry!r}; expected "
                    f"'site:value'"
                )
            try:
                value = float(raw)
            except ValueError:
                raise FaultSpecError(
                    f"non-numeric value in fault spec entry {entry!r}"
                ) from None
            if value >= 1.0 and value != int(value):
                # Mirror the constructor's count validation: a typo'd
                # rate like '1.5' must error, not silently truncate into
                # a different plan than written.
                raise FaultSpecError(
                    f"value in fault spec entry {entry!r} must be a rate "
                    f"in [0, 1) or an integral count >= 1"
                )
            targets = ALIASES.get(site, (site,))
            for target in targets:
                cls._require_site(target)
                if value >= 1.0:
                    counts[target] = int(value)
                else:
                    rates[target] = value
        return cls(seed=seed, rates=rates, counts=counts)

    def spec(self) -> str:
        """A spec string reproducing this plan (sans seed)."""
        parts = [f"{site}:{rate}" for site, rate in sorted(self.rates.items())]
        parts += [f"{site}:{n}" for site, n in sorted(self.counts.items())]
        return ",".join(parts)

    # -- probing --------------------------------------------------------------

    def should_fire(self, site: str) -> bool:
        """Decide (and record) the next probe of ``site``.

        The decision for the k-th probe of a site is a pure function of
        ``(seed, site, k)`` — the seeded-replay contract.
        """
        self._require_site(site)
        with self._lock:
            probe = self._probes.get(site, 0)
            self._probes[site] = probe + 1
            if site in self.counts:
                fired = probe < self.counts[site]
            elif site in self.rates:
                fired = self._rngs[site].random() < self.rates[site]
            else:
                fired = False
            if fired:
                self._fired.append(FaultEvent(site, probe))
            return fired

    def raise_if(self, site: str, make_error) -> None:
        """Raise ``make_error()`` when the next probe of ``site`` fires."""
        if self.should_fire(site):
            raise make_error()

    def decisions(self, site: str, n: int) -> list[bool]:
        """The firing pattern of ``site``'s first ``n`` probes, computed
        without consuming this plan's own probe counters.

        What a replay test compares across two runs: a fresh plan with
        the same seed produces exactly this sequence.
        """
        self._require_site(site)
        if site in self.counts:
            return [k < self.counts[site] for k in range(n)]
        if site in self.rates:
            rng = random.Random(f"{self.seed}:{site}")
            rate = self.rates[site]
            return [rng.random() < rate for _ in range(n)]
        return [False] * n

    # -- introspection --------------------------------------------------------

    def history(self) -> tuple[FaultEvent, ...]:
        """Every fault fired so far, in firing order."""
        with self._lock:
            return tuple(self._fired)

    def probes(self) -> dict[str, int]:
        """Site -> number of probes consumed so far."""
        with self._lock:
            return dict(self._probes)

    def describe(self) -> str:
        """One-line human summary for logs and the chaos CLI."""
        fired = self.history()
        per_site: dict[str, int] = {}
        for event in fired:
            per_site[event.site] = per_site.get(event.site, 0) + 1
        sites = ", ".join(
            f"{site}:{count}" for site, count in sorted(per_site.items())
        ) or "none"
        return (
            f"fault plan seed={self.seed} spec='{self.spec()}': "
            f"{len(fired)} faults fired ({sites})"
        )


# -- ambient activation -------------------------------------------------------

_AMBIENT_LOCK = threading.Lock()
_INSTALLED: FaultPlan | None = None
#: (spec string, seed string) -> parsed plan, so repeated ambient probes
#: cost one dict hit instead of re-parsing the environment every time.
_ENV_CACHE: tuple[tuple[str, str], FaultPlan] | None = None


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or clear, with ``None``) the process-wide ambient plan.

    Returns the previously installed plan so callers can restore it;
    prefer the :func:`overridden` context manager, which does that for
    you.  An installed plan takes precedence over the environment.
    """
    global _INSTALLED
    with _AMBIENT_LOCK:
        previous = _INSTALLED
        _INSTALLED = plan
        return previous


class overridden:
    """``with faults.overridden(plan): ...`` — scoped ambient activation."""

    def __init__(self, plan: FaultPlan | None):
        self.plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan | None:
        self._previous = install(self.plan)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> None:
        install(self._previous)


def active_plan() -> FaultPlan | None:
    """The ambient plan: the installed one, else ``GUST_FAULTS``.

    The environment is re-read on every call (a monkeypatched test must
    see its change immediately) but the parsed plan is cached per
    ``(spec, seed)`` string pair, so steady-state probes cost one
    comparison — counters keep accumulating on the same plan object for
    as long as the environment is stable.

    Every steady-state path is lock-free: this probe sits on per-batch
    kernel and store paths in every server worker, so the common cases —
    no faults configured, a plan installed, a cached env plan — must not
    serialize the whole process on one lock.  Reads of the module globals
    are single atomic loads under CPython and ``install()``/the cache
    only ever swap whole objects, so the worst a racing reader sees is
    the previous plan for one probe.  ``_AMBIENT_LOCK`` is taken only to
    parse-and-cache a changed environment spec (once per change).
    """
    global _ENV_CACHE
    installed = _INSTALLED
    if installed is not None:
        return installed
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        return None
    seed_raw = os.environ.get(ENV_SEED, "0")
    key = (spec, seed_raw)
    cached = _ENV_CACHE
    if cached is not None and cached[0] == key:
        return cached[1]
    with _AMBIENT_LOCK:
        # Re-check under the lock: a racing thread may have parsed the
        # same environment first, and reusing its plan keeps one shared
        # probe-counter stream per (spec, seed) pair.
        if _INSTALLED is not None:
            return _INSTALLED
        if _ENV_CACHE is not None and _ENV_CACHE[0] == key:
            return _ENV_CACHE[1]
        try:
            seed = int(seed_raw)
        except ValueError:
            raise FaultSpecError(
                f"{ENV_SEED} must be an integer, got {seed_raw!r}"
            ) from None
        plan = FaultPlan.from_spec(spec, seed=seed)
        _ENV_CACHE = (key, plan)
        return plan


def resolve(plan: FaultPlan | None = None) -> FaultPlan | None:
    """An explicit plan if given, else the ambient one (or ``None``)."""
    return plan if plan is not None else active_plan()


def should_fire(site: str, plan: FaultPlan | None = None) -> bool:
    """Probe ``site`` against the explicit-or-ambient plan.

    The no-plan fast path is lock-free — one global read and one
    environment lookup — so production call sites stay effectively free
    even with every worker probing per batch.
    """
    plan = resolve(plan)
    return plan is not None and plan.should_fire(site)


def raise_if(site: str, make_error, plan: FaultPlan | None = None) -> None:
    """Raise ``make_error()`` when ``site`` fires on the active plan."""
    if should_fire(site, plan):
        raise make_error()
