"""Comparison metrics used throughout the evaluation."""

from __future__ import annotations

from repro.sparse.stats import geometric_mean
from repro.types import EnergyReport


def speedup(baseline_cycles: int, cycles: int) -> float:
    """How many times faster than the baseline (same clock assumed)."""
    if cycles <= 0:
        return float("inf") if baseline_cycles > 0 else 1.0
    return baseline_cycles / cycles


def wallclock_speedup(
    baseline_cycles: int,
    baseline_hz: float,
    cycles: int,
    hz: float,
) -> float:
    """Speedup across designs running at different clock rates."""
    t_base = baseline_cycles / baseline_hz
    t = cycles / hz
    if t <= 0.0:
        return float("inf") if t_base > 0 else 1.0
    return t_base / t


def energy_gain(baseline: EnergyReport, candidate: EnergyReport) -> float:
    """Energy-efficiency gain: baseline joules over candidate joules."""
    if candidate.total_j <= 0.0:
        return float("inf") if baseline.total_j > 0 else 1.0
    return baseline.total_j / candidate.total_j


def geomean(values) -> float:
    """Geometric mean (the paper's cross-matrix summary)."""
    return geometric_mean(values)
