"""The common result container every experiment returns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.tables import format_cell, render_table


@dataclass
class ExperimentResult:
    """One reproduced paper artifact (a table or figure).

    Attributes:
        experiment_id: the paper's label, e.g. "table4" or "fig7a".
        title: human-readable description.
        headers: column names.
        rows: table rows (mixed str/number cells).
        paper_claims: headline values the paper states, keyed by claim name.
        measured_claims: the same keys measured by this reproduction.
        notes: caveats (scale factors, substitutions, calibration).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    paper_claims: dict[str, object] = field(default_factory=dict)
    measured_claims: dict[str, object] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full report: table, paper-vs-measured claims, notes."""
        parts = [render_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")]
        if self.paper_claims:
            parts.append("")
            parts.append("paper vs measured:")
            for key, paper_value in self.paper_claims.items():
                measured = self.measured_claims.get(key, "—")
                parts.append(
                    f"  {key}: paper={format_cell(paper_value)} "
                    f"measured={format_cell(measured)}"
                )
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
