"""Helpers for sweeping designs over matrix suites."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.accelerators.base import Accelerator
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport, RunResult


def run_designs(
    designs: Sequence[Accelerator],
    matrices: Iterable[tuple[str, CooMatrix]],
    frequency_hz: float = 96e6,
) -> list[RunResult]:
    """Run every design on every (name, matrix) pair."""
    results: list[RunResult] = []
    for name, matrix in matrices:
        for design in designs:
            report = design.run(matrix)
            results.append(
                RunResult(
                    design=design.name,
                    matrix=name,
                    cycle_report=report,
                    frequency_hz=frequency_hz,
                )
            )
    return results


def by_design(results: Iterable[RunResult]) -> dict[str, list[RunResult]]:
    """Group run results by design name, preserving matrix order."""
    grouped: dict[str, list[RunResult]] = {}
    for result in results:
        grouped.setdefault(result.design, []).append(result)
    return grouped


def report_for(
    results: Iterable[RunResult], design: str, matrix: str
) -> CycleReport:
    """Find one (design, matrix) cell; raises KeyError when absent."""
    for result in results:
        if result.design == design and result.matrix == matrix:
            return result.cycle_report
    raise KeyError(f"no result for design={design!r} matrix={matrix!r}")
