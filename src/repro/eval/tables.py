"""Fixed-width table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def format_cell(value) -> str:
    """Human-friendly formatting: engineering suffixes for big numbers."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        if abs(value) >= 10_000_000:
            return f"{value / 1e6:.1f}M"
        if abs(value) >= 100_000:
            return f"{value / 1e3:.0f}K"
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 10_000_000:
            return f"{value / 1e6:.1f}M"
        if abs(value) >= 100_000:
            return f"{value / 1e3:.0f}K"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        if abs(value) >= 0.001:
            return f"{value:.4f}"
        return f"{value:.2e}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
