"""Terminal visualizations of schedules and sparsity structure.

Three views used by the examples and handy for debugging schedulers:

* :func:`schedule_occupancy` — the M_sch buffer as a timestep-by-lane
  density map; a good schedule is a nearly solid block (the paper's
  "dense input stream").
* :func:`degree_profile` — row/column-segment nonzero histograms, the
  quantities Eq. (1) takes maxima over.
* :func:`window_color_chart` — per-window color counts against the
  Eq. (1) lower bound, showing where the scheduler loses cycles.
"""

from __future__ import annotations

import numpy as np

from repro.core.load_balance import BalancedMatrix
from repro.core.schedule import EMPTY, Schedule
from repro.sparse.coo import CooMatrix
from repro.sparse.stats import require_positive_length

#: Shade ramp from empty to full.
_SHADES = " .:-=+*#%@"


def _shade(fraction: float) -> str:
    index = min(len(_SHADES) - 1, int(fraction * (len(_SHADES) - 1) + 0.5))
    return _SHADES[index]


def schedule_occupancy(
    schedule: Schedule, width: int = 64, height: int = 24
) -> str:
    """Render M_sch occupancy as an ASCII density map.

    Rows are (binned) timesteps, columns are (binned) multiplier lanes;
    darker cells mean fuller buffer slots.
    """
    occupied = (schedule.row_sch != EMPTY).astype(np.float64)
    steps, lanes = occupied.shape
    if steps == 0:
        return "(empty schedule)"
    height = min(height, steps)
    width = min(width, lanes)
    row_bins = np.array_split(np.arange(steps), height)
    lane_bins = np.array_split(np.arange(lanes), width)
    lines = []
    for row_bin in row_bins:
        cells = []
        for lane_bin in lane_bins:
            block = occupied[np.ix_(row_bin, lane_bin)]
            cells.append(_shade(float(block.mean())))
        lines.append("".join(cells))
    header = (
        f"schedule occupancy ({steps} timesteps x {lanes} lanes, "
        f"{schedule.occupancy:.1%} full)"
    )
    return "\n".join([header] + lines)


def degree_profile(
    matrix: CooMatrix, length: int, bins: int = 12, width: int = 48
) -> str:
    """Histogram of row and column-segment nonzero counts."""
    require_positive_length(length)
    row_counts = matrix.row_counts()
    seg_counts = np.bincount(matrix.cols % length, minlength=length)
    lines = [
        f"degree profile (length {length}): "
        f"max row {int(row_counts.max()) if row_counts.size else 0}, "
        f"max segment {int(seg_counts.max()) if seg_counts.size else 0}"
    ]
    for label, counts in (("rows", row_counts), ("segments", seg_counts)):
        if counts.size == 0 or counts.max() == 0:
            lines.append(f"  {label}: (no nonzeros)")
            continue
        histogram, edges = np.histogram(counts, bins=bins)
        peak = max(1, histogram.max())
        lines.append(f"  {label}:")
        for count, lo, hi in zip(histogram, edges, edges[1:]):
            bar = "#" * int(round(width * count / peak))
            lines.append(f"    [{lo:7.1f}, {hi:7.1f})  {count:6d}  {bar}")
    return "\n".join(lines)


def window_color_chart(
    schedule: Schedule, balanced: BalancedMatrix, width: int = 48
) -> str:
    """Per-window colors vs the Eq. (1) lower bound."""
    bounds = balanced.color_lower_bounds(schedule.length)
    colors = schedule.window_colors
    peak = max(max(colors, default=1), max(bounds, default=1), 1)
    lines = ["window colors (|] marks the Eq. 1 lower bound)"]
    for index, (used, bound) in enumerate(zip(colors, bounds)):
        bar_len = int(round(width * used / peak))
        bound_pos = int(round(width * bound / peak))
        bar = list("#" * bar_len + " " * (width - bar_len))
        if 0 <= bound_pos < len(bar):
            bar[bound_pos] = "]"
        overhead = f" (+{used - bound})" if used > bound else ""
        lines.append(
            f"  w{index:<3d} {''.join(bar)} {used}{overhead}"
        )
    return "\n".join(lines)
