"""ASCII rendering of figure-style data series.

The paper's figures are log-scale bar/line charts over matrices or density
sweeps; for a terminal reproduction we render aligned series tables plus a
compact log-scale bar for quick visual comparison.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BAR_WIDTH = 40


def log_bar(value: float, lo: float, hi: float, width: int = _BAR_WIDTH) -> str:
    """A log-scale bar: ``value`` rendered between ``lo`` and ``hi``."""
    if value <= 0 or hi <= lo or lo <= 0:
        return ""
    fraction = (math.log10(value) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo)
    )
    fraction = min(1.0, max(0.0, fraction))
    return "#" * max(1, round(fraction * width))


def render_series(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    unit: str = "",
) -> str:
    """Render named series over shared x labels, with log bars."""
    positive = [
        v for values in series.values() for v in values if v and v > 0
    ]
    lo = min(positive) if positive else 1.0
    hi = max(positive) if positive else 1.0
    label_width = max((len(label) for label in x_labels), default=0)
    name_width = max((len(name) for name in series), default=0)

    out: list[str] = []
    if title:
        out.append(title)
    for i, label in enumerate(x_labels):
        for name, values in series.items():
            value = values[i]
            bar = log_bar(value, lo, hi)
            out.append(
                f"{label:<{label_width}}  {name:<{name_width}}  "
                f"{value:>12.4g}{unit}  {bar}"
            )
        out.append("")
    return "\n".join(out)
