"""Table 1 — qualities of related work and GUST.

Hardware composition, execution-time expressions, and the empirically
measured geometric-mean hardware utilization per design, mirroring the
paper's summary table.
"""

from __future__ import annotations

from repro.eval.experiments import fig7_utilization
from repro.eval.result import ExperimentResult

_HARDWARE = {
    "FTPU": "grid of sqrt(u) x sqrt(u) MAC PEs (2D systolic)",
    "1D": "strip of l MAC PEs",
    "AT": "binary tree: l multipliers + (l-1) adders",
    "FAFNIR": "binary tree: l leaves + l/2 adders per level",
    "GUST-EC/LB": "l multipliers + l adders via crossbar",
}

_EXEC_TIME = {
    "FTPU": "~3 #NZ / l",
    "1D": "m*n/l + l + 1",
    "AT": "m*n/l + log(l) + 1",
    "FAFNIR": ">= max(leaf work, rows) + log(l)",
    "GUST-EC/LB": "sum of window colors + 2 (~3 #NZ / l empirical)",
}


def run(
    scale: float = fig7_utilization.DEFAULT_SCALE,
    length: int = fig7_utilization.DEFAULT_LENGTH,
) -> ExperimentResult:
    """Regenerate Table 1 from a Figure 7 measurement pass."""
    fig7 = fig7_utilization.run(scale=scale, length=length)
    gmean_row = fig7.rows[-1]
    names = [d.name for d in fig7_utilization.designs(length)]
    gmeans = dict(zip(names, gmean_row[2 : 2 + len(names)]))

    headers = ["design", "hardware", "execution time (cycles)", "gmean util%"]
    rows = [
        [design, _HARDWARE[design], _EXEC_TIME[design], gmeans[design]]
        for design in _HARDWARE
    ]
    paper = {
        f"gmean util% {name}": value
        for name, value in fig7_utilization.PAPER_GEOMEAN_UTIL.items()
    }
    measured = {f"gmean util% {name}": gmeans[name] for name in _HARDWARE}
    return ExperimentResult(
        experiment_id="table1",
        title="Qualities of related work and GUST",
        headers=headers,
        rows=rows,
        paper_claims=paper,
        measured_claims=measured,
        notes=list(fig7.notes),
    )
