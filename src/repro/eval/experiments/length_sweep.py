"""Extension sweep — utilization and resources as a function of length.

Eq. (11) predicts utilization falls as ``l`` grows (the fluctuation term
sqrt(2(1-p) ln(2l) / (N p)) rises) while Table 5 says the crossbar cost
rises super-linearly — together the quantitative case for the paper's
"parallel arrangement of short GUSTs" recommendation.  This sweep measures
both sides on one workload and checks the measured utilization against the
Eq. (11) prediction at every length.
"""

from __future__ import annotations

from repro.core.bounds import expected_utilization
from repro.core.pipeline import GustPipeline
from repro.energy.resources import crossbar_resources, gust_dynamic_power_w
from repro.eval.result import ExperimentResult
from repro.sparse.generators import uniform_random

DEFAULT_DIM = 2048
DEFAULT_DENSITY = 0.01
DEFAULT_LENGTHS = (32, 64, 128, 256, 512)


def run(
    dim: int = DEFAULT_DIM,
    density: float = DEFAULT_DENSITY,
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    seed: int = 17,
) -> ExperimentResult:
    """Sweep GUST length on a uniform matrix."""
    matrix = uniform_random(dim, dim, density, seed=seed)
    headers = [
        "length",
        "cycles",
        "utilization",
        "Eq.11 util",
        "xbar LUT",
        "power W",
    ]
    rows: list[list] = []
    predictions_track = True
    for length in lengths:
        pipeline = GustPipeline(length)
        report, _ = pipeline.preprocess_stats(matrix)
        predicted = expected_utilization(dim, density, length)
        # Eq. 11 is built on the Eq. 9 *upper* bound for E[C], so it
        # under-predicts utilization; measured values should sit modestly
        # above it (the union bound's slack) but not wildly off.
        if not 0.95 <= report.utilization / predicted <= 1.6:
            predictions_track = False
        rows.append(
            [
                length,
                report.cycles,
                report.utilization,
                predicted,
                crossbar_resources(length).lut,
                gust_dynamic_power_w(length),
            ]
        )

    utilizations = [row[2] for row in rows]
    return ExperimentResult(
        experiment_id="length_sweep",
        title="Utilization and crossbar cost vs GUST length",
        headers=headers,
        rows=rows,
        paper_claims={
            "utilization falls with length (Eq. 11)": True,
            "measured tracks Eq. 11": True,
        },
        measured_claims={
            "utilization falls with length (Eq. 11)": utilizations
            == sorted(utilizations, reverse=True),
            "measured tracks Eq. 11": predictions_track,
        },
        notes=[f"uniform {dim}x{dim} at density {density}"],
    )
