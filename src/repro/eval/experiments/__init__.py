"""One module per paper artifact.

=====================  ====================================================
module                 paper artifact
=====================  ====================================================
table1_qualities       Table 1 — design qualities & geomean utilization
fig7_utilization       Figure 7a/7b — utilization & cycles across designs
fig8_speedup           Figure 8a-d — speedup & energy gain over 1D
fig9_bandwidth         Figure 9 — average bandwidth utilization
table2_resources       Table 2 — per-design resource consumption
table3_datasets        Table 3 — the Serpens-comparison matrices
table4_serpens         Table 4 — GUST vs Serpens end to end
table5_partitions      Table 5 — per-partition resource consumption
naive_crossover        Section 3.3 — naive GUST falls behind 1D at ~0.008
bound_validation       Section 3.4 — statistical bound vs measurement
scalability            Section 5.5 — parallel GUSTs vs one long GUST
coloring_ablation      extension — greedy vs first-fit vs optimal coloring
backend_throughput     extension — replay throughput per execution backend
=====================  ====================================================

Every module exposes ``run(...) -> ExperimentResult`` with keyword-only
tuning knobs (scale, length, seed) defaulted to values that complete in
seconds on a laptop; EXPERIMENTS.md records the defaults used.
"""

from repro.eval.experiments import (  # noqa: F401
    backend_throughput,
    bandwidth_provisioning,
    bound_validation,
    coloring_ablation,
    fig7_utilization,
    fig8_speedup,
    fig9_bandwidth,
    length_sweep,
    naive_crossover,
    scalability,
    structure_sensitivity,
    table1_qualities,
    table2_resources,
    table3_datasets,
    table4_serpens,
    table5_partitions,
)

__all__ = [
    "backend_throughput",
    "bandwidth_provisioning",
    "bound_validation",
    "coloring_ablation",
    "fig7_utilization",
    "fig8_speedup",
    "fig9_bandwidth",
    "length_sweep",
    "naive_crossover",
    "scalability",
    "structure_sensitivity",
    "table1_qualities",
    "table2_resources",
    "table3_datasets",
    "table4_serpens",
    "table5_partitions",
]
