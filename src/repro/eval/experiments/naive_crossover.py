"""Section 3.3's in-text claim: naive GUST falls behind 1D past d ~ 0.008.

"Empirical results demonstrate that for 16384 x 16384 matrices with uniform
distribution, GUST using naive scheduling has a performance worse than 1D
for densities exceeding 0.008."  We sweep density on uniform matrices and
locate the crossover.
"""

from __future__ import annotations

from repro.accelerators import GustAccelerator, Systolic1D
from repro.eval.result import ExperimentResult
from repro.sparse.generators import uniform_random

DEFAULT_DIM = 4096
DEFAULT_DENSITIES = (0.001, 0.002, 0.004, 0.006, 0.008, 0.012, 0.016)


def run(
    dim: int = DEFAULT_DIM,
    densities: tuple[float, ...] = DEFAULT_DENSITIES,
    length: int = 256,
    seed: int = 3,
) -> ExperimentResult:
    """Sweep uniform density; find where naive GUST crosses below 1D."""
    naive = GustAccelerator(length, algorithm="naive", load_balance=False)
    baseline = Systolic1D(length)

    headers = ["density", "naive cycles", "1D cycles", "naive/1D", "naive wins"]
    rows: list[list] = []
    crossover = None
    previous_ratio = None
    for density in densities:
        matrix = uniform_random(dim, dim, density, seed=seed)
        naive_cycles = naive.run(matrix).cycles
        base_cycles = baseline.run(matrix).cycles
        ratio = naive_cycles / base_cycles
        rows.append(
            [density, naive_cycles, base_cycles, ratio, ratio < 1.0]
        )
        if previous_ratio is not None and previous_ratio < 1.0 <= ratio:
            # Linear interpolation of the crossing density in log space.
            crossover = density
        previous_ratio = ratio

    return ExperimentResult(
        experiment_id="naive_crossover",
        title="Naive-GUST vs 1D crossover on uniform matrices",
        headers=headers,
        rows=rows,
        paper_claims={"crossover density": 0.008},
        measured_claims={
            "crossover density": crossover if crossover else "not crossed"
        },
        notes=[
            f"dim {dim} (paper: 16384); both cycle counts scale with dim^2 so "
            "the crossover density is dimension-insensitive",
        ],
    )
