"""Section 3.4 — the statistical bound against measurement.

Eq. (1) says the minimum buffer length per window, C, is the max bipartite
degree; Eq. (9) upper-bounds E[C] for uniform matrices via a Gaussian
max-of-2l argument; Eqs. (10)-(11) convert the bound to cycles and
utilization.  We generate uniform matrices, measure the true per-window C
(max degree), and compare — also reporting how far the greedy Listing 1
scheduler lands above that optimum.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import (
    clt_applicable,
    expected_colors,
    expected_execution_cycles,
    expected_utilization,
)
from repro.core.load_balance import identity_balance
from repro.core.scheduler import GustScheduler
from repro.eval.result import ExperimentResult
from repro.sparse.generators import uniform_random
from repro.sparse.stats import window_color_lower_bound

DEFAULT_DIM = 2048
DEFAULT_DENSITIES = (0.005, 0.01, 0.02, 0.05)


def run(
    dim: int = DEFAULT_DIM,
    densities: tuple[float, ...] = DEFAULT_DENSITIES,
    length: int = 256,
    seed: int = 11,
) -> ExperimentResult:
    """Measure Eq. (1) C / cycles / utilization vs the Eqs. (9)-(11) bound."""
    scheduler = GustScheduler(length, algorithm="matching")
    headers = [
        "density",
        "CLT ok",
        "mean C (Eq.1)",
        "Eq.9 bound",
        "optimal cycles",
        "Eq.10 cycles",
        "optimal util",
        "Eq.11 util",
        "greedy overhead",
        "C within bound",
    ]
    rows: list[list] = []
    bound_holds = True
    for density in densities:
        matrix = uniform_random(dim, dim, density, seed=seed)
        optimum = window_color_lower_bound(matrix, length)
        mean_c = float(np.mean(optimum))
        optimal_cycles = int(sum(optimum)) + 2
        optimal_util = matrix.nnz / (length * optimal_cycles)
        greedy = scheduler.color_counts(identity_balance(matrix, length))
        greedy_overhead = sum(greedy) / max(1, sum(optimum))

        bound_c = expected_colors(dim, density, length)
        bound_cycles = expected_execution_cycles(dim, density, length)
        bound_util = expected_utilization(dim, density, length)
        holds = mean_c <= bound_c * 1.02  # 2% sampling slack
        bound_holds = bound_holds and holds
        rows.append(
            [
                density,
                clt_applicable(dim, density),
                mean_c,
                bound_c,
                optimal_cycles,
                bound_cycles,
                optimal_util,
                bound_util,
                greedy_overhead,
                holds,
            ]
        )

    return ExperimentResult(
        experiment_id="bound_validation",
        title="Statistical bound (Eqs. 9-11) vs measured max degree",
        headers=headers,
        rows=rows,
        paper_claims={"E[C] within Eq.9 bound": True},
        measured_claims={"E[C] within Eq.9 bound": bound_holds},
        notes=[
            "Eq. 9 bounds the optimum C of Eq. 1 (max bipartite degree); the",
            "greedy-overhead column shows Listing 1's distance above that optimum",
            f"uniform matrices, dim {dim}, length {length}",
        ],
    )
