"""Table 5 — per-partition resource consumption of GUST.

Arithmetic and I/O partitions scale linearly with length; the crossbar's
LUTs grow super-linearly and its power superlinearly — the scalability
bottleneck Section 5.5 addresses with parallel arrangements.
"""

from __future__ import annotations

from repro.energy.resources import (
    arithmetic_resources,
    crossbar_resources,
    io_resources,
)
from repro.eval.result import ExperimentResult

PAPER_CROSSBAR_LUT = {8: 772, 87: 17_300, 256: 756_000}
PAPER_CROSSBAR_POWER = {8: 1.0, 87: 3.6, 256: 16.4}


def run(lengths: tuple[int, ...] = (8, 87, 256)) -> ExperimentResult:
    """Regenerate Table 5 for the given lengths."""
    headers = [
        "length",
        "arith W",
        "arith LUT",
        "arith DSP",
        "xbar W",
        "xbar LUT",
        "xbar Reg",
        "IO W",
        "IO pins",
        "IO buffers",
    ]
    rows: list[list] = []
    for length in lengths:
        arith = arithmetic_resources(length)
        xbar = crossbar_resources(length)
        io = io_resources(length)
        rows.append(
            [
                length,
                arith.power_w,
                arith.lut,
                arith.dsp,
                xbar.power_w,
                xbar.lut,
                xbar.register,
                io.power_w,
                io.io_pins,
                io.input_buffers,
            ]
        )

    quadratic_check = (
        crossbar_resources(256).lut / max(1, crossbar_resources(128).lut)
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Per-partition resource consumption of GUST",
        headers=headers,
        rows=rows,
        paper_claims={
            "crossbar LUT @256": PAPER_CROSSBAR_LUT[256],
            "crossbar W @256": PAPER_CROSSBAR_POWER[256],
            "crossbar growth 128->256 at least quadratic": True,
        },
        measured_claims={
            "crossbar LUT @256": crossbar_resources(256).lut,
            "crossbar W @256": crossbar_resources(256).power_w,
            "crossbar growth 128->256 at least quadratic": quadratic_check >= 4.0,
            "crossbar growth factor 128->256": round(quadratic_check, 2),
        },
        notes=["anchor lengths reproduce the paper's synthesis numbers exactly"],
    )
