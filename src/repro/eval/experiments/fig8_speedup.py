"""Figure 8 — speedup and energy-efficiency gain of GUST over 1D.

Four panels: (a) real-world matrices; (b) uniform, (c) power-law, and
(d) k-regular synthetic matrices over a density sweep.  Configurations:
length-256 GUST with Naive, EC, and EC/LB, plus length-87 GUST with EC/LB,
all against a length-256 1D systolic array at the same 96 MHz clock.

The paper's headline averages: 411x speedup and 137x energy gain for
length-256 EC/LB, 108x and 148x for length-87 EC/LB, an 88x gap between
EC/LB and Naive, and 1.8x between EC/LB and EC.  Energy follows the
Section 4 analytic model with each design's synthesis power.
"""

from __future__ import annotations

from repro.accelerators import GustAccelerator, Systolic1D
from repro.energy.model import EnergyModel, gust_spec, systolic1d_spec
from repro.energy.params import GUST_FREQUENCY_HZ
from repro.energy.resources import gust_dynamic_power_w
from repro.eval.metrics import geomean
from repro.eval.result import ExperimentResult
from repro.sparse.coo import CooMatrix
from repro.sparse.datasets import figure7_suite, load_dataset
from repro.sparse.generators import k_regular, power_law, uniform_random

DEFAULT_SCALE = 16.0
DEFAULT_DIM = 4096
DEFAULT_DENSITIES = (3e-4, 1e-3, 3e-3, 1e-2, 3e-2)

PAPER_CLAIMS = {
    "avg speedup GUST-256 EC/LB": 411.0,
    "avg speedup GUST-87 EC/LB": 108.0,
    "avg energy gain GUST-256 EC/LB": 137.0,
    "avg energy gain GUST-87 EC/LB": 148.0,
    "avg speedup EC/LB over Naive": 88.0,
    "avg speedup EC/LB over EC": 1.8,
}


def _configurations():
    return {
        "Naive-256": GustAccelerator(256, algorithm="naive", load_balance=False),
        "EC-256": GustAccelerator(256, algorithm="matching", load_balance=False),
        "EC/LB-256": GustAccelerator(256, algorithm="matching", load_balance=True),
        "EC/LB-87": GustAccelerator(87, algorithm="matching", load_balance=True),
    }


def _panel(
    matrices: list[tuple[str, CooMatrix]],
) -> tuple[
    list[list],
    dict[str, list[float]],
    dict[str, list[float]],
    dict[str, list[float]],
]:
    """Measure one panel; returns (rows, speedups, energy gains, utils)."""
    baseline = Systolic1D(256)
    configs = _configurations()
    energy_model = EnergyModel()
    baseline_spec = systolic1d_spec(35.3, GUST_FREQUENCY_HZ)
    specs = {
        name: gust_spec(
            design.length,
            gust_dynamic_power_w(design.length),
            GUST_FREQUENCY_HZ,
        )
        for name, design in configs.items()
    }

    rows: list[list] = []
    speedups: dict[str, list[float]] = {name: [] for name in configs}
    gains: dict[str, list[float]] = {name: [] for name in configs}
    utils: dict[str, list[float]] = {name: [] for name in configs}
    for label, matrix in matrices:
        base_report = baseline.run(matrix)
        base_energy = energy_model.spmv_energy(
            baseline_spec, matrix, base_report.cycles
        )
        row: list = [label, matrix.density]
        for name, design in configs.items():
            report = design.run(matrix)
            speed = base_report.cycles / max(1, report.cycles)
            energy = energy_model.spmv_energy(specs[name], matrix, report.cycles)
            gain = base_energy.total_j / max(1e-30, energy.total_j)
            speedups[name].append(speed)
            gains[name].append(gain)
            utils[name].append(report.utilization)
            row += [speed, gain]
        rows.append(row)
    return rows, speedups, gains, utils


class _PaperScaleMatrix:
    """Shape/nnz shim so the energy model can price paper-sized runs."""

    def __init__(self, dim: int, nnz: int):
        self.shape = (dim, dim)
        self.nnz = nnz
        self.density = nnz / (dim * dim)


def _project_to_paper_dims(
    utils: dict[str, list[float]],
) -> tuple[dict[str, list[float]], dict[str, list[float]]]:
    """Project real-panel results to the paper's full matrix dimensions.

    Utilization is density-shape driven and transfers across the dimension
    scaling (Section 5.4), so at paper size a config of length L finishes in
    ``nnz / (L * util)`` cycles while 1D-256 takes ``ceil(m/256) * n``; the
    energy model then prices both at full traffic volume.
    """
    configs = _configurations()
    energy_model = EnergyModel()
    baseline_spec = systolic1d_spec(35.3, GUST_FREQUENCY_HZ)
    speedups: dict[str, list[float]] = {name: [] for name in configs}
    gains: dict[str, list[float]] = {name: [] for name in configs}
    for i, spec in enumerate(figure7_suite()):
        paper_matrix = _PaperScaleMatrix(spec.paper_dim, spec.paper_nnz)
        base_cycles = -(-spec.paper_dim // 256) * spec.paper_dim + 257
        base_energy = energy_model.spmv_energy(
            baseline_spec, paper_matrix, base_cycles
        )
        for name, design in configs.items():
            util = utils[name][i]
            if util <= 0:
                continue
            cycles = int(round(spec.paper_nnz / (design.length * util)))
            speedups[name].append(base_cycles / max(1, cycles))
            energy = energy_model.spmv_energy(
                gust_spec(
                    design.length,
                    gust_dynamic_power_w(design.length),
                    GUST_FREQUENCY_HZ,
                ),
                paper_matrix,
                cycles,
            )
            gains[name].append(base_energy.total_j / energy.total_j)
    return speedups, gains


def run(
    scale: float = DEFAULT_SCALE,
    dim: int = DEFAULT_DIM,
    densities: tuple[float, ...] = DEFAULT_DENSITIES,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce all four Figure 8 panels."""
    config_names = list(_configurations())
    headers = ["matrix", "density"]
    for name in config_names:
        headers += [f"{name} speedup", f"{name} e-gain"]

    panels: list[tuple[str, list[tuple[str, CooMatrix]]]] = []
    real = [
        (spec.name, load_dataset(spec.name, scale=scale))
        for spec in figure7_suite()
    ]
    panels.append(("(a) real", real))
    panels.append(
        (
            "(b) uniform",
            [
                (f"uniform d={d:g}", uniform_random(dim, dim, d, seed=seed))
                for d in densities
            ],
        )
    )
    panels.append(
        (
            "(c) power-law",
            [
                (f"plaw d={d:g}", power_law(dim, dim, d, seed=seed))
                for d in densities
            ],
        )
    )
    panels.append(
        (
            "(d) k-regular",
            [
                (
                    f"kreg k={max(1, round(d * dim))}",
                    k_regular(dim, dim, max(1, round(d * dim)), seed=seed),
                )
                for d in densities
            ],
        )
    )

    rows: list[list] = []
    real_speedups: dict[str, list[float]] = {}
    real_gains: dict[str, list[float]] = {}
    real_utils: dict[str, list[float]] = {}
    for panel_name, matrices in panels:
        rows.append([panel_name] + [""] * (len(headers) - 1))
        panel_rows, speedups, gains, utils = _panel(matrices)
        rows.extend(panel_rows)
        if panel_name.startswith("(a)"):
            real_speedups, real_gains, real_utils = speedups, gains, utils

    projected_speedups, projected_gains = _project_to_paper_dims(real_utils)
    measured = {
        "avg speedup GUST-256 EC/LB": geomean(
            projected_speedups["EC/LB-256"]
        ),
        "avg speedup GUST-87 EC/LB": geomean(projected_speedups["EC/LB-87"]),
        "avg energy gain GUST-256 EC/LB": geomean(projected_gains["EC/LB-256"]),
        "avg energy gain GUST-87 EC/LB": geomean(projected_gains["EC/LB-87"]),
        "avg speedup EC/LB over Naive": geomean(
            [
                a / b
                for a, b in zip(
                    projected_speedups["EC/LB-256"],
                    projected_speedups["Naive-256"],
                )
            ]
        ),
        "avg speedup EC/LB over EC": geomean(
            [
                a / b
                for a, b in zip(
                    projected_speedups["EC/LB-256"], projected_speedups["EC-256"]
                )
            ]
        ),
        "avg speedup EC/LB-256 (surrogate scale)": geomean(
            real_speedups["EC/LB-256"]
        ),
    }
    return ExperimentResult(
        experiment_id="fig8",
        title="Speedup and energy-efficiency gain over length-256 1D",
        headers=headers,
        rows=rows,
        paper_claims=dict(PAPER_CLAIMS),
        measured_claims=measured,
        notes=[
            f"real matrices at 1/{scale:g} dimension; synthetic at dim {dim} "
            f"(paper: 16384)",
            "speedup is cycles ratio at a shared 96 MHz clock",
            "energy model: Section 4 constants + Table 2 synthesis power",
            "headline claims are projected to paper dimensions via measured "
            "utilization (speedup = util/density analytically); table rows "
            "show surrogate-scale values",
        ],
    )
