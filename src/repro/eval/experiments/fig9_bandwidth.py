"""Figure 9 — average bandwidth utilized by GUST-256, GUST-87, and 1D-256.

GUST's densified stream keeps its memory interface nearly saturated, so its
average bandwidth approaches the design maximum (224 GB/s for length 256);
the 1D array moves mostly zeros, so its *useful* average bandwidth
collapses with sparsity.
"""

from __future__ import annotations

from repro.accelerators import GustAccelerator
from repro.energy.bandwidth import (
    average_bandwidth_1d_gbps,
    required_bandwidth_gbps,
)
from repro.energy.params import GUST_FREQUENCY_HZ
from repro.eval.result import ExperimentResult
from repro.hw.memory import row_index_bits
from repro.sparse.datasets import figure7_suite, load_dataset
from repro.sparse.stats import geometric_mean as _geomean

DEFAULT_SCALE = 16.0


def _gust_average_gbps(design: GustAccelerator, matrix) -> float:
    """Average streamed bandwidth from the cycle statistics.

    Occupied slots stream value + vector + row-index bits; every timestep
    streams one dump bit.  (Identical to
    :func:`repro.energy.bandwidth.average_bandwidth_gbps` but computed from
    color counts, avoiding the full schedule arrays.)
    """
    report = design.run(matrix)
    if report.cycles == 0:
        return 0.0
    preprocess = design.last_preprocess
    bits_per_element = 64 + row_index_bits(design.length)
    total_bits = matrix.nnz * bits_per_element + preprocess.total_colors
    seconds = report.cycles / GUST_FREQUENCY_HZ
    return total_bits / 8.0 / 1e9 / seconds


def run(scale: float = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Figure 9 on the surrogate suite."""
    gust_256 = GustAccelerator(256)
    gust_87 = GustAccelerator(87)
    max_256 = required_bandwidth_gbps(256, GUST_FREQUENCY_HZ)
    max_87 = required_bandwidth_gbps(87, GUST_FREQUENCY_HZ)

    headers = [
        "matrix",
        "GUST-256 GB/s",
        "GUST-87 GB/s",
        "1D-256 GB/s",
        "GUST-256 %max",
        "GUST-87 %max",
    ]
    rows: list[list] = []
    fractions_256: list[float] = []
    for spec in figure7_suite():
        matrix = load_dataset(spec.name, scale=scale)
        bw_256 = _gust_average_gbps(gust_256, matrix)
        bw_87 = _gust_average_gbps(gust_87, matrix)
        bw_1d = average_bandwidth_1d_gbps(matrix, 256, GUST_FREQUENCY_HZ)
        fractions_256.append(bw_256 / max_256)
        rows.append(
            [
                spec.name,
                bw_256,
                bw_87,
                bw_1d,
                100 * bw_256 / max_256,
                100 * bw_87 / max_87,
            ]
        )

    return ExperimentResult(
        experiment_id="fig9",
        title="Average bandwidth utilization at 96 MHz",
        headers=headers,
        rows=rows,
        paper_claims={
            "maximum BW GUST-256 (GB/s)": 224.0,
            "maximum BW GUST-87 (GB/s)": 76.0,
            "GUST BW far above 1D": True,
        },
        measured_claims={
            "maximum BW GUST-256 (GB/s)": max_256,
            "maximum BW GUST-87 (GB/s)": max_87,
            "GUST BW far above 1D": _geomean([row[1] for row in rows])
            > 20 * _geomean([row[3] for row in rows if row[3] > 0]),
        },
        notes=[f"surrogate matrices at 1/{scale:g} dimension"],
    )
