"""Table 2 — per-design power and hardware consumption.

Regenerated from the resource scaling laws anchored to the paper's
synthesis results; the anchor rows therefore reproduce the published
numbers, and other lengths interpolate/extrapolate along the laws.
"""

from __future__ import annotations

from repro.energy.params import GUST_FREQUENCY_HZ
from repro.energy.resources import (
    gust_dynamic_power_w,
    gust_resources,
    max_bandwidth_gbps,
    static_power_w,
    systolic1d_resources,
)
from repro.eval.result import ExperimentResult

PAPER_TOTALS_W = {"1D-256": 35.3, "GUST-8": 3.4, "GUST-87": 16.8, "GUST-256": 56.9}
PAPER_DSP = {"1D-256": 256, "GUST-8": 16, "GUST-87": 174, "GUST-256": 256}
PAPER_MAX_BW = {"1D-256": 150.0, "GUST-8": 5.8, "GUST-87": 76.0, "GUST-256": 224.0}


def run(lengths: tuple[int, ...] = (8, 87, 256)) -> ExperimentResult:
    """Regenerate Table 2 for 1D-256 and the given GUST lengths."""
    headers = [
        "design",
        "power W",
        "static W",
        "register",
        "buffers",
        "LUT",
        "DSP",
        "IO pins",
        "max BW GB/s",
    ]
    rows: list[list] = []

    r1d = systolic1d_resources(256)
    rows.append(
        [
            "1D-256",
            r1d.power_w,
            3.2,
            r1d.register,
            r1d.input_buffers,
            r1d.lut,
            r1d.dsp,
            r1d.io_pins,
            max_bandwidth_gbps("1D", 256, GUST_FREQUENCY_HZ),
        ]
    )
    for length in lengths:
        res = gust_resources(length)
        rows.append(
            [
                f"GUST-{length}",
                gust_dynamic_power_w(length),
                static_power_w(length),
                res.register,
                res.input_buffers,
                res.lut,
                res.dsp,
                res.io_pins,
                max_bandwidth_gbps("GUST", length, GUST_FREQUENCY_HZ),
            ]
        )

    measured_power = {f"total W {row[0]}": row[1] for row in rows}
    paper_power = {f"total W {k}": v for k, v in PAPER_TOTALS_W.items()}
    return ExperimentResult(
        experiment_id="table2",
        title="Per-design resource consumption (scaling-law reconstruction)",
        headers=headers,
        rows=rows,
        paper_claims={
            **paper_power,
            **{f"max BW {k}": v for k, v in PAPER_MAX_BW.items()},
        },
        measured_claims={
            **measured_power,
            **{f"max BW {row[0]}": row[8] for row in rows},
        },
        notes=[
            "anchored to the paper's synthesis points; DSP counts double the",
            "paper's GUST-256 value of 256 (one DSP per multiply and per add,",
            "Table 5's arithmetic partition reports 512 for length 256)",
        ],
    )
