"""Section 5.5 — parallel GUSTs versus one long GUST.

k parallel length-l GUSTs keep the arithmetic and bandwidth budget of one
length-k*l GUST while shrinking the crossbar (quadratic in length), at the
cost of reduced resource sharing and imperfect work division.  We compare
cycles and resources for equal-arithmetic configurations.
"""

from __future__ import annotations

from repro.core.parallel import ParallelGust
from repro.core.pipeline import GustPipeline
from repro.energy.resources import crossbar_resources, gust_dynamic_power_w
from repro.eval.result import ExperimentResult
from repro.sparse.datasets import load_dataset

DEFAULT_MATRICES = ("scircuit", "poisson3db", "soc-Epinions1", "heart1")
DEFAULT_SCALE = 16.0


def run(
    matrices: tuple[str, ...] = DEFAULT_MATRICES,
    scale: float = DEFAULT_SCALE,
    total_length: int = 256,
    ways: tuple[int, ...] = (1, 2, 4),
) -> ExperimentResult:
    """Compare k-way parallel splits of a fixed arithmetic budget."""
    headers = ["matrix", "config", "cycles", "imbalance", "xbar LUT", "power W"]
    rows: list[list] = []
    slowdowns: dict[int, list[float]] = {k: [] for k in ways if k > 1}

    for name in matrices:
        matrix = load_dataset(name, scale=scale)
        single_cycles = None
        for k in ways:
            unit_length = total_length // k
            if k == 1:
                pipeline = GustPipeline(unit_length)
                report, _ = pipeline.preprocess_stats(matrix)
                cycles = report.cycles
                imbalance = 1.0
            else:
                parallel = ParallelGust(unit_length, units=k)
                run_report = parallel.run(matrix)
                cycles = run_report.cycles
                imbalance = run_report.imbalance
            crossbar_lut = k * crossbar_resources(unit_length).lut
            power = k * gust_dynamic_power_w(unit_length)
            if k == 1:
                single_cycles = cycles
            else:
                slowdowns[k].append(cycles / max(1, single_cycles))
            rows.append(
                [
                    name,
                    f"{k}x{unit_length}",
                    cycles,
                    imbalance,
                    crossbar_lut,
                    power,
                ]
            )

    lut_single = crossbar_resources(total_length).lut
    lut_quad = 4 * crossbar_resources(total_length // 4).lut
    mean_cycle_ratio_4 = (
        sum(slowdowns[4]) / len(slowdowns[4]) if slowdowns.get(4) else 0.0
    )
    max_imbalance = max(
        (row[3] for row in rows if isinstance(row[3], float)), default=1.0
    )
    return ExperimentResult(
        experiment_id="scalability",
        title="Parallel arrangement of GUSTs vs one long GUST",
        headers=headers,
        rows=rows,
        paper_claims={
            "parallel shrinks crossbar": True,
            "work divides unequally on skewed matrices": True,
        },
        measured_claims={
            "parallel shrinks crossbar": lut_quad < lut_single,
            "work divides unequally on skewed matrices": max_imbalance > 1.1,
            "mean cycle ratio 4-way vs monolithic": round(mean_cycle_ratio_4, 3),
        },
        notes=[
            f"4x{total_length // 4} crossbar LUTs {lut_quad} vs "
            f"1x{total_length} {lut_single}",
            "windows assigned round-robin; schedule computed once per matrix",
            "reproduction finding: on these surrogates the cycle penalty of the",
            "parallel arrangement is small and matrix-dependent — imbalance",
            "(the paper's reason 2) dominates on skewed matrices, while the",
            "per-window fluctuation term shrinks with smaller l",
        ],
    )
