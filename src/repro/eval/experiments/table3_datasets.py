"""Table 3 — the nine Serpens-comparison matrices and their surrogates."""

from __future__ import annotations

from repro.eval.result import ExperimentResult
from repro.sparse.datasets import load_dataset, serpens_suite

DEFAULT_SCALE = 64.0


def run(scale: float = DEFAULT_SCALE) -> ExperimentResult:
    """Print the paper's Table 3 next to the generated surrogates."""
    headers = [
        "id",
        "matrix",
        "paper dim",
        "paper #NZ",
        "paper density",
        "family",
        "surrogate dim",
        "surrogate #NZ",
    ]
    rows: list[list] = []
    for index, spec in enumerate(serpens_suite(), start=1):
        surrogate = load_dataset(spec.name, scale=scale)
        rows.append(
            [
                f"({index})",
                spec.name,
                spec.paper_dim,
                spec.paper_nnz,
                spec.paper_density,
                spec.family,
                surrogate.shape[0],
                surrogate.nnz,
            ]
        )
    return ExperimentResult(
        experiment_id="table3",
        title="Serpens-comparison matrices (paper vs surrogate)",
        headers=headers,
        rows=rows,
        notes=[
            f"surrogates at 1/{scale:g} dimension with mean row degree "
            "preserved (density rises accordingly, capped at 0.5)",
        ],
    )
