"""Figure 7 — hardware utilization (a) and execution cycles (b).

Seven configurations over the real-matrix suite: 1D, AT, Flex-TPU, Fafnir,
and GUST with Naive / EC / EC+LB scheduling.  All designs are normalized to
256 multipliers and 256 adders except Fafnir (128 multipliers, 448 adders),
exactly as in Section 4.
"""

from __future__ import annotations

from repro.accelerators import (
    AdderTree,
    Fafnir,
    FlexTpu,
    GustAccelerator,
    Systolic1D,
)
from repro.eval.metrics import geomean
from repro.eval.result import ExperimentResult
from repro.sparse.datasets import figure7_suite, load_dataset

#: Paper Table 1 geomean utilizations (percent).
PAPER_GEOMEAN_UTIL = {
    "1D": 0.08,
    "AT": 0.08,
    "FTPU": 1.45,
    "FAFNIR": 4.67,
    "GUST-EC/LB": 33.67,
}

DEFAULT_SCALE = 16.0
DEFAULT_LENGTH = 256


def designs(length: int = DEFAULT_LENGTH):
    """The Figure 7 design lineup at the paper's unit normalization."""
    return [
        Systolic1D(length),
        AdderTree(length),
        FlexTpu.with_units(length),
        Fafnir(length // 2),
        GustAccelerator(length, algorithm="naive", load_balance=False),
        GustAccelerator(length, algorithm="matching", load_balance=False),
        GustAccelerator(length, algorithm="matching", load_balance=True),
    ]


def run(
    scale: float = DEFAULT_SCALE, length: int = DEFAULT_LENGTH
) -> ExperimentResult:
    """Reproduce Figures 7a and 7b on the surrogate suite."""
    lineup = designs(length)
    names = [d.name for d in lineup]
    headers = ["matrix", "density"] + [f"{n} util%" for n in names] + [
        f"{n} cycles" for n in names
    ]
    rows: list[list] = []
    utils: dict[str, list[float]] = {n: [] for n in names}

    for spec in figure7_suite():
        matrix = load_dataset(spec.name, scale=scale)
        row: list = [spec.name, spec.paper_density]
        cycle_cells: list = []
        for design in lineup:
            report = design.run(matrix)
            utils[design.name].append(report.utilization)
            row.append(report.utilization * 100)
            cycle_cells.append(report.cycles)
        rows.append(row + cycle_cells)

    gmean_row: list = ["G-Mean", ""]
    gmeans = {n: geomean([u for u in utils[n] if u > 0]) * 100 for n in names}
    gmean_row += [gmeans[n] for n in names] + ["" for _ in names]
    rows.append(gmean_row)

    measured = {f"geomean util% {n}": gmeans[n] for n in PAPER_GEOMEAN_UTIL}
    # 1D and AT utilization equal the matrix density (every cell costs a
    # cycle), so the dimension-scaled surrogates inflate them by exactly the
    # scale factor.  The paper-dimension prediction is the density geomean.
    paper_dim_prediction = geomean(
        [spec.paper_density for spec in figure7_suite()]
    ) * 100
    measured["geomean util% 1D @paper dims (analytic)"] = paper_dim_prediction
    paper = {f"geomean util% {n}": v for n, v in PAPER_GEOMEAN_UTIL.items()}
    paper["geomean util% 1D @paper dims (analytic)"] = 0.08
    return ExperimentResult(
        experiment_id="fig7",
        title="Hardware utilization and execution cycles across designs",
        headers=headers,
        rows=rows,
        paper_claims=paper,
        measured_claims=measured,
        notes=[
            f"surrogate matrices at 1/{scale:g} dimension, row degree preserved",
            "Fafnir runs 128 leaves / 448 adders; others 256+256 units",
            "1D/AT utilization equals density, so surrogate scaling inflates "
            "their measured columns by the scale factor; GUST, Fafnir and "
            "FTPU utilization is density-shape driven and transfers directly",
        ],
    )
