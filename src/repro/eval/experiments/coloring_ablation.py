"""Extension ablation — greedy (Listing 1) vs first-fit vs optimal coloring.

The paper's scheduler is the round-based greedy matching of Listing 1.
König's theorem says the optimum equals the max bipartite degree; this
ablation measures how close each algorithm gets and what it costs in
preprocessing time — quantifying how much headroom a smarter scheduler
would buy (answer: little; greedy is within a few percent of optimal).
"""

from __future__ import annotations

import time

from repro.core.load_balance import LoadBalancer
from repro.core.scheduler import GustScheduler
from repro.eval.result import ExperimentResult
from repro.sparse.datasets import load_dataset

DEFAULT_MATRICES = ("scircuit", "bcircuit", "wiki-Vote", "TSCOPF-1047")
DEFAULT_SCALE = 32.0
ALGORITHMS = ("matching", "first_fit", "euler")


def run(
    matrices: tuple[str, ...] = DEFAULT_MATRICES,
    scale: float = DEFAULT_SCALE,
    length: int = 128,
) -> ExperimentResult:
    """Colors and preprocessing time per algorithm, vs the degree bound."""
    headers = ["matrix", "lower bound"] + [
        item
        for algorithm in ALGORITHMS
        for item in (f"{algorithm} colors", f"{algorithm} s")
    ]
    rows: list[list] = []
    overhead: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
    balancer = LoadBalancer(length)

    for name in matrices:
        matrix = load_dataset(name, scale=scale)
        balanced = balancer.balance(matrix)
        bound = int(sum(balanced.color_lower_bounds(length)))
        row: list = [name, bound]
        for algorithm in ALGORITHMS:
            scheduler = GustScheduler(length, algorithm=algorithm)
            started = time.perf_counter()
            counts = scheduler.color_counts(balanced)
            elapsed = time.perf_counter() - started
            total = int(sum(counts))
            overhead[algorithm].append(total / max(1, bound))
            row += [total, elapsed]
        rows.append(row)

    mean_overhead = {
        a: sum(v) / len(v) for a, v in overhead.items() if v
    }
    return ExperimentResult(
        experiment_id="coloring_ablation",
        title="Scheduling algorithm ablation: colors vs the König optimum",
        headers=headers,
        rows=rows,
        paper_claims={"euler matches lower bound exactly": True},
        measured_claims={
            "euler matches lower bound exactly": all(
                row[1] == row[2 + 2 * ALGORITHMS.index("euler")] for row in rows
            ),
            **{
                f"{a} colors / optimum": round(mean_overhead[a], 4)
                for a in ALGORITHMS
            },
        },
        notes=["length 128 keeps the Hopcroft-Karp optimal coloring fast"],
    )
