"""Extension sweep — replay throughput across execution backends.

The backend registry (:mod:`repro.core.backends`) makes the execution
kernel a pluggable axis, so this experiment measures it like one: one
matrix, one schedule, one compiled plan — replayed through every
registered backend (plus the uncompiled legacy baseline) for SpMV and a
``k``-column SpMM block.  Informational, never gated: the hard gates live
in ``benchmarks/bench_replay_throughput.py``; this table is for choosing
a backend (and for eyeballing a freshly registered one — a GPU
segment-reduce backend would appear here automatically).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backends import available_backends, compile_plan
from repro.core.pipeline import LEGACY_SCATTER, GustPipeline
from repro.eval.result import ExperimentResult
from repro.sparse.generators import uniform_random

DEFAULT_DIM = 2048
DEFAULT_DENSITY = 0.008
DEFAULT_LENGTH = 64
DEFAULT_COLUMNS = 8
DEFAULT_REPEATS = 10


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run(
    dim: int = DEFAULT_DIM,
    density: float = DEFAULT_DENSITY,
    length: int = DEFAULT_LENGTH,
    columns: int = DEFAULT_COLUMNS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 23,
) -> ExperimentResult:
    """Measure every backend's SpMV/SpMM replay on one workload."""
    matrix = uniform_random(dim, dim, density, seed=seed)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=dim)
    dense = rng.normal(size=(dim, columns))

    pipeline = GustPipeline(length, cache=True)
    schedule, balanced, _ = pipeline.preprocess(matrix)
    plan = pipeline.plan_for(schedule, balanced)

    headers = [
        "backend",
        "flags",
        "matvec us",
        f"matmat(k={columns}) us",
        "vs scatter",
    ]
    rows: list[list] = []

    legacy = pipeline.compile_schedule(
        schedule, balanced, backend=LEGACY_SCATTER
    )
    legacy_matvec_s = _best_of(lambda: legacy.matvec(x), repeats)
    rows.append(
        [
            LEGACY_SCATTER,
            "bit-identical,uncompiled",
            legacy_matvec_s * 1e6,
            _best_of(lambda: legacy.matmat(dense), repeats) * 1e6,
            "baseline",
        ]
    )

    measured: dict[str, tuple[float, float]] = {}
    for name in available_backends():
        compiled = compile_plan(plan, backend=name)
        measured[name] = (
            _best_of(lambda: compiled.kernel.matvec(x), repeats),
            _best_of(lambda: compiled.kernel.matmat(dense), repeats),
        )
    scatter_s = measured["scatter"][0]
    for name, caps in available_backends().items():
        matvec_s, matmat_s = measured[name]
        rows.append(
            [
                name,
                caps.describe(),
                matvec_s * 1e6,
                matmat_s * 1e6,
                f"{scatter_s / matvec_s:.2f}x",
            ]
        )

    auto = compile_plan(plan, backend="auto")
    return ExperimentResult(
        experiment_id="backends",
        title="replay throughput per execution backend",
        headers=headers,
        rows=rows,
        measured_claims={
            "auto backend": auto.name,
            "auto bit-identical": auto.bit_identical,
            "nnz": plan.nnz,
        },
        notes=[
            "informational sweep; the gated numbers live in "
            "benchmarks/bench_replay_throughput.py",
            "'vs scatter' compares matvec against the compiled scatter "
            "backend",
            "set GUST_BACKEND to override 'auto' selection process-wide",
        ],
    )
