"""Extension sweep — execution time vs provisioned memory bandwidth.

Section 3.3 sizes GUST-256's stall-free stream at 224 GB/s and Section 4
provisions it from the U280's 460 GB/s HBM2.  This sweep quantifies the
design margin: above the requirement extra bandwidth buys nothing; below
it execution time scales inversely — the knee sits exactly at the
(64 l + log l + 1) f line.
"""

from __future__ import annotations

from repro.core.pipeline import GustPipeline
from repro.energy.bandwidth import required_bandwidth_gbps
from repro.energy.bw_stall import bandwidth_limited_cycles
from repro.energy.params import GUST_FREQUENCY_HZ, U280_PEAK_BANDWIDTH_GBPS
from repro.eval.result import ExperimentResult
from repro.sparse.datasets import load_dataset

DEFAULT_MATRIX = "poisson3db"
DEFAULT_SCALE = 16.0
DEFAULT_LENGTH = 256
DEFAULT_FRACTIONS = (0.25, 0.5, 1.0, 2.0)


def run(
    matrix_name: str = DEFAULT_MATRIX,
    scale: float = DEFAULT_SCALE,
    length: int = DEFAULT_LENGTH,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
) -> ExperimentResult:
    """Sweep provisioned bandwidth around the requirement."""
    matrix = load_dataset(matrix_name, scale=scale)
    pipeline = GustPipeline(length)
    compute, _ = pipeline.preprocess_stats(matrix)
    required = required_bandwidth_gbps(length, GUST_FREQUENCY_HZ)

    headers = [
        "provisioned GB/s",
        "fraction of req.",
        "effective cycles",
        "stall cycles",
        "slowdown",
    ]
    rows: list[list] = []
    for fraction in fractions:
        report = bandwidth_limited_cycles(
            compute.cycles, length, GUST_FREQUENCY_HZ, required * fraction
        )
        rows.append(
            [
                required * fraction,
                fraction,
                report.effective_cycles,
                report.stall_cycles,
                report.slowdown,
            ]
        )
    u280_report = bandwidth_limited_cycles(
        compute.cycles, length, GUST_FREQUENCY_HZ, U280_PEAK_BANDWIDTH_GBPS
    )

    return ExperimentResult(
        experiment_id="bandwidth_provisioning",
        title="Execution time vs provisioned memory bandwidth",
        headers=headers,
        rows=rows,
        paper_claims={
            "stall-free at U280's 460 GB/s": True,
            "requirement GB/s (length 256)": 224.0,
        },
        measured_claims={
            "stall-free at U280's 460 GB/s": not u280_report.bandwidth_bound,
            "requirement GB/s (length 256)": required,
        },
        notes=[
            f"{matrix_name} surrogate at 1/{scale:g} dimension, "
            f"length {length}, compute cycles {compute.cycles}",
        ],
    )
