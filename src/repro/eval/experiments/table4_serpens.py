"""Table 4 — GUST vs Serpens: preprocessing and SpMV, end to end.

For each Table 3 matrix: preprocessing wall-clock and energy (45 W CPU),
SpMV wall-clock, cycle count, energy, and GFLOP/s for length-256 GUST at
96 MHz against Serpens at 223 MHz.  The paper's headline: GUST wins
execution time on seven of nine matrices and energy on four.
"""

from __future__ import annotations

from repro.accelerators import GustAccelerator, Serpens
from repro.energy.model import EnergyModel, gust_spec, serpens_spec
from repro.energy.params import (
    GUST_FREQUENCY_HZ,
    SERPENS_FREQUENCY_HZ,
)
from repro.eval.result import ExperimentResult
from repro.sparse.datasets import load_dataset, serpens_suite

DEFAULT_SCALE = 64.0

#: Table 4's published per-matrix calc cycles, for shape comparison.
PAPER_CALC_CYCLES = {
    "crankseg_2": (57_000, 208_000),
    "Si41Ge41H72": (64_000, 190_000),
    "TSOPF_RS_b2383": (80_000, 163_000),
    "ML_Laplace": (106_000, 306_000),
    "mouse_gene": (139_000, 306_000),
    "coPapersCiteseer": (129_000, 466_000),
    "PFlow_742": (146_000, 457_000),
    "googleplus": (136_000, 417_000),
    "soc_pokec": (313_000, 1_010_000),
}


def run(scale: float = DEFAULT_SCALE) -> ExperimentResult:
    """Reproduce Table 4 on the scaled surrogate suite."""
    gust = GustAccelerator(256)
    serpens = Serpens()
    energy_model = EnergyModel()
    spec_gust = gust_spec(256, 56.9, GUST_FREQUENCY_HZ)
    spec_serpens = serpens_spec(46.2, SERPENS_FREQUENCY_HZ)

    headers = [
        "matrix",
        "G pre s",
        "G calc ms",
        "G cycles",
        "G mJ",
        "G GFLOPS",
        "S pre s",
        "S calc ms",
        "S cycles",
        "S mJ",
        "S GFLOPS",
    ]
    rows: list[list] = []
    time_wins = 0
    energy_wins = 0
    cycle_ratio_measured: list[float] = []
    cycle_ratio_paper: list[float] = []

    for spec in serpens_suite():
        matrix = load_dataset(spec.name, scale=scale)

        gust_report = gust.run(matrix)
        gust_pre = gust.last_preprocess
        gust_seconds = gust_report.cycles / GUST_FREQUENCY_HZ
        gust_energy = energy_model.spmv_energy(
            spec_gust, matrix, gust_report.cycles
        )
        gust_gflops = gust_report.useful_ops / gust_seconds / 1e9

        serpens_report = serpens.run(matrix)
        serpens_pre = serpens.preprocess(matrix)
        serpens_seconds = serpens_report.cycles / SERPENS_FREQUENCY_HZ
        serpens_energy = energy_model.spmv_energy(
            spec_serpens, matrix, serpens_report.cycles
        )
        serpens_gflops = serpens_report.useful_ops / serpens_seconds / 1e9

        if gust_seconds < serpens_seconds:
            time_wins += 1
        if gust_energy.total_j < serpens_energy.total_j:
            energy_wins += 1
        cycle_ratio_measured.append(serpens_report.cycles / gust_report.cycles)
        paper_gust, paper_serpens = PAPER_CALC_CYCLES[spec.name]
        cycle_ratio_paper.append(paper_serpens / paper_gust)

        rows.append(
            [
                spec.name,
                gust_pre.seconds,
                gust_seconds * 1e3,
                gust_report.cycles,
                gust_energy.total_j * 1e3,
                gust_gflops,
                serpens_pre.seconds,
                serpens_seconds * 1e3,
                serpens_report.cycles,
                serpens_energy.total_j * 1e3,
                serpens_gflops,
            ]
        )

    mean_ratio_measured = sum(cycle_ratio_measured) / len(cycle_ratio_measured)
    mean_ratio_paper = sum(cycle_ratio_paper) / len(cycle_ratio_paper)
    return ExperimentResult(
        experiment_id="table4",
        title="GUST (96 MHz) vs Serpens (223 MHz), preprocessing and SpMV",
        headers=headers,
        rows=rows,
        paper_claims={
            "GUST faster (of 9)": 7,
            "GUST lower energy (of 9)": 4,
            "mean Serpens/GUST cycle ratio": mean_ratio_paper,
        },
        measured_claims={
            "GUST faster (of 9)": time_wins,
            "GUST lower energy (of 9)": energy_wins,
            "mean Serpens/GUST cycle ratio": mean_ratio_measured,
        },
        notes=[
            f"surrogates at 1/{scale:g} dimension; absolute cycles scale down "
            "with matrix size, ratios are the comparison target",
            "preprocessing wall-clock is this Python implementation, not the "
            "paper's i7 C++ pipeline; see EXPERIMENTS.md",
        ],
    )
