"""Section 5.4 — effect of matrix structure on GUST.

"Depending on how well the NZ elements are spread out, we get a different
standard deviation for #NZ elements in rows and column-mod-l partitions
(STD) ... high STD negatively affects the performance of GUST.  Load
balancing helps reducing the high STD, but to some extent."

We fix the density, vary the structure family, and measure the in-window
degree STD alongside EC and EC/LB utilization: utilization should fall as
STD rises, and load balancing should recover part (not all) of the gap.
"""

from __future__ import annotations

from repro.core.pipeline import GustPipeline
from repro.eval.result import ExperimentResult
from repro.sparse.generators import k_regular, power_law, uniform_random
from repro.sparse.stats import window_degree_std

DEFAULT_DIM = 2048
DEFAULT_DENSITY = 0.005
DEFAULT_LENGTH = 256


def run(
    dim: int = DEFAULT_DIM,
    density: float = DEFAULT_DENSITY,
    length: int = DEFAULT_LENGTH,
    seed: int = 29,
) -> ExperimentResult:
    """Compare structures at one density: STD vs utilization."""
    k = max(1, round(density * dim))
    structures = [
        ("k-regular", k_regular(dim, dim, k, seed=seed)),
        ("uniform", uniform_random(dim, dim, density, seed=seed)),
        ("power-law", power_law(dim, dim, density, seed=seed)),
    ]

    headers = [
        "structure",
        "row STD",
        "seg STD",
        "EC util",
        "EC/LB util",
        "LB recovery",
    ]
    rows: list[list] = []
    ec_utils: list[float] = []
    stds: list[float] = []
    for name, matrix in structures:
        row_std, seg_std = window_degree_std(matrix, length)
        plain, _ = GustPipeline(length, load_balance=False).preprocess_stats(
            matrix
        )
        balanced, _ = GustPipeline(length, load_balance=True).preprocess_stats(
            matrix
        )
        recovery = (
            balanced.utilization / plain.utilization
            if plain.utilization
            else 1.0
        )
        ec_utils.append(plain.utilization)
        stds.append(row_std + seg_std)
        rows.append(
            [
                name,
                row_std,
                seg_std,
                plain.utilization,
                balanced.utilization,
                recovery,
            ]
        )

    utilization_falls_with_std = all(
        earlier >= later
        for (earlier, later) in zip(ec_utils, ec_utils[1:])
    ) and stds == sorted(stds)
    lb_recovers_most_on_skewed = rows[-1][5] == max(row[5] for row in rows)
    return ExperimentResult(
        experiment_id="structure_sensitivity",
        title="Matrix structure vs GUST performance (Section 5.4)",
        headers=headers,
        rows=rows,
        paper_claims={
            "utilization falls as degree STD rises": True,
            "LB helps most on the most skewed structure": True,
        },
        measured_claims={
            "utilization falls as degree STD rises": utilization_falls_with_std,
            "LB helps most on the most skewed structure": lb_recovers_most_on_skewed,
        },
        notes=[
            f"dim {dim}, density {density}, length {length}; structures "
            "ordered by increasing degree spread",
        ],
    )
