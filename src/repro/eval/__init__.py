"""Experiment harness: regenerates every table and figure in the paper.

Each module under :mod:`repro.eval.experiments` owns one paper artifact
(Table 1-5, Figure 7-9, plus the in-text claims) and exposes
``run(...) -> ExperimentResult``; ``ExperimentResult.render()`` prints the
same rows/series the paper reports, next to the paper's reference values
where the paper states them.

The benchmarks under ``benchmarks/`` are thin pytest-benchmark wrappers
around these experiment modules.
"""

from repro.eval.metrics import energy_gain, geomean, speedup
from repro.eval.result import ExperimentResult
from repro.eval.runner import run_designs
from repro.eval.tables import render_table

__all__ = [
    "ExperimentResult",
    "energy_gain",
    "geomean",
    "render_table",
    "run_designs",
    "speedup",
]
