"""Schedule persistence: save and reload preprocessing results.

The paper's economics rest on preprocessing being a one-time cost per
matrix (Table 4 spends seconds scheduling, then sub-millisecond SpMVs).  A
deployment therefore wants schedules on disk.  This module serializes a
(:class:`Schedule`, :class:`BalancedMatrix`) pair — plus the scheduler's
stall metadata and the cache's value-refresh join — into a single artifact
so a solver can restart without rescheduling, and so the content-addressed
:class:`~repro.core.store.DiskScheduleStore` can share one artifact across
a fleet of worker processes.

Container format (version 3)
----------------------------

A warm start must be an order of magnitude cheaper than cold scheduling,
so the container is built for load speed rather than generality:

* a 24-byte prologue: magic, **format version**, header length, and a
  CRC-32 **integrity checksum** covering every byte after the prologue —
  one pass over the file detects any flipped bit or truncation before a
  single array is trusted;
* a JSON header describing each array (dtype, shape, byte offset) plus the
  scalar metadata (length, shape, stall count);
* the payload: raw little-endian array bytes at 64-byte-aligned offsets,
  materialized on load as zero-copy ``np.frombuffer`` views of one read.

The payload stores the schedule in its *compact* form — the occupied-slot
coordinates ``(steps, lanes)`` and each slot's source index into the
balanced value stream — rather than the dense ``M_sch/Row_sch/Col_sch``
triple, which is mostly empty slots.  The dense arrays are rebuilt with
three O(nnz) scatters — *lazily*, on first access (plan-based replay
never needs them); integer arrays are narrowed to the smallest sufficient
dtype on write.  These choices shrink the artifact (and the checksum
pass) by more than half and keep the warm-start path allocation-light.

Version 3 additionally persists the slot arrays **pre-sorted by
destination row** — the layout of the :class:`~repro.core.plan.
ExecutionPlan` replay engine.  The dense-rebuild scatters are
order-independent, so the sorted layout costs the reader nothing, and a
disk warm start reconstitutes a replay-ready plan from the very gathers
the rebuild already performs: no sort, no extra payload member.
Version-2 artifacts (slot arrays in occupied-slot scan order) still load
through every explicit-path API (:func:`load_schedule`, the CLI's
``spmv``/``inspect``); the plan order is simply recompiled (one
``argsort``) on the way in, so user-kept artifacts keep working at a
small one-time cost.  The content-addressed store deliberately does
*not* reach v2 artifacts: its keys embed the format version so
generations stay isolated — in a mixed fleet, a v2-era reader would
otherwise look up a v3 artifact, fail its version check, and quarantine
a file the upgraded workers still want.  Old store entries miss once,
reschedule, and age out of the byte budget.

Writes are atomic: the container is written to a same-directory temporary
file, flushed and fsynced, then ``os.replace``-d into place.  A reader can
never observe a half-written schedule, and two processes racing to persist
the same schedule both succeed, leaving exactly one valid artifact.

Any malformed input — truncated file, non-artifact bytes, version or
checksum mismatch, out-of-range indices, or a payload that fails
:meth:`Schedule.validate` — raises :class:`~repro.errors.ScheduleError`
with a descriptive message.  Corruption never escapes as a wrong answer.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.load_balance import BalancedMatrix
from repro.core.plan import ExecutionPlan
from repro.core.schedule import EMPTY, Schedule
from repro.core.scheduler import slot_value_sources
from repro.errors import ScheduleError
from repro.sparse.coo import CooMatrix

#: First 8 bytes of every artifact.
_MAGIC = b"GUSTSCH\x00"

#: On-disk format version.  Version 1 (an ``.npz`` of dense schedule
#: arrays) is no longer produced or read; bump this whenever the layout or
#: the meaning of any member changes.
_FORMAT_VERSION = 3

#: Versions :func:`load_schedule_entry` accepts.  Version 2 lacks the
#: persisted execution-plan sort; its plan is recompiled on load.
_COMPAT_VERSIONS = (2, 3)

#: Prologue layout: magic, u32 version, u32 header length, u32 CRC-32 of
#: everything after the prologue, u32 reserved.
_PROLOGUE_BYTES = 24

#: Payload arrays are placed at multiples of this within the payload.
_ALIGN = 64

#: Arrays every artifact carries.  ``slot_rows`` is each occupied slot's
#: window-local destination row, precomputed so the dense ``Row_sch``
#: rebuild is a bare scatter (no gather-and-mod pass).
_REQUIRED = (
    "matrix_rows",
    "matrix_cols",
    "matrix_data",
    "row_perm",
    "map_cols",
    "map_lanes",
    "map_offsets",
    "window_colors",
    "slot_steps",
    "slot_lanes",
    "slot_rows",
    "slot_source",
)

#: Optional acceleration arrays (present when written via the cache tier):
#: the balanced->original value permutation (and, accepted for
#: flexibility, its original->balanced inverse).
_OPTIONAL = ("inv_order", "data_order")


@dataclass(frozen=True)
class StoredSchedule:
    """Everything :func:`load_schedule_entry` recovers from one artifact.

    ``slot_steps``/``slot_lanes``/``slot_source`` are the occupied-slot
    coordinates and their balanced-data source indices — the same join
    :func:`~repro.core.scheduler.slot_value_sources` computes, persisted so
    a warm start skips it.  From format version 3 they arrive sorted by
    destination row (the execution plan's layout); every consumer is a
    scatter or an elementwise join, so the ordering is free to choose.
    ``data_order`` (original-order data -> balanced order permutation) and
    ``inv_order`` (its inverse) are present when the artifact was written
    through a :class:`~repro.core.cache.ScheduleCache`, letting the cache
    reconstruct its refresh entry without re-sorting.
    """

    schedule: Schedule
    balanced: BalancedMatrix
    #: naive-policy stall count captured at scheduling time (0 for the
    #: coloring-based policies).
    stalls: int
    slot_steps: np.ndarray
    slot_lanes: np.ndarray
    slot_source: np.ndarray
    data_order: np.ndarray | None
    inv_order: np.ndarray | None
    #: replay-ready execution plan: reconstituted without a sort from a
    #: version-3 artifact's persisted ``plan_order``, recompiled (one
    #: ``argsort``) for version-2 artifacts.
    plan: ExecutionPlan | None = None


def _compact_ints(arr: np.ndarray) -> np.ndarray:
    """Narrow an integer array to the smallest sufficient signed dtype."""
    arr = np.ascontiguousarray(arr)
    if arr.size == 0:
        return arr.astype(np.int16)
    lo, hi = int(arr.min()), int(arr.max())
    for dtype in (np.int16, np.int32):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return arr.astype(dtype)
    return arr.astype(np.int64)


def _save_container(
    path: str | Path, scalars: dict, arrays: dict[str, np.ndarray]
) -> None:
    """Assemble and atomically write one artifact.

    Exposed (privately) so tests can author artifacts with arbitrary
    contents; production callers go through :func:`save_schedule`.
    """
    manifest: dict[str, dict] = {}
    offset = 0
    buffers: list[bytes] = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        pad = (-offset) % _ALIGN
        if pad:
            buffers.append(b"\x00" * pad)
            offset += pad
        raw = arr.tobytes()
        manifest[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        buffers.append(raw)
        offset += len(raw)
    header = json.dumps({"scalars": scalars, "arrays": manifest}).encode()

    crc = zlib.crc32(header)
    for buf in buffers:
        crc = zlib.crc32(buf, crc)
    prologue = (
        _MAGIC
        + np.array(
            [_FORMAT_VERSION, len(header), crc, 0], dtype="<u4"
        ).tobytes()
    )

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename: the temporary lives in the destination directory
    # so os.replace is an atomic same-filesystem rename.
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(prologue)
            handle.write(header)
            for buf in buffers:
                handle.write(buf)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _load_container(
    path: str | Path,
) -> tuple[dict, dict[str, np.ndarray], int]:
    """Read, checksum-verify, and view one artifact's (scalars, arrays,
    format version).

    Returned arrays are read-only ``frombuffer`` views over the single
    file read; callers copy only what they intend to mutate.
    """
    path = Path(path)
    data = path.read_bytes()  # FileNotFoundError propagates untouched
    if len(data) < _PROLOGUE_BYTES or data[:8] != _MAGIC:
        raise ScheduleError(f"{path} is not a schedule artifact")
    version, header_len, stored_crc, _ = np.frombuffer(
        data, dtype="<u4", count=4, offset=8
    )
    if int(version) not in _COMPAT_VERSIONS:
        raise ScheduleError(
            f"schedule file version {int(version)} unsupported "
            f"(expected one of {_COMPAT_VERSIONS})"
        )
    if zlib.crc32(memoryview(data)[_PROLOGUE_BYTES:]) != int(stored_crc):
        raise ScheduleError(
            f"schedule file {path} failed its integrity checksum; "
            "the artifact is corrupt or truncated"
        )
    try:
        header = json.loads(
            data[_PROLOGUE_BYTES : _PROLOGUE_BYTES + int(header_len)]
        )
        scalars = header["scalars"]
        payload_start = _PROLOGUE_BYTES + int(header_len)
        arrays: dict[str, np.ndarray] = {}
        for name, spec in header["arrays"].items():
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            count = int(np.prod(shape)) if shape else 1
            arrays[name] = np.frombuffer(
                data,
                dtype=dtype,
                count=count,
                offset=payload_start + int(spec["offset"]),
            ).reshape(shape)
    except (KeyError, ValueError, TypeError) as err:
        raise ScheduleError(
            f"schedule file {path} has a malformed header: {err}"
        ) from err
    return scalars, arrays, int(version)


class _CompactSchedule(Schedule):
    """A loaded schedule whose dense arrays materialize on first touch.

    The artifact's compact slot representation is all the replay engine
    needs (the :class:`~repro.core.plan.ExecutionPlan` is built from it
    directly), so the (C_total, l) ``M_sch``/``Row_sch``/``Col_sch``
    triple — several MB of mostly empty slots on large matrices — is
    rebuilt only when something actually reads it (the cycle-accurate
    machine, a value-refresh scatter, re-serialization, validation).
    Derived quantities used on the hot path (``nnz``, ``total_colors``,
    ``occupied_slots``) are answered from the compact form without
    materializing.  Behaviorally identical to an eager
    :class:`Schedule`; only the allocation time moves.
    """

    def __init__(
        self,
        length: int,
        shape: tuple[int, int],
        window_colors: tuple[int, ...],
        total: int,
        flat: np.ndarray,
        slot_values: np.ndarray,
        slot_rows: np.ndarray,
        slot_cols: np.ndarray,
    ):
        # The dense fields are class-level properties (data descriptors),
        # so the dataclass __init__ cannot be reused; set the scalar
        # fields and the compact payload directly.
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "window_colors", window_colors)
        object.__setattr__(self, "_total", total)
        object.__setattr__(self, "_flat", flat)
        object.__setattr__(self, "_slot_values", slot_values)
        object.__setattr__(self, "_slot_rows", slot_rows)
        object.__setattr__(self, "_slot_cols", slot_cols)
        object.__setattr__(self, "_dense", None)

    def _materialize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        dense = self._dense
        if dense is None:
            total, length = self._total, self.length
            m_sch = np.zeros(total * length, dtype=np.float64)
            row_sch = np.full(total * length, EMPTY, dtype=np.int64)
            col_sch = np.full(total * length, EMPTY, dtype=np.int64)
            if self._slot_values.size:
                try:
                    m_sch[self._flat] = self._slot_values
                    row_sch[self._flat] = self._slot_rows
                    col_sch[self._flat] = self._slot_cols
                except IndexError as err:
                    raise ScheduleError(
                        "schedule artifact holds out-of-range slot indices"
                    ) from err
            dense = (
                m_sch.reshape(total, length),
                row_sch.reshape(total, length),
                col_sch.reshape(total, length),
            )
            object.__setattr__(self, "_dense", dense)
        return dense

    @property
    def m_sch(self) -> np.ndarray:  # type: ignore[override]
        return self._materialize()[0]

    @property
    def row_sch(self) -> np.ndarray:  # type: ignore[override]
        return self._materialize()[1]

    @property
    def col_sch(self) -> np.ndarray:  # type: ignore[override]
        return self._materialize()[2]

    # Hot-path derived quantities, answered without materializing.

    @property
    def total_colors(self) -> int:
        return int(self._total)

    @property
    def nnz(self) -> int:
        return int(self._slot_values.size)

    @property
    def occupancy(self) -> float:
        slots = self._total * self.length
        return self.nnz / slots if slots else 0.0

    def occupied_slots(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        steps = self._flat // self.length
        lanes = self._flat % self.length
        global_rows = (
            self.window_of_timestep()[steps] * self.length
            + self._slot_rows.astype(np.int64)
        )
        return steps, lanes, global_rows


def _check_range(name: str, arr: np.ndarray, lo: int, hi: int) -> None:
    """Bounds-check an index array before it drives any fancy indexing."""
    if arr.size and (int(arr.min()) < lo or int(arr.max()) >= hi):
        raise ScheduleError(
            f"schedule artifact member {name!r} holds out-of-range indices"
        )


def save_schedule(
    path: str | Path,
    schedule: Schedule,
    balanced: BalancedMatrix,
    *,
    stalls: int = 0,
    slots: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    data_order: np.ndarray | None = None,
    plan_order: np.ndarray | None = None,
) -> None:
    """Atomically write a schedule and its balancing metadata to ``path``.

    Args:
        path: destination artifact file.
        schedule / balanced: the preprocessing result to persist.
        stalls: naive-policy stall count to carry alongside the schedule.
        slots: precomputed ``(steps, lanes, source)`` occupied-slot join
            (as from :func:`~repro.core.scheduler.slot_value_sources`);
            computed here when omitted.
        data_order: optional original-order -> balanced-order value
            permutation, persisted so the cache tier can warm-start
            without re-sorting.
        plan_order: the execution plan's stable destination-row sort over
            the slot arrays (as from :attr:`~repro.core.plan.
            ExecutionPlan.slot_order`); computed here when omitted.  The
            slot arrays are persisted *pre-sorted* by this order — the
            rebuild scatters on load are order-independent, so a version-3
            artifact yields a replay-ready plan from the very gathers the
            dense rebuild already performs, with no sort and no extra
            payload member.
    """
    if slots is None:
        steps, lanes, source = slot_value_sources(schedule, balanced.matrix)
    else:
        steps, lanes, source = slots
    source = np.asarray(source, dtype=np.intp)
    if plan_order is None:
        # The slots' global destination rows are the balanced matrix rows
        # they source from; their stable sort is the plan order.
        plan_order = np.argsort(balanced.matrix.rows[source], kind="stable")
    plan_order = np.asarray(plan_order, dtype=np.intp)
    steps = np.asarray(steps)[plan_order]
    lanes = np.asarray(lanes)[plan_order]
    source = source[plan_order]

    map_cols_parts = [cols for cols, _ in balanced.window_col_maps]
    map_lanes_parts = [lanes_part for _, lanes_part in balanced.window_col_maps]
    sizes = np.array([c.size for c in map_cols_parts], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    empty = np.zeros(0, dtype=np.int64)

    m, n = schedule.shape
    scalars = {
        "length": int(schedule.length),
        "shape": [int(m), int(n)],
        "stalls": int(stalls),
    }
    arrays: dict[str, np.ndarray] = {
        "matrix_rows": _compact_ints(balanced.matrix.rows),
        "matrix_cols": _compact_ints(balanced.matrix.cols),
        "matrix_data": np.asarray(balanced.matrix.data, dtype=np.float64),
        "row_perm": _compact_ints(balanced.row_perm),
        "map_cols": _compact_ints(
            np.concatenate(map_cols_parts) if map_cols_parts else empty
        ),
        "map_lanes": _compact_ints(
            np.concatenate(map_lanes_parts) if map_lanes_parts else empty
        ),
        "map_offsets": _compact_ints(offsets),
        "window_colors": _compact_ints(
            np.asarray(schedule.window_colors, dtype=np.int64)
        ),
        "slot_steps": _compact_ints(steps),
        "slot_lanes": _compact_ints(lanes),
        "slot_rows": _compact_ints(
            balanced.matrix.rows[source] % schedule.length
        ),
        "slot_source": _compact_ints(source),
    }
    if data_order is not None:
        # Persist only the inverse (balanced -> original): a warm start
        # needs exactly one gather through it, and the forward permutation
        # is rebuilt lazily on the first value refresh.
        inv_order = np.empty(data_order.size, dtype=np.int64)
        inv_order[data_order] = np.arange(data_order.size, dtype=np.int64)
        arrays["inv_order"] = _compact_ints(inv_order)
    _save_container(path, scalars, arrays)


def load_schedule_entry(
    path: str | Path, validate: bool = True
) -> StoredSchedule:
    """Read back an artifact written by :func:`save_schedule`.

    Verification order: magic/format version, then the CRC-32 integrity
    checksum over every byte of header and payload, then index bounds
    checks, then (with ``validate=True``) canonical-order and structural
    :meth:`Schedule.validate` checks.  A file failing any step raises
    :class:`ScheduleError`; a missing file raises
    :class:`FileNotFoundError` untouched so callers can distinguish "never
    persisted" from "persisted but corrupt".

    ``validate=False`` skips the two O(nnz log nnz) logical checks and is
    meant for the disk store's hot warm-start path: an artifact that
    passes its checksum is byte-identical to what :func:`save_schedule`
    wrote, so the residual risk is a writer bug, not disk corruption.
    """
    scalars, arrays, version = _load_container(path)
    missing = [name for name in _REQUIRED if name not in arrays]
    if missing:
        raise ScheduleError(
            f"schedule file {path} is missing members: {', '.join(missing)}"
        )
    try:
        length = int(scalars["length"])
        m, n = (int(v) for v in scalars["shape"])
        stalls = int(scalars["stalls"])
    except (KeyError, TypeError, ValueError) as err:
        raise ScheduleError(
            f"schedule file {path} has malformed scalar metadata: {err}"
        ) from err
    if length <= 0 or m < 0 or n < 0:
        raise ScheduleError(f"schedule file {path} has impossible dimensions")

    window_colors = arrays["window_colors"].astype(np.int64)
    if window_colors.size and int(window_colors.min()) < 0:
        raise ScheduleError("negative window color count in artifact")
    total = int(window_colors.sum())
    nnz = int(arrays["matrix_data"].size)

    # Under validate=True the int64 canonical dtype contract is restored;
    # the checksum-trusted fast path keeps the narrow on-disk dtypes (all
    # downstream arithmetic promotes against np.int64 scalars).
    rows = arrays["matrix_rows"]
    cols = arrays["matrix_cols"]
    if validate:
        rows = rows.astype(np.int64)
        cols = cols.astype(np.int64)
    data = arrays["matrix_data"]
    if rows.size != nnz or cols.size != nnz:
        raise ScheduleError("matrix index/value arrays disagree on nnz")

    steps = arrays["slot_steps"]
    lanes = arrays["slot_lanes"]
    slot_rows = arrays["slot_rows"]
    source = arrays["slot_source"]
    if not (steps.size == lanes.size == source.size == nnz):
        raise ScheduleError("slot arrays disagree with the matrix nnz")
    if slot_rows.size != nnz:
        raise ScheduleError("slot row array disagrees with the matrix nnz")
    if nnz > total * length:
        # Pigeonhole: more scheduled nonzeros than schedule slots.  Also
        # closes the total == 0 corner the per-element bounds below would
        # admit (max(total, 1) keeps an empty range checkable).
        raise ScheduleError(
            f"schedule file {path} holds {nnz} nonzeros in "
            f"{total}x{length} slots"
        )
    # Bounds always precede any fancy indexing (even on the checksum-
    # trusted fast path): the checksum proves these are the writer's
    # bytes, but a *writer bug* could still persist out-of-range indices,
    # and the store's quarantine contract requires that to surface as a
    # clean ScheduleError at load time — not a bare IndexError escaping
    # the lookup, or a deferred failure from the lazy dense rebuild after
    # the entry has already been served.  Each check is one O(nnz)
    # min/max pass over a narrow array.
    _check_range("matrix_rows", rows, 0, max(m, 1))
    _check_range("matrix_cols", cols, 0, max(n, 1))
    _check_range("slot_steps", steps, 0, max(total, 1))
    _check_range("slot_lanes", lanes, 0, length)
    _check_range("slot_rows", slot_rows, 0, length)
    _check_range("slot_source", source, 0, max(nnz, 1))
    if validate:
        expected_rows = rows[source.astype(np.intp)] % length
        if not np.array_equal(slot_rows, expected_rows.astype(slot_rows.dtype)):
            raise ScheduleError(
                "slot_rows disagree with the matrix rows they index"
            )

    # The dense Section 3.3 triple is *deferred*: the compact slot form
    # is everything the plan-based replay needs, so the (C_total, l)
    # arrays — mostly empty slots — rebuild lazily on first access
    # (three O(nnz) scatters at that point; see :class:`_CompactSchedule`).
    # The gathers below are shared with the execution-plan rebuild.
    slot_source = source.astype(np.intp)
    slot_values = data[slot_source] if nnz else data[:0]
    slot_cols = cols[slot_source] if nnz else cols[:0]
    flat = (
        steps.astype(np.intp) * length + lanes
        if nnz
        else np.zeros(0, dtype=np.intp)
    )
    schedule = _CompactSchedule(
        length=length,
        shape=(m, n),
        window_colors=tuple(window_colors.tolist()),
        total=total,
        flat=flat,
        slot_values=slot_values,
        slot_rows=slot_rows,
        slot_cols=slot_cols,
    )

    row_perm = arrays["row_perm"]
    if row_perm.size != m:
        raise ScheduleError("row permutation length does not match matrix")
    # row_perm drives the replay-side gather, so its bounds are enforced
    # on every path too.
    _check_range("row_perm", row_perm, 0, max(m, 1))
    if validate:
        row_perm = row_perm.astype(np.int64)
    matrix = CooMatrix(rows=rows, cols=cols, data=data, shape=(m, n))

    offsets = arrays["map_offsets"].astype(np.int64)
    map_cols = arrays["map_cols"].astype(np.int64)
    map_lanes = arrays["map_lanes"].astype(np.int64)
    if (
        offsets.size != window_colors.size + 1
        or offsets.size == 0
        or int(offsets[-1]) != map_cols.size
        or map_lanes.size != map_cols.size
        or (offsets.size > 1 and (np.diff(offsets) < 0).any())
    ):
        raise ScheduleError(
            f"schedule file {path} has inconsistent window map offsets"
        )
    bounds = offsets.tolist()
    maps = [
        (map_cols[lo:hi], map_lanes[lo:hi])
        for lo, hi in zip(bounds, bounds[1:])
    ]
    balanced = BalancedMatrix(matrix=matrix, row_perm=row_perm, window_col_maps=maps)

    data_order = arrays.get("data_order")
    inv_order = arrays.get("inv_order")
    if data_order is not None:
        if data_order.size != nnz:
            raise ScheduleError("data_order length does not match nnz")
        _check_range("data_order", data_order, 0, max(nnz, 1))
    if inv_order is not None:
        # inv_order feeds the cache tier's warm-start gather after this
        # function returns, so it is bounds-checked on every path.
        if inv_order.size != nnz:
            raise ScheduleError("inv_order length does not match nnz")
        _check_range("inv_order", inv_order, 0, max(nnz, 1))

    # Reconstitute the replay-ready execution plan.  A version-3 artifact
    # persists its slot arrays already in destination-row order, so the
    # plan is assembled from the gathers the dense rebuild just performed
    # — no sort, no extra gathers beyond the per-slot row lookup.  A
    # version-2 artifact (scan-ordered slots) recompiles the sort.
    plan_rows = rows[slot_source] if nnz else rows[:0]
    if version >= 3:
        plan = ExecutionPlan.from_sorted(
            length=length,
            shape=(m, n),
            values=slot_values,
            sources=slot_cols,
            rows=plan_rows,
            slot_order=None,
            row_perm=row_perm,
            value_source=slot_source,
        )
    else:
        plan_order = np.argsort(plan_rows, kind="stable").astype(np.intp)
        source_sorted = slot_source[plan_order]
        plan = ExecutionPlan.from_sorted(
            length=length,
            shape=(m, n),
            values=data[source_sorted],
            sources=cols[source_sorted],
            rows=plan_rows[plan_order],
            slot_order=plan_order,
            row_perm=row_perm,
            value_source=source_sorted,
        )

    if validate:
        # Canonical order underpins every searchsorted join downstream.
        keys = rows * np.int64(max(n, 1)) + cols
        if keys.size > 1 and not (np.diff(keys) > 0).all():
            raise ScheduleError(
                f"schedule file {path} holds a non-canonical matrix"
            )
        if data_order is not None and data_order.size:
            counts = np.bincount(data_order, minlength=nnz)
            if counts.max() != 1:
                raise ScheduleError("data_order is not a permutation")
        # Count occupancy from the (materialized) dense arrays, not the
        # compact slot count: duplicate (step, lane) coordinates merge in
        # the scatter and must be caught here.
        if int((schedule.row_sch != EMPTY).sum()) != nnz:
            raise ScheduleError(
                "slot coordinates collide; fewer occupied slots than nonzeros"
            )
        schedule.validate()
        # Schedule-level diagnostics first (collisions, ranges), then the
        # plan's own structural checks (sortedness, segment boundaries).
        plan.validate()

    return StoredSchedule(
        schedule=schedule,
        balanced=balanced,
        stalls=stalls,
        slot_steps=steps,
        slot_lanes=lanes,
        slot_source=source,
        data_order=data_order,
        inv_order=inv_order,
        plan=plan,
    )


def load_schedule(path: str | Path) -> tuple[Schedule, BalancedMatrix]:
    """Read back a (schedule, balanced) pair written by :func:`save_schedule`.

    The artifact is checksum-verified and re-validated on load, so a
    corrupted or tampered file fails loudly instead of producing silent
    collisions.  See :func:`load_schedule_entry` for the stall and join
    metadata.
    """
    entry = load_schedule_entry(path)
    return entry.schedule, entry.balanced
