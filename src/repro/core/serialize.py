"""Schedule persistence: save and reload preprocessing results.

The paper's economics rest on preprocessing being a one-time cost per
matrix (Table 4 spends seconds scheduling, then sub-millisecond SpMVs).  A
deployment therefore wants schedules on disk.  This module serializes a
(:class:`Schedule`, :class:`BalancedMatrix`-metadata) pair to a single
``.npz`` so a solver can restart without rescheduling.

Only the balancer's *outputs* (row permutation, per-window column maps) are
stored — not the matrix values, which the schedule already carries.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.load_balance import BalancedMatrix
from repro.core.schedule import Schedule
from repro.errors import ScheduleError
from repro.sparse.coo import CooMatrix

_FORMAT_VERSION = 1


def save_schedule(
    path: str | Path, schedule: Schedule, balanced: BalancedMatrix
) -> None:
    """Write a schedule and its balancing metadata to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "length": np.array([schedule.length], dtype=np.int64),
        "shape": np.asarray(schedule.shape, dtype=np.int64),
        "m_sch": schedule.m_sch,
        "row_sch": schedule.row_sch,
        "col_sch": schedule.col_sch,
        "window_colors": np.asarray(schedule.window_colors, dtype=np.int64),
        "row_perm": balanced.row_perm,
        "matrix_rows": balanced.matrix.rows,
        "matrix_cols": balanced.matrix.cols,
        "matrix_data": balanced.matrix.data,
    }
    for index, (cols, lanes) in enumerate(balanced.window_col_maps):
        arrays[f"map_cols_{index}"] = cols
        arrays[f"map_lanes_{index}"] = lanes
    np.savez_compressed(Path(path), **arrays)


def load_schedule(path: str | Path) -> tuple[Schedule, BalancedMatrix]:
    """Read back a (schedule, balanced) pair written by :func:`save_schedule`.

    The schedule is re-validated on load, so a corrupted or tampered file
    fails loudly instead of producing silent collisions.
    """
    with np.load(Path(path)) as archive:
        version = int(archive["version"][0])
        if version != _FORMAT_VERSION:
            raise ScheduleError(
                f"schedule file version {version} unsupported "
                f"(expected {_FORMAT_VERSION})"
            )
        shape = tuple(int(v) for v in archive["shape"])
        schedule = Schedule(
            length=int(archive["length"][0]),
            shape=shape,  # type: ignore[arg-type]
            m_sch=archive["m_sch"],
            row_sch=archive["row_sch"],
            col_sch=archive["col_sch"],
            window_colors=tuple(int(c) for c in archive["window_colors"]),
        )
        matrix = CooMatrix.from_arrays(
            archive["matrix_rows"],
            archive["matrix_cols"],
            archive["matrix_data"],
            shape,
        )
        maps = []
        index = 0
        while f"map_cols_{index}" in archive:
            maps.append(
                (archive[f"map_cols_{index}"], archive[f"map_lanes_{index}"])
            )
            index += 1
        balanced = BalancedMatrix(
            matrix=matrix,
            row_perm=archive["row_perm"],
            window_col_maps=maps,
        )
    schedule.validate()
    if len(balanced.window_col_maps) != schedule.window_count:
        raise ScheduleError(
            "window map count does not match the schedule's window count"
        )
    return schedule, balanced
