"""Pattern-keyed schedule cache: pay GUST preprocessing once per pattern.

The paper's economics (Section 3.3, Table 4) rest on scheduling being a
one-time cost amortized over many SpMV replays.  Iterative workloads
stretch that further: a Newton solver re-assembles a Jacobian with the same
sparsity pattern but new values every step, and an SpMM replays one
schedule per dense column.  This module makes that amortization automatic:

* The cache key is a fingerprint of everything the *coloring* depends on —
  the sparsity pattern (rows, cols, shape) plus the scheduling
  configuration (length, algorithm, load-balance flag).  An identity memo
  recognizes the shared index arrays of :meth:`CooMatrix.with_data`
  matrices so steady-state lookups skip rehashing; values are compared
  directly against a stored snapshot (memcmp-speed equality), so even
  in-place edits of a cached matrix's data register as changes.
* A lookup with identical pattern **and** values returns the stored
  schedule outright (a *hit*).
* A lookup with identical pattern but new values performs a *refresh*: the
  stored coloring, row permutation, and slot->entry join are reused, so
  only the value scatter runs — O(nnz) fancy indexing, orders of magnitude
  cheaper than rescheduling (``benchmarks/bench_scheduling_throughput.py``
  demands >= 50x).
* Anything else is a *miss*; the caller schedules cold and inserts.

Entries are kept in LRU order with a bounded capacity.  The cache is not
thread-safe; wrap it externally if shared across threads.

Used by :class:`repro.core.pipeline.GustPipeline` (pass ``cache=``) and,
through it, :class:`repro.core.spmm.GustSpmm` and every solver in
:mod:`repro.solvers` that reuses a pipeline across calls.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.load_balance import BalancedMatrix
from repro.core.schedule import Schedule
from repro.core.scheduler import slot_value_sources
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class CacheStats:
    """Counters for one :class:`ScheduleCache` instance."""

    hits: int = 0
    refreshes: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.refreshes + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a cold scheduling pass."""
        total = self.lookups
        return (self.hits + self.refreshes) / total if total else 0.0


@dataclass
class _Entry:
    """One cached schedule plus the metadata needed for value refreshes."""

    schedule: Schedule
    balanced: BalancedMatrix
    #: snapshot of the original-order value stream the stored schedule was
    #: built from (a copy, so in-place edits of the caller's array differ).
    last_data: np.ndarray
    #: original-order data -> balanced-order data permutation.
    data_order: np.ndarray
    #: occupied slot coordinates and their balanced-data source indices.
    slot_steps: np.ndarray
    slot_lanes: np.ndarray
    slot_source: np.ndarray
    #: naive-policy stall count captured at scheduling time.
    stalls: int


def pattern_digest(
    matrix: CooMatrix, length: int, algorithm: str, load_balance: bool
) -> bytes:
    """Fingerprint of the inputs the edge coloring depends on."""
    h = hashlib.blake2b(digest_size=16)
    m, n = matrix.shape
    h.update(
        np.array([m, n, length, int(load_balance)], dtype=np.int64).tobytes()
    )
    h.update(algorithm.encode("utf-8"))
    h.update(np.ascontiguousarray(matrix.rows).tobytes())
    h.update(np.ascontiguousarray(matrix.cols).tobytes())
    return h.digest()


class ScheduleCache:
    """Bounded LRU cache of (pattern, config) -> prepared schedule.

    Args:
        capacity: maximum number of distinct patterns retained.
    """

    def __init__(self, capacity: int = 8):
        if capacity <= 0:
            raise HardwareConfigError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[bytes, _Entry] = OrderedDict()
        # Identity memo: CooMatrix.with_data shares the index arrays of its
        # source, so repeated lookups for a pattern usually present the
        # *same* rows/cols objects and can skip rehashing ~nnz bytes.  Keyed
        # by array identity, guarded by weakrefs so a recycled id() of a
        # collected array can never alias.
        self._digest_memo: OrderedDict[
            tuple, tuple[weakref.ref, weakref.ref, bytes]
        ] = OrderedDict()
        self._hits = 0
        self._refreshes = 0
        self._misses = 0
        self._evictions = 0

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            refreshes=self._refreshes,
            misses=self._misses,
            evictions=self._evictions,
        )

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        self._entries.clear()
        self._digest_memo.clear()

    # -- fingerprints -------------------------------------------------------

    def _pattern_key(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
    ) -> bytes:
        memo_key = (
            id(matrix.rows),
            id(matrix.cols),
            matrix.shape,
            length,
            algorithm,
            load_balance,
        )
        memoized = self._digest_memo.get(memo_key)
        if memoized is not None:
            rows_ref, cols_ref, digest = memoized
            if rows_ref() is matrix.rows and cols_ref() is matrix.cols:
                self._digest_memo.move_to_end(memo_key)
                return digest
        digest = pattern_digest(matrix, length, algorithm, load_balance)
        self._digest_memo[memo_key] = (
            weakref.ref(matrix.rows),
            weakref.ref(matrix.cols),
            digest,
        )
        while len(self._digest_memo) > 4 * self.capacity:
            self._digest_memo.popitem(last=False)
        return digest

    # -- lookup / insert ----------------------------------------------------

    def fetch(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
    ) -> tuple[Schedule, BalancedMatrix, int, bool] | None:
        """Return ``(schedule, balanced, stalls, refreshed)`` or None on miss.

        A pattern hit with changed values refreshes the stored schedule in
        place: only the value scatter runs; the coloring, permutation, and
        slot join are reused.
        """
        key = self._pattern_key(matrix, length, algorithm, load_balance)
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)

        if np.array_equal(matrix.data, entry.last_data):
            self._hits += 1
            return entry.schedule, entry.balanced, entry.stalls, False

        # Same pattern, new values: rebuild the permuted value stream and
        # scatter it into a fresh M_sch; index arrays are shared.
        self._refreshes += 1
        permuted_data = matrix.data[entry.data_order]
        old = entry.balanced
        refreshed_matrix = CooMatrix(
            rows=old.matrix.rows,
            cols=old.matrix.cols,
            data=permuted_data,
            shape=old.matrix.shape,
        )
        balanced = BalancedMatrix(
            matrix=refreshed_matrix,
            row_perm=old.row_perm,
            window_col_maps=old.window_col_maps,
        )
        m_sch = np.zeros_like(entry.schedule.m_sch)
        m_sch[entry.slot_steps, entry.slot_lanes] = permuted_data[
            entry.slot_source
        ]
        schedule = Schedule(
            length=entry.schedule.length,
            shape=entry.schedule.shape,
            m_sch=m_sch,
            row_sch=entry.schedule.row_sch,
            col_sch=entry.schedule.col_sch,
            window_colors=entry.schedule.window_colors,
        )
        entry.schedule = schedule
        entry.balanced = balanced
        # Snapshot, not alias: an in-place edit of the caller's data array
        # must read as "values changed" on the next lookup.
        entry.last_data = matrix.data.copy()
        return schedule, balanced, entry.stalls, True

    def insert(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
        schedule: Schedule,
        balanced: BalancedMatrix,
        stalls: int = 0,
    ) -> None:
        """Store a cold-scheduled result for future hits/refreshes.

        ``matrix`` is the *original* (pre-permutation) operand the caller
        scheduled; the entry records how its value stream maps into the
        balanced order so refreshes can skip re-canonicalization.
        """
        key = self._pattern_key(matrix, length, algorithm, load_balance)
        data_order = np.lexsort((matrix.cols, balanced.row_perm[matrix.rows]))
        steps, lanes, source = slot_value_sources(schedule, balanced.matrix)
        self._entries[key] = _Entry(
            schedule=schedule,
            balanced=balanced,
            last_data=matrix.data.copy(),
            data_order=data_order,
            slot_steps=steps,
            slot_lanes=lanes,
            slot_source=source,
            stalls=stalls,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
