"""Pattern-keyed schedule cache: pay GUST preprocessing once per pattern.

The paper's economics (Section 3.3, Table 4) rest on scheduling being a
one-time cost amortized over many SpMV replays.  Iterative workloads
stretch that further: a Newton solver re-assembles a Jacobian with the same
sparsity pattern but new values every step, and an SpMM replays one
schedule per dense column.  This module makes that amortization automatic:

* The cache key is a fingerprint of everything the *coloring* depends on —
  the sparsity pattern (rows, cols, shape) plus the scheduling
  configuration (length, algorithm, load-balance flag).  An identity memo
  recognizes the shared index arrays of :meth:`CooMatrix.with_data`
  matrices so steady-state lookups skip rehashing; values are compared
  directly against a stored snapshot (memcmp-speed equality), so even
  in-place edits of a cached matrix's data register as changes.
* A lookup with identical pattern **and** values returns the stored
  schedule outright (a *hit*).
* A lookup with identical pattern but new values performs a *refresh*: the
  stored coloring, row permutation, and slot->entry join are reused, so
  only the value scatter runs — O(nnz) fancy indexing, orders of magnitude
  cheaper than rescheduling (``benchmarks/bench_scheduling_throughput.py``
  demands >= 50x).
* Anything else is a *miss*; the caller schedules cold and inserts.

Persistent tier
---------------

Pass ``store=`` (a :class:`~repro.core.store.DiskScheduleStore`) to layer a
content-addressed on-disk tier underneath: lookups then go **memory ->
disk -> compute**.  A memory miss consults the store; a disk hit
reconstitutes the full in-memory entry (including the value-refresh
metadata) and is then served through the normal hit/refresh logic — so a
worker process restarted against a warm store pays a file read, never a
coloring, even when the matrix values have moved since the artifact was
written.  :meth:`insert` writes through to the store, and artifacts are
shared freely between processes (atomic writes, checksum-verified reads).
Value refreshes do *not* rewrite the artifact: the coloring it persists is
value-independent, and the refresh machinery re-derives values on load.

Entries are kept in LRU order with a bounded capacity.  The cache is
thread-safe: every lookup, insert, and stats read runs under one
re-entrant lock, so a registry of serving tenants can share a single
cache across registration threads and metrics readers.  (The disk tier
is additionally multi-process safe via atomic artifact writes.)  The
lock serializes value refreshes too — a refresh mutates the stored
entry in place, and two threads refreshing one entry concurrently must
not interleave.

Used by :class:`repro.core.pipeline.GustPipeline` (pass ``cache=`` /
``store=``) and, through it, :class:`repro.core.spmm.GustSpmm` and every
solver in :mod:`repro.solvers` that reuses a pipeline across calls.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import obs as _obs
from repro.analysis.runtime import validation_enabled
from repro.core.load_balance import BalancedMatrix
from repro.core.plan import ExecutionPlan
from repro.core.schedule import Schedule
from repro.core.scheduler import slot_value_sources
from repro.core.store import DiskScheduleStore, store_key_from_digest
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class CacheStats:
    """Counters for one :class:`ScheduleCache` instance.

    ``hits``/``refreshes`` count every lookup that avoided a cold
    scheduling pass, whichever tier satisfied it; ``disk_hits`` records the
    subset that was served from the persistent store, and ``disk_misses``
    the memory misses that consulted the store and found nothing usable.
    """

    hits: int = 0
    refreshes: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.refreshes + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a cold scheduling pass."""
        total = self.lookups
        return (self.hits + self.refreshes) / total if total else 0.0


@dataclass(frozen=True)
class CacheLookup:
    """Result of a :meth:`ScheduleCache.fetch` that found the pattern."""

    schedule: Schedule
    balanced: BalancedMatrix
    stalls: int
    #: True when the stored coloring was reused but the value scatter ran.
    refreshed: bool
    #: True when the entry was faulted in from the persistent store.
    from_disk: bool
    #: The prepared executor for this schedule (refreshed in lockstep with
    #: the value stream); ``None`` only for legacy entries without slot
    #: metadata.
    plan: ExecutionPlan | None = None


@dataclass
class _Entry:
    """One cached schedule plus the metadata needed for value refreshes."""

    schedule: Schedule
    balanced: BalancedMatrix
    #: snapshot of the original-order value stream the stored schedule was
    #: built from (a copy, so in-place edits of the caller's array differ).
    last_data: np.ndarray
    #: original-order data -> balanced-order data permutation.  May be
    #: ``None`` for entries faulted in from a disk artifact (which persists
    #: only the inverse); materialized lazily on the first value refresh.
    data_order: np.ndarray | None
    #: occupied slot coordinates and their balanced-data source indices.
    slot_steps: np.ndarray
    slot_lanes: np.ndarray
    slot_source: np.ndarray
    #: naive-policy stall count captured at scheduling time.
    stalls: int
    #: prepared executor compiled from the stored schedule; its values are
    #: refreshed in lockstep with ``schedule.m_sch`` on value refreshes.
    plan: ExecutionPlan | None = None
    #: balanced-order -> original-order permutation from a disk artifact.
    inv_order: np.ndarray | None = None


def pattern_digest(
    matrix: CooMatrix, length: int, algorithm: str, load_balance: bool
) -> bytes:
    """Fingerprint of the inputs the edge coloring depends on.

    The index arrays are hashed as one combined ``row * n + col`` key per
    nonzero — bijective given the (m, n) already in the header, and half
    the bytes of hashing rows and cols separately, which matters because
    this digest sits on the warm-start path of every store lookup.
    SHA-256 over blake2b for the same reason: hardware SHA extensions make
    it ~2x faster per byte here, and the digest only needs to be
    collision-free, not keyed.
    """
    h = hashlib.sha256()
    m, n = matrix.shape
    h.update(
        np.array([m, n, length, int(load_balance)], dtype=np.int64).tobytes()
    )
    h.update(algorithm.encode("utf-8"))
    keys = matrix.rows.astype(np.int64) * np.int64(max(n, 1)) + matrix.cols
    if keys.size and m * n <= np.iinfo(np.int32).max:
        # Same information, half the bytes to hash.  The narrowing is a
        # pure function of (m, n), so every process derives the same
        # digest for one pattern.
        keys = keys.astype(np.int32)
    h.update(np.ascontiguousarray(keys).tobytes())
    return h.digest()


class ScheduleCache:
    """Bounded LRU cache of (pattern, config) -> prepared schedule.

    Args:
        capacity: maximum number of distinct patterns retained in memory.
        store: optional persistent tier consulted on memory misses and
            written through on inserts.
    """

    def __init__(
        self, capacity: int = 8, store: DiskScheduleStore | None = None
    ):
        if capacity <= 0:
            raise HardwareConfigError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.store = store
        # Re-entrant: fetch -> store.load -> (callbacks) may re-enter, and
        # callers composing fetch+insert under their own use of the cache
        # must never deadlock against the internal guard.
        self._lock = threading.RLock()
        self._entries: OrderedDict[bytes, _Entry] = OrderedDict()  # guarded-by: _lock
        # Identity memo: CooMatrix.with_data shares the index arrays of its
        # source, so repeated lookups for a pattern usually present the
        # *same* rows/cols objects and can skip rehashing ~nnz bytes.  Keyed
        # by array identity, guarded by weakrefs so a recycled id() of a
        # collected array can never alias.
        self._digest_memo: OrderedDict[
            tuple, tuple[weakref.ref, weakref.ref, bytes]
        ] = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._refreshes = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._disk_hits = 0  # guarded-by: _lock
        self._disk_misses = 0  # guarded-by: _lock

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                refreshes=self._refreshes,
                misses=self._misses,
                evictions=self._evictions,
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
            )

    def clear(self) -> None:
        """Drop every in-memory entry (statistics and the disk tier are
        untouched; use ``cache.store.clear()`` to purge artifacts)."""
        with self._lock:
            self._entries.clear()
            self._digest_memo.clear()

    # -- fingerprints -------------------------------------------------------

    def _pattern_key(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
    ) -> bytes:  # guarded-by: _lock
        memo_key = (
            id(matrix.rows),
            id(matrix.cols),
            matrix.shape,
            length,
            algorithm,
            load_balance,
        )
        memoized = self._digest_memo.get(memo_key)
        if memoized is not None:
            rows_ref, cols_ref, digest = memoized
            if rows_ref() is matrix.rows and cols_ref() is matrix.cols:
                self._digest_memo.move_to_end(memo_key)
                return digest
        digest = pattern_digest(matrix, length, algorithm, load_balance)
        self._digest_memo[memo_key] = (
            weakref.ref(matrix.rows),
            weakref.ref(matrix.cols),
            digest,
        )
        while len(self._digest_memo) > 4 * self.capacity:
            self._digest_memo.popitem(last=False)
        return digest

    # -- lookup / insert ----------------------------------------------------

    def fetch(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
    ) -> CacheLookup | None:
        """Return a :class:`CacheLookup` or ``None`` on a full miss.

        Lookup order is memory -> disk -> caller computes.  A pattern hit
        with changed values refreshes the stored schedule in place: only
        the value scatter runs; the coloring, permutation, and slot join
        are reused.  Entries faulted in from the disk tier go through the
        identical hit/refresh logic, so a warm store serves value-updated
        matrices without recoloring.
        """
        started = _obs.monotonic()
        with self._lock:
            key = self._pattern_key(matrix, length, algorithm, load_balance)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                served = self._serve(entry, matrix, from_disk=False)
                self._observe_lookup("memory", started)
                return served

            if self.store is not None:
                with _obs.span("cache.disk_load", cat="cache"):
                    stored = self.store.load(
                        store_key_from_digest(key, matrix.nnz)
                    )
                if stored is not None:
                    self._disk_hits += 1
                    entry = self._entry_from_artifact(matrix, stored)
                    self._put(key, entry)
                    served = self._serve(entry, matrix, from_disk=True)
                    self._observe_lookup("disk", started)
                    return served
                self._disk_misses += 1

            self._misses += 1
            self._observe_lookup("miss", started)
            return None

    @staticmethod
    def _observe_lookup(tier: str, started: float) -> None:
        """Per-tier lookup latency: which tier *resolved* the fetch
        (``miss`` = the cost of discovering nothing had it; the compute
        tier's latency is observed by the pipeline's cold path)."""
        _obs.default_registry().histogram(
            "gust_cache_lookup_seconds",
            help="Schedule-cache lookup latency by resolving tier.",
        ).observe(_obs.monotonic() - started, tier=tier)

    def _serve(
        self, entry: _Entry, matrix: CooMatrix, from_disk: bool
    ) -> CacheLookup:  # guarded-by: _lock
        """Serve one entry: verbatim hit, or in-place value refresh.

        Caller (``fetch``) holds ``self._lock``, which also covers the
        in-place mutation of ``entry``.
        """
        if np.array_equal(matrix.data, entry.last_data):
            self._hits += 1
            return CacheLookup(
                schedule=entry.schedule,
                balanced=entry.balanced,
                stalls=entry.stalls,
                refreshed=False,
                from_disk=from_disk,
                plan=entry.plan,
            )

        # Same pattern, new values: rebuild the permuted value stream and
        # scatter it into a fresh M_sch; index arrays are shared.
        self._refreshes += 1
        if entry.data_order is None:
            entry.data_order = self._materialize_data_order(entry, matrix)
        permuted_data = matrix.data[entry.data_order]
        old = entry.balanced
        refreshed_matrix = CooMatrix(
            rows=old.matrix.rows,
            cols=old.matrix.cols,
            data=permuted_data,
            shape=old.matrix.shape,
        )
        balanced = BalancedMatrix(
            matrix=refreshed_matrix,
            row_perm=old.row_perm,
            window_col_maps=old.window_col_maps,
        )
        m_sch = np.zeros_like(entry.schedule.m_sch)
        m_sch[entry.slot_steps, entry.slot_lanes] = permuted_data[
            entry.slot_source
        ]
        schedule = Schedule(
            length=entry.schedule.length,
            shape=entry.schedule.shape,
            m_sch=m_sch,
            row_sch=entry.schedule.row_sch,
            col_sch=entry.schedule.col_sch,
            window_colors=entry.schedule.window_colors,
        )
        entry.schedule = schedule
        entry.balanced = balanced
        if entry.plan is not None:
            # One O(nnz) gather: the plan's sorted structure is value-
            # independent, so a refresh rides the same coloring reuse.
            entry.plan = entry.plan.with_values(permuted_data)
        # Snapshot, not alias: an in-place edit of the caller's data array
        # must read as "values changed" on the next lookup.
        entry.last_data = matrix.data.copy()
        return CacheLookup(
            schedule=schedule,
            balanced=balanced,
            stalls=entry.stalls,
            refreshed=True,
            from_disk=from_disk,
            plan=entry.plan,
        )

    def _entry_from_artifact(
        self, matrix: CooMatrix, stored
    ) -> _Entry:
        """Reconstitute the in-memory entry for a disk artifact.

        The artifact persists the *balanced-order* matrix plus the slot
        join, and — when written through a cache like this one — the
        original->balanced permutation.  The requesting ``matrix`` supplies
        the original-order pattern (identical by key construction), so the
        only work here is scattering the artifact's values back into
        original order for the hit/refresh comparison; the sorts and
        searchsorted joins were paid once at write time.
        """
        balanced = stored.balanced
        data_order = stored.data_order
        if stored.inv_order is not None:
            # Gather via the persisted inverse permutation (cheaper than
            # the scatter the forward form would need); the forward
            # permutation stays lazy until a value refresh needs it.
            artifact_data = balanced.matrix.data[stored.inv_order]
        else:
            if data_order is None:
                data_order = np.lexsort(
                    (matrix.cols, balanced.row_perm[matrix.rows])
                )
            artifact_data = np.empty_like(balanced.matrix.data)
            artifact_data[data_order] = balanced.matrix.data
        return _Entry(
            schedule=stored.schedule,
            balanced=balanced,
            last_data=artifact_data,
            data_order=data_order,
            slot_steps=stored.slot_steps,
            slot_lanes=stored.slot_lanes,
            slot_source=stored.slot_source,
            stalls=stored.stalls,
            plan=stored.plan,
            inv_order=stored.inv_order,
        )

    @staticmethod
    def _materialize_data_order(entry: _Entry, matrix: CooMatrix) -> np.ndarray:
        """Forward (original -> balanced) permutation for a lazy entry."""
        inv = entry.inv_order
        if inv is not None:
            order = np.empty(inv.size, dtype=np.int64)
            order[inv] = np.arange(inv.size, dtype=np.int64)
            return order
        return np.lexsort((matrix.cols, entry.balanced.row_perm[matrix.rows]))

    def _put(self, key: bytes, entry: _Entry) -> None:  # guarded-by: _lock
        """Install an entry at most-recent position, evicting over capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def insert(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
        schedule: Schedule,
        balanced: BalancedMatrix,
        stalls: int = 0,
    ) -> ExecutionPlan:
        """Store a cold-scheduled result for future hits/refreshes.

        ``matrix`` is the *original* (pre-permutation) operand the caller
        scheduled; the entry records how its value stream maps into the
        balanced order so refreshes can skip re-canonicalization.  The
        prepared :class:`~repro.core.plan.ExecutionPlan` is compiled here
        (and returned, so the scheduling pipeline can start replaying
        immediately).  With a persistent tier attached, the result is also
        written through to disk — including the plan's sort order, so a
        warm start is replay-ready without re-sorting (skipped when the
        content-addressed artifact already exists; the coloring and plan
        structure it stores are value-independent).
        """
        data_order = np.lexsort((matrix.cols, balanced.row_perm[matrix.rows]))
        steps, lanes, source = slot_value_sources(schedule, balanced.matrix)
        plan = ExecutionPlan.from_schedule(
            schedule, row_perm=balanced.row_perm, slots=(steps, lanes, source)
        )
        if validation_enabled():
            plan.validate()
        with self._lock:
            key = self._pattern_key(matrix, length, algorithm, load_balance)
            self._put(
                key,
                _Entry(
                    schedule=schedule,
                    balanced=balanced,
                    last_data=matrix.data.copy(),
                    data_order=data_order,
                    slot_steps=steps,
                    slot_lanes=lanes,
                    slot_source=source,
                    stalls=stalls,
                    plan=plan,
                ),
            )
            if self.store is not None:
                store_key = store_key_from_digest(key, matrix.nnz)
                if not self.store.contains(store_key):
                    self.store.store(
                        store_key,
                        schedule,
                        balanced,
                        stalls=stalls,
                        slots=(steps, lanes, source),
                        data_order=data_order,
                        plan_order=plan.slot_order,
                    )
        return plan
