"""GUST's software half: scheduling, load balancing, and the machine model.

The public entry point is :class:`~repro.core.pipeline.GustPipeline`, which
bundles preprocessing (windowing + load balancing + edge coloring) with
execution (fast vectorized replay or the cycle-accurate machine).
"""

from repro.core.backends import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.bounds import (
    expected_colors,
    expected_execution_cycles,
    expected_utilization,
)
from repro.core.cache import CacheLookup, CacheStats, ScheduleCache
from repro.core.compiled import CompiledSpmv, CompiledStats
from repro.core.load_balance import BalancedMatrix, LoadBalancer
from repro.core.machine import GustMachine, MachineResult
from repro.core.naive import (
    naive_coloring,
    naive_coloring_flat,
    naive_stalls,
    naive_stalls_flat,
)
from repro.core.parallel import ParallelGust
from repro.core.pipeline import GustPipeline, PipelineResult
from repro.core.plan import ExecutionPlan
from repro.core.schedule import Schedule
from repro.core.scheduler import GustScheduler
from repro.core.serialize import (
    StoredSchedule,
    load_schedule,
    load_schedule_entry,
    save_schedule,
)
from repro.core.spmm import GustSpmm, SpmmResult
from repro.core.store import (
    DiskScheduleStore,
    DiskStoreStats,
    default_store_dir,
)

__all__ = [
    "BackendCapabilities",
    "BalancedMatrix",
    "CacheLookup",
    "CacheStats",
    "CompiledKernel",
    "CompiledSpmv",
    "CompiledStats",
    "ReplayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "DiskScheduleStore",
    "DiskStoreStats",
    "StoredSchedule",
    "default_store_dir",
    "load_schedule_entry",
    "ExecutionPlan",
    "GustMachine",
    "GustPipeline",
    "GustScheduler",
    "GustSpmm",
    "LoadBalancer",
    "MachineResult",
    "ParallelGust",
    "PipelineResult",
    "Schedule",
    "ScheduleCache",
    "SpmmResult",
    "expected_colors",
    "expected_execution_cycles",
    "expected_utilization",
    "load_schedule",
    "naive_coloring",
    "naive_coloring_flat",
    "naive_stalls",
    "naive_stalls_flat",
    "save_schedule",
]
