"""Cycle-accurate GUST machine: the hardware of Figure 2, cycle by cycle.

Three pipeline stages — multipliers, crossbar, adders — with four FIFO input
streams filled window-by-window by the Buffer Filler.  The machine exists to
*validate* the analytic model: tests prove its cycle count equals
``Schedule.execution_cycles`` and its output equals the numpy oracle, and
that a stream with a manufactured collision trips the crossbar's
:class:`~repro.errors.CollisionError`.

For large experiments use the fast replay in
:class:`~repro.core.pipeline.GustPipeline`; this machine is O(cycles * l)
Python and meant for small and medium instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import EMPTY, PIPELINE_FILL_CYCLES, Schedule
from repro.errors import HardwareConfigError
from repro.hw.arith import AdderBank, MultiplierBank
from repro.hw.crossbar import Crossbar
from repro.hw.fifo import Fifo
from repro.hw.memory import MemoryModel, StreamStats


@dataclass(frozen=True)
class MachineResult:
    """Outcome of one cycle-accurate run.

    ``y_permuted`` is in scheduled (possibly load-balanced) row order; the
    pipeline maps it back with the balancer's permutation.
    """

    y_permuted: np.ndarray
    cycles: int
    multiplier_ops: int
    adder_ops: int
    max_fifo_depth: int
    stream: StreamStats

    @property
    def useful_ops(self) -> int:
        return self.multiplier_ops + self.adder_ops


class GustMachine:
    """Executes a :class:`Schedule` against an input vector, cycle by cycle."""

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length

    def run(self, schedule: Schedule, x: np.ndarray) -> MachineResult:
        """Run one SpMV.  ``x`` is indexed by original column (Col_sch)."""
        length = self.length
        if schedule.length != length:
            raise HardwareConfigError(
                f"schedule built for length {schedule.length}, machine is {length}"
            )
        m, n = schedule.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with matrix shape "
                f"{schedule.shape}"
            )

        memory = MemoryModel(length)
        memory.stream_vector_in(n)

        multipliers = MultiplierBank(length)
        crossbar = Crossbar(length)
        adders = AdderBank(length)

        matrix_fifo = Fifo()
        vector_fifo = Fifo()
        index_fifo = Fifo()
        dump_fifo = Fifo()

        # The Buffer Filler loads one window at a time (double buffering);
        # we enqueue per-timestep lane vectors, so FIFO depth is measured in
        # timesteps and its high-water mark is max window colors — exactly
        # the paper's required buffer length (Eq. 1).
        window_of_step = schedule.window_of_timestep()
        offsets = schedule.window_offsets()
        rows_per_window = [
            min(length, m - w * length) for w in range(schedule.window_count)
        ]

        y = np.zeros(m, dtype=np.float64)
        total_steps = schedule.total_colors
        max_depth = 0

        # Pipeline registers between stages; the dump signal travels with
        # the data so it reaches the adders exactly at the window's last
        # accumulate (Figure 2's dump-signal FIFO path).
        stage2_in: tuple[np.ndarray, np.ndarray, np.ndarray, int, bool] | None = None
        stage3_in: tuple[np.ndarray, np.ndarray, int, bool] | None = None

        next_window_to_fill = 0
        cycles = total_steps + PIPELINE_FILL_CYCLES if schedule.nnz else 0
        for cycle in range(cycles):
            # Buffer Filler: before the cycle that consumes a window's first
            # timestep, stream that window into the FIFOs.
            while (
                next_window_to_fill < schedule.window_count
                and cycle >= offsets[next_window_to_fill]
            ):
                self._fill_window(
                    schedule,
                    next_window_to_fill,
                    matrix_fifo,
                    vector_fifo,
                    index_fifo,
                    dump_fifo,
                    x,
                    memory,
                )
                next_window_to_fill += 1
            max_depth = max(max_depth, matrix_fifo.max_depth)

            # Stage 3: adders accumulate what the crossbar routed last cycle.
            if stage3_in is not None:
                routed, routed_valid, step, dump_now = stage3_in
                adders.accumulate(routed, routed_valid)
                stage3_in = None
                if dump_now:
                    w = int(window_of_step[step])
                    lanes = np.arange(rows_per_window[w])
                    dumped = adders.dump(lanes)
                    y[w * length + lanes] = dumped
                    memory.write_outputs(int(lanes.size))

            # Stage 2: crossbar routes last cycle's products.
            if stage2_in is not None:
                products, dests, valid, step, dump_flag = stage2_in
                routed, routed_valid = crossbar.route(products, dests, valid)
                stage3_in = (routed, routed_valid, step, dump_flag)
                stage2_in = None

            # Stage 1: multipliers consume one timestep from the FIFOs.
            if cycle < total_steps:
                matrix_elems = matrix_fifo.pop()
                vector_elems = vector_fifo.pop()
                dests = index_fifo.pop()
                dump_flag = bool(dump_fifo.pop())
                valid = dests != EMPTY
                products = multipliers.cycle(matrix_elems, vector_elems, valid)
                stage2_in = (products, dests, valid, cycle, dump_flag)

        return MachineResult(
            y_permuted=y,
            cycles=cycles,
            multiplier_ops=multipliers.active_ops,
            adder_ops=adders.active_ops,
            max_fifo_depth=max_depth,
            stream=memory.stats,
        )

    def _fill_window(
        self,
        schedule: Schedule,
        window: int,
        matrix_fifo: Fifo,
        vector_fifo: Fifo,
        index_fifo: Fifo,
        dump_fifo: Fifo,
        x: np.ndarray,
        memory: MemoryModel,
    ) -> None:
        """Buffer Filler: stream one window's timesteps into the four FIFOs."""
        start = int(schedule.window_offsets()[window])
        span = schedule.window_colors[window]
        for step in range(start, start + span):
            dests = schedule.row_sch[step]
            cols = schedule.col_sch[step]
            valid = dests != EMPTY
            vector_elems = np.where(valid, x[np.where(valid, cols, 0)], 0.0)
            matrix_fifo.push(schedule.m_sch[step].copy())
            vector_fifo.push(vector_elems)
            index_fifo.push(dests.copy())
            dump_fifo.push(step == start + span - 1)
            memory.stream_timestep(int(valid.sum()))
