"""The ``np.bincount`` segment-reduction backend — fast and bit-identical.

SpMV replay delegates to :meth:`ExecutionPlan.execute` (gather -> multiply
through a thread-local scratch buffer -> ``np.bincount`` with weights),
which accumulates strictly sequentially per destination row and is pinned
bit-identical to the scatter oracle by ``benchmarks/
bench_replay_throughput.py``.

SpMM replay uses the *flat* bincount trick from the serving layer's
original NumPy fallback: bin ``(row, column)`` pairs as ``row * k + col``
so one 1-D bincount accumulates the whole block — still strictly in plan
slot order per destination, hence bit-identical per column, unlike the
``reduceat`` backend's pairwise partial sums.  Column tiles bound the
product temporary the same way the other block paths do.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan


class BincountKernel(CompiledKernel):
    """Compiled bincount replay (the PR 3 ``ExecutionPlan`` hot path)."""

    def matvec(self, x: np.ndarray) -> np.ndarray:
        # plan.execute owns the thread-local scratch buffer and performs
        # the same shape validation; no duplication here.
        return self._plan.execute(x)

    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        dense = self._as_block(dense)
        plan = self._plan
        m, _ = plan.shape
        k = dense.shape[1]
        if plan.nnz == 0 or k == 0:
            return np.zeros((m, k), dtype=np.float64)
        values = plan.values[:, None]
        tile = max(1, int(tile_budget) // max(1, plan.nnz))
        y_permuted = np.empty((m, k), dtype=np.float64)
        for start in range(0, k, tile):
            stop = min(k, start + tile)
            width = stop - start
            products = values * dense[plan.sources, start:stop]
            bins = (
                plan.rows[:, None] * width + np.arange(width)
            ).ravel()
            flat = np.bincount(
                bins, weights=products.ravel(), minlength=m * width
            )
            y_permuted[:, start:stop] = flat.reshape(m, width)
        return y_permuted[plan.row_perm]


class BincountBackend(ReplayBackend):
    """``np.bincount`` segment reduction over the sorted plan layout."""

    name = "bincount"
    capabilities = BackendCapabilities(
        bit_identical=True,
        supports_block=True,
        thread_safe=True,
        probed=False,
    )

    def compile(self, plan: ExecutionPlan) -> BincountKernel:
        return BincountKernel(plan)
