"""Warn-once plumbing for the pre-backend API's deprecation shims.

Each legacy entry point (``use_plans=``, ``GustPipeline.executor``, ...)
warns exactly once per process, keyed by shim name: the shims sit on hot
paths (solver loops bind executors, benchmarks construct pipelines in
loops), and one actionable warning beats a thousand repeats.  Tests reset
the seen-set via :func:`reset_deprecation_warnings` to assert the
exactly-once contract deterministically.
"""

from __future__ import annotations

import threading
import warnings

_lock = threading.Lock()
_warned: set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen."""
    with _lock:
        if key in _warned:
            return
        _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_deprecation_warnings() -> None:
    """Forget which shims have warned (test hook)."""
    with _lock:
        _warned.clear()
