"""The ``np.add.at`` scatter backend — the bit-identity oracle.

This is the compiled form of the library's original replay path
(:meth:`~repro.core.pipeline.GustPipeline.execute_scatter`): one product
per occupied slot, scatter-added into its destination row.  ``np.add.at``
processes the index array strictly in order, and the plan's stable
destination-row sort preserves each row's slot order, so every other
bit-identical backend is pinned against this one — it is the oracle the
registry's probe and the cross-backend equivalence tests compare to.

(The *uncompiled* pre-plan path — a dense ``np.nonzero`` over the schedule
arrays on every call — survives verbatim as ``execute_scatter`` /
``backend="legacy-scatter"`` for the replay-throughput benchmark's
baseline; this backend is the same accumulation with the structural work
paid once at compile time.)
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan


def scatter_matvec(plan: ExecutionPlan, x: np.ndarray) -> np.ndarray:
    """One ``np.add.at`` replay of ``plan`` — the shared oracle kernel.

    ``x`` must already be float64 of length ``n``.  Used by
    :class:`ScatterKernel` and by the registry's bit-identity probe (so
    the probe never depends on the backend under test).
    """
    m, _ = plan.shape
    y_permuted = np.zeros(m, dtype=np.float64)
    if plan.nnz:
        np.add.at(y_permuted, plan.rows, plan.values * x[plan.sources])
    return y_permuted[plan.row_perm]


def scatter_matmat(
    values: np.ndarray,
    sources: np.ndarray,
    rows: np.ndarray,
    m: int,
    dense: np.ndarray,
    tile_budget: int,
) -> np.ndarray:
    """Tiled ``np.add.at`` block accumulation over flat slot arrays.

    The one implementation of the scatter SpMM loop, shared by
    :class:`ScatterKernel` (plan arrays) and the pipeline's legacy
    adapter (schedule-derived arrays) so the accumulation the oracle is
    pinned to can never diverge between the two.  Returns the block in
    *permuted* row order; callers apply their own un-permutation.
    """
    k = dense.shape[1]
    y_permuted = np.zeros((m, k), dtype=np.float64)
    if values.size and k:
        values_col = values[:, None]
        tile = max(1, int(tile_budget) // max(1, values.size))
        for start in range(0, k, tile):
            stop = min(k, start + tile)
            products = values_col * dense[sources, start:stop]
            np.add.at(y_permuted[:, start:stop], rows, products)
    return y_permuted


class ScatterKernel(CompiledKernel):
    """Compiled scatter replay: gather -> multiply -> ``np.add.at``."""

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return scatter_matvec(self._plan, self._as_vector(x))

    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        dense = self._as_block(dense)
        plan = self._plan
        block = scatter_matmat(
            plan.values, plan.sources, plan.rows, plan.shape[0], dense,
            tile_budget,
        )
        return block[plan.row_perm]


class ScatterBackend(ReplayBackend):
    """``np.add.at`` accumulation over the compiled plan arrays."""

    name = "scatter"
    capabilities = BackendCapabilities(
        bit_identical=True,
        supports_block=True,
        thread_safe=True,
        probed=False,
    )

    def compile(self, plan: ExecutionPlan) -> ScatterKernel:
        return ScatterKernel(plan)
