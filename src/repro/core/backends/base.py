"""The ``ReplayBackend`` protocol: one contract for every execution path.

The repository grew four ways to execute a compiled schedule — ``np.add.at``
scatter, ``np.bincount`` segment reduction, ``np.add.reduceat`` block
reduction, and scipy CSR — selected by an ad-hoc mix of ``use_plans=``
kwargs and hardcoded call sites.  This module defines the single pluggable
contract they all implement, mirroring how RACE (Alappat et al.) and the
GPU SpMV literature structure their systems: one coloring/preprocessing
front end over interchangeable, capability-tagged execution kernels.

A :class:`ReplayBackend` compiles an immutable
:class:`~repro.core.plan.ExecutionPlan` into a :class:`CompiledKernel`
(``compile(plan) -> kernel``).  The kernel exposes:

* ``matvec(x)`` — one SpMV replay, result in original row order;
* ``matmat(dense)`` — SpMM replay over a dense ``(n, k)`` block;
* ``refresh_values(plan)`` — swap in a value-refreshed plan *in place*,
  reusing every structural artifact of the original compile (sort order,
  CSR layout, scipy index arrays): the structure is value-independent,
  so a Jacobian/Hessian refresh never pays a recompile.

Capabilities are declared, not discovered: :class:`BackendCapabilities`
tags each backend with ``bit_identical`` (strictly sequential per-row
accumulation, reproducing the scatter oracle bit for bit),
``supports_block`` (native ``matmat``), and ``thread_safe`` (one compiled
kernel may be replayed concurrently).  A backend with ``probed=True``
(scipy, whose accumulation order is an implementation detail of someone
else's kernel) must have its ``bit_identical`` claim re-verified per
compile by the registry's probe — see
:func:`repro.core.backends.registry.probe_bit_identity`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan
from repro.errors import HardwareConfigError, ScheduleError


@dataclass(frozen=True)
class BackendCapabilities:
    """Capability flags advertised by a :class:`ReplayBackend`.

    Attributes:
        bit_identical: replay accumulates each destination row strictly
            sequentially in plan slot order, so results reproduce the
            ``np.add.at`` scatter oracle bit for bit.  ``False`` means
            results are only numerically close (``allclose``-grade) — the
            NumPy >= 2.x ``np.add.reduceat`` hazard.
        supports_block: ``matmat`` is implemented natively (every shipped
            backend supports it; a future GPU segment-reduce backend may
            not).
        thread_safe: one compiled kernel may be shared across threads —
            replay touches no unguarded mutable state.
        probed: the ``bit_identical`` claim depends on a third-party
            kernel's accumulation order and must be confirmed per compile
            by the registry's bit-identity probe before it is trusted.
    """

    bit_identical: bool
    supports_block: bool
    thread_safe: bool
    probed: bool = False

    def describe(self) -> str:
        """Compact human-readable flag string (used by ``repro backends``)."""
        flags = []
        if self.bit_identical:
            flags.append("bit-identical" + ("(probed)" if self.probed else ""))
        else:
            flags.append("allclose-only")
        if self.supports_block:
            flags.append("block")
        if self.thread_safe:
            flags.append("thread-safe")
        return ",".join(flags)


class CompiledKernel(abc.ABC):
    """One plan compiled for one backend: the replay-ready object.

    Kernels hold the compiled plan plus whatever structural artifacts the
    backend derived from it (a scipy CSR matrix, a cached gather order).
    They are cheap to call and safe to share when the backend declares
    ``thread_safe``; mutation is limited to :meth:`refresh_values`, which
    swaps the value stream while reusing all structure.
    """

    def __init__(self, plan: ExecutionPlan):
        self._plan = plan

    @property
    def plan(self) -> ExecutionPlan:
        """The (possibly value-refreshed) plan this kernel replays."""
        return self._plan

    @property
    def shape(self) -> tuple[int, int]:
        return self._plan.shape

    # -- replay --------------------------------------------------------------

    @abc.abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """One SpMV replay; returns ``y`` in original row order."""

    @abc.abstractmethod
    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        """SpMM replay over a dense ``(n, k)`` operand; returns ``(m, k)``.

        ``tile_budget`` bounds the per-tile product temporary (in
        elements) for backends that materialize one; backends that stream
        (scipy) ignore it.
        """

    # -- value refresh -------------------------------------------------------

    def refresh_values(self, plan: ExecutionPlan) -> None:
        """Swap in a value-refreshed plan, reusing the compiled structure.

        ``plan`` must share this kernel's structure — in practice it comes
        from :meth:`ExecutionPlan.with_values`, which replaces only the
        value array and shares the index arrays by identity.  The swap is
        a single reference assignment (atomic in CPython), so concurrent
        replays observe either the old or the new value stream, never a
        mixture; backends with derived value storage override
        :meth:`_refresh_compiled` to rebuild it (still structure-reusing).
        """
        self._check_same_structure(plan)
        self._refresh_compiled(plan)
        self._plan = plan

    def _refresh_compiled(self, plan: ExecutionPlan) -> None:
        """Hook for backends with derived value storage (scipy CSR data)."""

    def _check_same_structure(self, plan: ExecutionPlan) -> None:
        old = self._plan
        if plan.shape != old.shape or plan.nnz != old.nnz:
            raise ScheduleError(
                f"refreshed plan has shape {plan.shape}/{plan.nnz} slots, "
                f"kernel was compiled for {old.shape}/{old.nnz}; pattern "
                f"changed, recompile instead"
            )
        # Identity first: ExecutionPlan.with_values shares the index arrays
        # of its source, so the O(nnz) comparisons only run for exotic
        # caller pairings (e.g. a plan recompiled from a warm store).
        # Both index arrays matter — a plan with matching rows but moved
        # source columns is a different matrix, and a backend with derived
        # structure (scipy's CSR indices) would silently keep the old one.
        for name, new, old_arr in (
            ("rows", plan.rows, old.rows),
            ("sources", plan.sources, old.sources),
        ):
            if new is not old_arr and not np.array_equal(new, old_arr):
                raise ScheduleError(
                    f"refreshed plan does not share this kernel's "
                    f"structure ({name} differ); pattern changed, "
                    f"recompile instead"
                )

    # -- shared validation ---------------------------------------------------

    def _as_vector(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        _, n = self._plan.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape "
                f"{self._plan.shape}"
            )
        return x

    def _as_block(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        _, n = self._plan.shape
        if dense.ndim != 2 or dense.shape[0] != n:
            raise HardwareConfigError(
                f"dense operand must be ({n}, k), got {dense.shape}"
            )
        return dense


class ReplayBackend(abc.ABC):
    """A named, capability-tagged compiler from plans to kernels."""

    #: Registry name (``"scatter"``, ``"bincount"``, ``"reduceat"``,
    #: ``"scipy"``, ...).
    name: str
    #: Declared capability flags; see :class:`BackendCapabilities`.
    capabilities: BackendCapabilities

    def available(self) -> bool:
        """Whether the backend's runtime dependencies are importable."""
        return True

    @abc.abstractmethod
    def compile(self, plan: ExecutionPlan) -> CompiledKernel:
        """Compile ``plan`` into a replay-ready kernel."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"[{self.capabilities.describe()}]>"
        )
