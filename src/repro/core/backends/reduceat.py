"""The ``np.add.reduceat`` backend — fastest block replay, allclose-only.

``np.add.reduceat`` reduces contiguous CSR segments with unrolled partial
sums on NumPy >= 2.x (measured on 2.4: segments of >= 8 slots are *not*
accumulated sequentially), so its results are only numerically close to
the scatter oracle — ``capabilities.bit_identical`` is ``False``, and the
registry will therefore never auto-select it nor hand it to a caller that
required exactness (that request raises
:class:`~repro.errors.BackendCapabilityError` instead of being silently
gated by an ``allclose`` test, which is how this hazard used to hide).

Use it deliberately, where throughput beats reproducibility: it is the
classic segmented-reduction SpMM formulation
(:meth:`ExecutionPlan.execute_block`) and the shape a GPU segment-reduce
backend will take.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan


class ReduceatKernel(CompiledKernel):
    """Compiled segment-reduction replay over the CSR boundaries."""

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._as_vector(x)
        plan = self._plan
        m, _ = plan.shape
        y_permuted = np.zeros(m, dtype=np.float64)
        if plan.nnz:
            products = plan.values * x[plan.sources]
            y_permuted[plan.seg_rows] = np.add.reduceat(
                products, plan.seg_starts
            )
        return y_permuted[plan.row_perm]

    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        # execute_block validates the operand and owns the tile loop.
        return self._plan.execute_block(dense, tile_budget=tile_budget)


class ReduceatBackend(ReplayBackend):
    """``np.add.reduceat`` segment reduction (numerically close only)."""

    name = "reduceat"
    capabilities = BackendCapabilities(
        bit_identical=False,
        supports_block=True,
        thread_safe=True,
        probed=False,
    )

    def compile(self, plan: ExecutionPlan) -> ReduceatKernel:
        return ReduceatKernel(plan)
