"""The scipy CSR backend — batched replay through ``csr_matvecs``.

The plan's :meth:`~repro.core.plan.ExecutionPlan.csr_layout` (CSR triple
in *original* row order, ``row_perm`` folded in, per-row slot order
preserved) is wrapped in a ``scipy.sparse.csr_matrix`` whose indices are
deliberately **not** canonicalized: storage order *is* the accumulation
contract.  scipy's C kernels then walk each row's entries in storage order
with a vectorized axpy across columns — sequential per-row accumulation,
which reproduces the scatter oracle bit for bit on every scipy released to
date.  Because that ordering is an implementation detail of someone else's
kernel, the backend declares ``probed=True``: the registry re-verifies
bit-identity per compile (the same compile-time probe the serving layer's
``StackedReplay`` pioneered) before the ``bit_identical`` flag is trusted,
and auto-selection silently falls through to ``bincount`` if a future
scipy changes its accumulation order.

Value refreshes rebuild only the CSR ``data`` array through the cached
layout gather order — the ``indptr``/``indices`` structure is shared with
the original compile, never recomputed.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan
from repro.errors import BackendError

try:  # pragma: no cover - exercised via the scipy-present environment
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised when scipy is absent
    _scipy_sparse = None


class ScipyCsrKernel(CompiledKernel):
    """Compiled scipy CSR replay: ``A @ x`` / ``A @ B`` in storage order."""

    def __init__(self, plan: ExecutionPlan):
        super().__init__(plan)
        indptr, cols, vals, order = plan.csr_layout()
        #: Plan-slot -> CSR-storage gather; value refreshes reuse it.
        self._order = order
        self._matrix = _scipy_sparse.csr_matrix(
            (vals, cols.astype(np.intp, copy=False), indptr),
            shape=plan.shape,
            copy=False,
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ self._as_vector(x)

    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        # scipy streams rows; no product temporary, tile_budget unused.
        return self._matrix @ self._as_block(dense)

    def _refresh_compiled(self, plan: ExecutionPlan) -> None:
        # New data array, shared index structure.  A fresh (cheap) matrix
        # object rather than an in-place data write keeps concurrent
        # replays consistent: in-flight calls hold the old matrix, new
        # calls see the swapped reference.
        old = self._matrix
        self._matrix = _scipy_sparse.csr_matrix(
            (plan.values[self._order], old.indices, old.indptr),
            shape=plan.shape,
            copy=False,
        )


class ScipyCsrBackend(ReplayBackend):
    """scipy CSR matvec/matmat over the plan's original-row-order layout."""

    name = "scipy"
    capabilities = BackendCapabilities(
        bit_identical=True,
        supports_block=True,
        thread_safe=True,
        probed=True,
    )

    def available(self) -> bool:
        return _scipy_sparse is not None

    def compile(self, plan: ExecutionPlan) -> ScipyCsrKernel:
        if _scipy_sparse is None:
            raise BackendError(
                "backend 'scipy' requires scipy, which is not installed"
            )
        return ScipyCsrKernel(plan)
