"""Pluggable execution backends for schedule replay.

One preprocessing front end (windowing, load balancing, edge coloring,
plan compilation), many interchangeable execution kernels — the structure
RACE and the GPU SpMV literature converge on.  See
:mod:`repro.core.backends.base` for the protocol and
:mod:`repro.core.backends.registry` for name resolution, the
``GUST_BACKEND`` override, and ``"auto"`` selection.

Built-in backends::

    scatter    np.add.at accumulation — the bit-identity oracle
    bincount   np.bincount segment reduction — fast, bit-identical
    reduceat   np.add.reduceat — fastest blocks, allclose-only (NumPy 2.x)
    scipy      scipy CSR matvec/matvecs — bit-identity probed per compile

Most callers never touch this package directly: they hold a
:class:`~repro.core.compiled.CompiledSpmv` from
:meth:`GustPipeline.compile` and call ``.matvec`` / ``.matmat`` /
``.refresh_values`` on it.
"""

from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.backends.bincount import BincountBackend
from repro.core.backends.reduceat import ReduceatBackend
from repro.core.backends.registry import (
    AUTO_ORDER,
    ENV_BACKEND,
    CompiledReplay,
    available_backends,
    compile_plan,
    get_backend,
    probe_bit_identity,
    register_backend,
    registered_backends,
)
from repro.core.backends.scatter import (
    ScatterBackend,
    scatter_matmat,
    scatter_matvec,
)
from repro.core.backends.scipy_csr import ScipyCsrBackend

__all__ = [
    "AUTO_ORDER",
    "ENV_BACKEND",
    "BackendCapabilities",
    "BincountBackend",
    "CompiledKernel",
    "CompiledReplay",
    "ReduceatBackend",
    "ReplayBackend",
    "ScatterBackend",
    "ScipyCsrBackend",
    "available_backends",
    "compile_plan",
    "get_backend",
    "probe_bit_identity",
    "register_backend",
    "registered_backends",
    "scatter_matmat",
    "scatter_matvec",
]
