"""Backend registry: named backends, ``auto`` selection, capability checks.

The registry is the single place execution backends are chosen:

* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` manage the name -> backend map (the four
  built-ins self-register on import; a GPU segment-reduce backend plugs in
  the same way).
* :func:`compile_plan` is the one entry point callers use: it resolves a
  backend name (including ``"auto"`` and the ``GUST_BACKEND`` environment
  override), enforces capability requirements, runs the bit-identity probe
  where the backend's flags demand it, and returns a
  :class:`CompiledReplay` record.

``"auto"`` selection
--------------------

``auto`` picks the first backend in :data:`AUTO_ORDER` whose bit-identity
holds — declared backends (``bincount``, ``scatter``) are trusted outright
(their contract is pinned by the tier-1 suite and the replay benchmark),
while ``probed`` backends (``scipy``) must reproduce the scatter oracle
bit for bit on seeded probe vectors, exactly the compile-time probe
``core/spmm.py`` introduced for the serving layer.  Backends that declare
``bit_identical=False`` (``reduceat``) are never auto-selected: they must
be requested by name, and even then a caller that *requires* exactness
gets a typed :class:`~repro.errors.BackendCapabilityError` instead of the
silent ``allclose``-grade drift the old kwarg plumbing allowed.

Setting ``GUST_BACKEND=<name>`` overrides ``auto`` everywhere a caller did
not pin a backend explicitly — the CI matrix runs the whole tier-1 suite
once per bit-identical backend this way.  The override is still subject to
capability checks: if the named backend cannot honor a caller's
requirements (or fails its probe), the call falls back to normal ``auto``
selection with a ``RuntimeWarning`` rather than corrupting results.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.backends.bincount import BincountBackend
from repro.core.backends.reduceat import ReduceatBackend
from repro.core.backends.scatter import ScatterBackend, scatter_matvec
from repro.core.backends.scipy_csr import ScipyCsrBackend
from repro.core.plan import ExecutionPlan
from repro.errors import BackendCapabilityError, BackendError

#: Environment variable overriding ``"auto"`` backend resolution.
ENV_BACKEND = "GUST_BACKEND"

#: ``auto`` preference order, fastest bit-identical candidate first.
AUTO_ORDER = ("scipy", "bincount", "scatter")

#: Probe vectors compared against the scatter oracle before a ``probed``
#: backend's bit-identity claim is trusted.
PROBE_COLUMNS = 2
_PROBE_SEED = 0xC0FFEE

_REGISTRY: dict[str, ReplayBackend] = {}


def register_backend(backend: ReplayBackend, replace: bool = False) -> None:
    """Add ``backend`` to the registry under ``backend.name``.

    Third-party backends (a GPU segment-reduce, a multi-process shard
    router) register here and immediately participate in ``"auto"``
    resolution checks, ``GUST_BACKEND`` overrides, the ``repro backends``
    CLI listing, and the cross-backend equivalence test matrix.
    """
    name = backend.name
    if not name or name == "auto":
        raise BackendError(f"invalid backend name {name!r}")
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} is already registered; pass replace=True "
            f"to swap it"
        )
    _REGISTRY[name] = backend


def get_backend(name: str) -> ReplayBackend:
    """Look up a registered backend by name (``"auto"`` is not a backend)."""
    backend = _REGISTRY.get(name)
    if backend is None:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {known} "
            f"(or 'auto')"
        )
    if not backend.available():
        raise BackendError(
            f"backend {name!r} is registered but unavailable (missing "
            f"runtime dependency)"
        )
    return backend


def available_backends() -> dict[str, BackendCapabilities]:
    """Name -> capabilities for every registered backend that can run."""
    return {
        name: backend.capabilities
        for name, backend in sorted(_REGISTRY.items())
        if backend.available()
    }


def registered_backends() -> dict[str, ReplayBackend]:
    """Name -> backend for everything registered (available or not)."""
    return dict(sorted(_REGISTRY.items()))


# -- probing ------------------------------------------------------------------


def probe_bit_identity(
    kernel: CompiledKernel, plan: ExecutionPlan
) -> bool:
    """True when ``kernel`` reproduces the scatter oracle bit for bit.

    Seeded random vectors are pushed through both ``matvec`` and
    ``matmat`` (a backend may route them through different third-party
    kernels) and compared exactly against :func:`scatter_matvec` — the
    ``np.add.at`` oracle, computed independently of the backend under
    test.
    """
    _, n = plan.shape
    rng = np.random.default_rng(_PROBE_SEED)
    xs = rng.normal(size=(PROBE_COLUMNS, n))
    oracle = [scatter_matvec(plan, x) for x in xs]
    if any(
        not (kernel.matvec(x) == want).all() for x, want in zip(xs, oracle)
    ):
        return False
    block = kernel.matmat(xs.T)
    return all(
        bool((block[:, j] == oracle[j]).all()) for j in range(PROBE_COLUMNS)
    )


# -- resolution + compilation -------------------------------------------------


@dataclass(frozen=True)
class CompiledReplay:
    """Outcome of one :func:`compile_plan` call."""

    #: The replay-ready kernel.
    kernel: CompiledKernel
    #: Resolved backend name (never ``"auto"``).
    name: str
    #: Declared capability flags of the chosen backend.
    capabilities: BackendCapabilities
    #: Effective bit-identity guarantee: declared, or probe-confirmed.
    bit_identical: bool
    #: ``True``/``False`` when the probe ran, ``None`` when it did not.
    probe_verdict: bool | None


def _qualify(
    backend: ReplayBackend,
    plan: ExecutionPlan,
    require_bit_identical: bool,
) -> CompiledReplay | None:
    """Compile + capability-check one candidate; ``None`` if it fails.

    A ``probed`` backend runs the bit-identity probe whenever its claim
    matters (the caller required exactness, or we need the effective flag
    for auto selection); a failed probe downgrades ``bit_identical`` to
    ``False`` rather than erroring, so explicit callers that accept
    allclose-grade results can still use the backend.
    """
    caps = backend.capabilities
    if require_bit_identical and not caps.bit_identical:
        return None
    kernel = backend.compile(plan)
    probe_verdict = None
    bit_identical = caps.bit_identical
    if caps.bit_identical and caps.probed:
        probe_verdict = probe_bit_identity(kernel, plan)
        bit_identical = probe_verdict
        if require_bit_identical and not probe_verdict:
            return None
    return CompiledReplay(
        kernel=kernel,
        name=backend.name,
        capabilities=caps,
        bit_identical=bit_identical,
        probe_verdict=probe_verdict,
    )


def compile_plan(
    plan: ExecutionPlan,
    backend: str | None = "auto",
    require_bit_identical: bool = False,
) -> CompiledReplay:
    """Resolve a backend name and compile ``plan`` on it.

    Args:
        plan: the prepared execution plan to compile.
        backend: a registered name, or ``"auto"``/``None`` for automatic
            selection (first :data:`AUTO_ORDER` candidate whose
            bit-identity holds, subject to the ``GUST_BACKEND`` override).
        require_bit_identical: the caller demands exact scatter-oracle
            reproduction.  An explicitly named backend that cannot honor
            it (by declaration, or by failing its probe) raises
            :class:`BackendCapabilityError`; an environment override that
            cannot is skipped with a ``RuntimeWarning``.
    """
    if backend not in (None, "auto"):
        resolved = get_backend(backend)
        compiled = _qualify(resolved, plan, require_bit_identical)
        if compiled is None:
            raise BackendCapabilityError(
                f"backend {backend!r} cannot guarantee bit-identical "
                f"replay (capabilities: "
                f"{resolved.capabilities.describe()}), but the caller "
                f"required exactness; choose a bit_identical backend or "
                f"drop the requirement"
            )
        return compiled

    override = os.environ.get(ENV_BACKEND)
    if override and override != "auto":
        resolved = get_backend(override)  # unknown env names fail loudly
        compiled = _qualify(
            resolved, plan, require_bit_identical=require_bit_identical
        )
        if compiled is not None:
            return compiled
        warnings.warn(
            f"{ENV_BACKEND}={override!r} cannot guarantee the "
            f"bit-identical replay this caller requires; falling back to "
            f"auto selection",
            RuntimeWarning,
            stacklevel=2,
        )

    for name in AUTO_ORDER:
        candidate = _REGISTRY.get(name)
        if candidate is None or not candidate.available():
            continue
        # Auto always selects for bit-identity: the default replay
        # contract is exactness, whatever the caller's requirement flag.
        compiled = _qualify(candidate, plan, require_bit_identical=True)
        if compiled is not None:
            return compiled
    raise BackendError(
        "no registered backend passed auto selection; the built-ins "
        "should make this unreachable"
    )


# -- built-ins ----------------------------------------------------------------

register_backend(ScatterBackend())
register_backend(BincountBackend())
register_backend(ReduceatBackend())
register_backend(ScipyCsrBackend())
