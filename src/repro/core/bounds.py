"""Statistical bound on colors, execution time, and utilization (Sec. 3.4).

For an N-by-N matrix whose cells are nonzero independently with probability
``p`` (the uniform synthetic model) and a length-``l`` GUST, the paper
derives, via the Central Limit Theorem plus a Jensen/union-bound argument
over the 2l row/column-segment degree Gaussians:

* Eq. (9):  E[C]      <= N p + sqrt(2 N p (1 - p) ln(2 l))     per window
* Eq. (10): E[exe]     = (N / l) E[C] + 2                      cycles
* Eq. (11): E[util]    = 1 / (1 + sqrt(2 (1-p) ln(2l) / (N p)))

The bound assumes N p >= ~10 (at least ten nonzeros per row on average) so
the binomial degree is approximately Gaussian.
"""

from __future__ import annotations

import math

from repro.errors import HardwareConfigError


def _check(n: int, p: float, length: int) -> None:
    if n <= 0:
        raise HardwareConfigError(f"matrix dimension must be positive, got {n}")
    if not 0.0 < p <= 1.0:
        raise HardwareConfigError(f"density p must be in (0, 1], got {p}")
    if length <= 0:
        raise HardwareConfigError(f"length must be positive, got {length}")


def expected_colors(n: int, p: float, length: int) -> float:
    """Eq. (9): upper bound on E[C] for one window of a uniform matrix."""
    _check(n, p, length)
    mean = n * p
    sigma = math.sqrt(n * p * (1.0 - p))
    return mean + sigma * math.sqrt(2.0 * math.log(2.0 * length))


def expected_execution_cycles(n: int, p: float, length: int) -> float:
    """Eq. (10): expected SpMV cycles for an N-by-N uniform matrix."""
    _check(n, p, length)
    windows = n / length
    return windows * expected_colors(n, p, length) + 2.0


def expected_utilization(n: int, p: float, length: int) -> float:
    """Eq. (11): expected hardware utilization (0..1]."""
    _check(n, p, length)
    return 1.0 / (1.0 + math.sqrt(2.0 * (1.0 - p) * math.log(2.0 * length) / (n * p)))


def clt_applicable(n: int, p: float) -> bool:
    """The paper's applicability condition N > 9 (1 - p) / p."""
    if p <= 0.0:
        return False
    return n > 9.0 * (1.0 - p) / p
