"""The paper's three-step sort-based load balancer (Section 3.5).

Execution time per window is governed by the *maximum* nonzero count over
its rows and column segments (Eq. 1), so imbalance — not total work — costs
cycles.  The balancer:

* **Step 1** sorts matrix rows by nonzero count, grouping similarly heavy
  rows into the same windows.
* **Step 2** sorts, per window, the columns by their nonzero count within
  that window.
* **Step 3** deals the sorted columns into the ``l`` multipliers in
  alternating ("snake") order — the paper's "for even column segments,
  reverse the order" — so the heavy columns of one dealing round line up
  against the light columns of the next and per-multiplier loads even out.

Steps 2-3 are pure scheduling metadata: they decide which multiplier each
column feeds within a window and are realized through ``Col_sch`` — no data
is physically moved.  Step 1 is a real row permutation, which the pipeline
inverts on the output vector.  Reproducing the paper's Figure 6 example:
the 4x4 matrix costs 7 cycles unbalanced and 5 balanced
(``tests/core/test_load_balance.py``).

All three steps are fully vectorized: steps 2-3 run as one global
lexsort/run-length pass over every window at once, and
:meth:`BalancedMatrix.colseg_of_all` resolves column-to-lane assignments
for the whole matrix with a single ``searchsorted`` against a flattened
(window, column) -> lane table, which the vectorized scheduling engine
consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.stats import require_positive_length, window_count


@dataclass(frozen=True)
class BalancedMatrix:
    """Result of load balancing.

    Attributes:
        matrix: the row-permuted matrix to schedule.
        row_perm: ``row_perm[i]`` is the new position of original row ``i``
            (so ``y_original[i] = y_permuted[row_perm[i]]``).
        window_col_maps: per window, a pair of arrays ``(columns, lanes)``:
            ``columns`` is sorted ascending and ``lanes[k]`` is the
            multiplier assigned to ``columns[k]`` in that window.  Columns
            absent from the map default to ``col mod l``.
    """

    matrix: CooMatrix
    row_perm: np.ndarray
    window_col_maps: list[tuple[np.ndarray, np.ndarray]]

    @cached_property
    def _flat_col_map(self) -> tuple[np.ndarray, np.ndarray]:
        """All window column maps in one sorted (window*n + col, lane) table."""
        sizes = [cols.size for cols, _ in self.window_col_maps]
        total = int(sum(sizes))
        n = max(1, self.matrix.shape[1])
        keys = np.empty(total, dtype=np.int64)
        lanes = np.empty(total, dtype=np.int64)
        offset = 0
        for w, (cols, ln) in enumerate(self.window_col_maps):
            span = cols.size
            keys[offset : offset + span] = w * n + cols
            lanes[offset : offset + span] = ln
            offset += span
        return keys, lanes

    def colseg_of(self, window: int, cols: np.ndarray, length: int) -> np.ndarray:
        """Multiplier lane for each original column index in ``window``."""
        cols = np.asarray(cols, dtype=np.int64)
        mapped_cols, lanes = self.window_col_maps[window]
        base = cols % length
        if mapped_cols.size == 0 or cols.size == 0:
            return base
        positions = np.searchsorted(mapped_cols, cols)
        positions = np.minimum(positions, mapped_cols.size - 1)
        hit = mapped_cols[positions] == cols
        return np.where(hit, lanes[positions], base)

    def colseg_of_all(
        self, window_ids: np.ndarray, cols: np.ndarray, length: int
    ) -> np.ndarray:
        """Multiplier lane for every edge of the matrix in one pass.

        Vectorized across windows: equivalent to calling :meth:`colseg_of`
        window by window, but with a single binary search against the
        flattened column map.  ``window_ids`` is the per-edge owning window.
        """
        cols = np.asarray(cols, dtype=np.int64)
        base = cols % length
        keys, lanes = self._flat_col_map
        if keys.size == 0 or cols.size == 0:
            return base
        n = max(1, self.matrix.shape[1])
        wanted = np.asarray(window_ids, dtype=np.int64) * n + cols
        positions = np.searchsorted(keys, wanted)
        positions = np.minimum(positions, keys.size - 1)
        hit = keys[positions] == wanted
        return np.where(hit, lanes[positions], base)

    def unpermute_output(self, y_permuted: np.ndarray) -> np.ndarray:
        """Map the permuted output vector back to original row order."""
        return y_permuted[self.row_perm]

    def color_lower_bounds(self, length: int) -> list[int]:
        """Per-window Eq. (1) color lower bounds, as scheduled.

        The max bipartite degree of each window graph with this balancer's
        column-to-multiplier assignment applied.  Any proper coloring needs
        at least this many colors.
        """
        matrix = self.matrix
        m, _ = matrix.shape
        windows = window_count(m, length)
        if windows == 0:
            return []
        if matrix.nnz == 0:
            return [0] * windows
        window_ids = matrix.rows // length
        local_rows = matrix.rows % length
        colsegs = self.colseg_of_all(window_ids, matrix.cols, length)
        row_deg = np.bincount(
            window_ids * length + local_rows, minlength=windows * length
        ).reshape(windows, length)
        seg_deg = np.bincount(
            window_ids * length + colsegs, minlength=windows * length
        ).reshape(windows, length)
        bounds = np.maximum(row_deg.max(axis=1), seg_deg.max(axis=1))
        return [int(b) for b in bounds]


class LoadBalancer:
    """Applies the three-step balancing for a given accelerator length."""

    def __init__(self, length: int):
        require_positive_length(length)
        self.length = length

    def balance(self, matrix: CooMatrix) -> BalancedMatrix:
        """Run steps 1-3 and return the permuted matrix plus metadata."""
        length = self.length
        m, n = matrix.shape

        # Step 1: stable-sort rows by nonzero count (descending), so heavy
        # rows share windows with other heavy rows.
        counts = matrix.row_counts()
        order = np.argsort(-counts, kind="stable")
        row_perm = np.empty(m, dtype=np.int64)
        row_perm[order] = np.arange(m, dtype=np.int64)
        permuted = matrix.permute_rows(row_perm) if m else matrix

        # Steps 2-3, every window at once: run-length encode the (window,
        # column) pairs, stable-sort each window's columns by descending
        # count, and deal them into lanes in snake order.
        windows = window_count(m, length)
        maps = self._window_maps(permuted, windows, n)

        return BalancedMatrix(
            matrix=permuted, row_perm=row_perm, window_col_maps=maps
        )

    def _window_maps(
        self, permuted: CooMatrix, windows: int, n: int
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        length = self.length
        empty = np.zeros(0, dtype=np.int64)
        if windows == 0:
            return []
        if permuted.nnz == 0:
            return [(empty, empty) for _ in range(windows)]

        # Unique (window, column) pairs with counts.  The canonical COO
        # order is already sorted by (row, col); sorting its flat
        # window*n + col key groups duplicates of a column within a window.
        pair_key = (permuted.rows // length) * np.int64(n) + permuted.cols
        sorted_key = np.sort(pair_key, kind="stable")
        firsts = np.empty(sorted_key.size, dtype=bool)
        firsts[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=firsts[1:])
        unique_key = sorted_key[firsts]
        boundaries = np.flatnonzero(firsts)
        col_counts = np.diff(np.append(boundaries, sorted_key.size))
        win_of_unique = unique_key // n
        col_of_unique = unique_key % n

        # Per window: order by descending count, ties by ascending column
        # (the unique keys are already column-ascending inside a window,
        # matching the seed's stable argsort).
        by_load = np.lexsort((col_of_unique, -col_counts, win_of_unique))
        win_sorted = win_of_unique[by_load]
        window_starts = np.searchsorted(win_sorted, np.arange(windows + 1))
        rank = np.arange(by_load.size, dtype=np.int64) - window_starts[win_sorted]
        lanes_dealt = _snake_deal_ranks(rank, length)

        # Back to ascending-column order per window for binary-search maps.
        # win_sorted is a permutation of win_of_unique with identical
        # per-window multiplicities, so window_starts delimits both orders.
        lanes = np.empty(by_load.size, dtype=np.int64)
        lanes[by_load] = lanes_dealt
        return [
            (
                col_of_unique[window_starts[w] : window_starts[w + 1]],
                lanes[window_starts[w] : window_starts[w + 1]],
            )
            for w in range(windows)
        ]


def _snake_deal_ranks(ranks: np.ndarray, length: int) -> np.ndarray:
    """Lane for each dealing rank, snake-wise into ``length`` lanes: round 0
    left-to-right, round 1 right-to-left, and so on."""
    rounds = ranks // length
    offsets = ranks % length
    return np.where(rounds % 2 == 0, offsets, length - 1 - offsets)


def identity_balance(matrix: CooMatrix, length: int) -> BalancedMatrix:
    """A no-op :class:`BalancedMatrix` (used when load balancing is off)."""
    require_positive_length(length)
    m, _ = matrix.shape
    empty_map = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    maps = [empty_map for _ in range(window_count(m, length))]
    return BalancedMatrix(
        matrix=matrix,
        row_perm=np.arange(m, dtype=np.int64),
        window_col_maps=maps,
    )
