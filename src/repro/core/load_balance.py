"""The paper's three-step sort-based load balancer (Section 3.5).

Execution time per window is governed by the *maximum* nonzero count over
its rows and column segments (Eq. 1), so imbalance — not total work — costs
cycles.  The balancer:

* **Step 1** sorts matrix rows by nonzero count, grouping similarly heavy
  rows into the same windows.
* **Step 2** sorts, per window, the columns by their nonzero count within
  that window.
* **Step 3** deals the sorted columns into the ``l`` multipliers in
  alternating ("snake") order — the paper's "for even column segments,
  reverse the order" — so the heavy columns of one dealing round line up
  against the light columns of the next and per-multiplier loads even out.

Steps 2-3 are pure scheduling metadata: they decide which multiplier each
column feeds within a window and are realized through ``Col_sch`` — no data
is physically moved.  Step 1 is a real row permutation, which the pipeline
inverts on the output vector.  Reproducing the paper's Figure 6 example:
the 4x4 matrix costs 7 cycles unbalanced and 5 balanced
(``tests/core/test_load_balance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.stats import require_positive_length, window_count


@dataclass(frozen=True)
class BalancedMatrix:
    """Result of load balancing.

    Attributes:
        matrix: the row-permuted matrix to schedule.
        row_perm: ``row_perm[i]`` is the new position of original row ``i``
            (so ``y_original[i] = y_permuted[row_perm[i]]``).
        window_col_maps: per window, a pair of arrays ``(columns, lanes)``:
            ``columns`` is sorted ascending and ``lanes[k]`` is the
            multiplier assigned to ``columns[k]`` in that window.  Columns
            absent from the map default to ``col mod l``.
    """

    matrix: CooMatrix
    row_perm: np.ndarray
    window_col_maps: list[tuple[np.ndarray, np.ndarray]]

    def colseg_of(self, window: int, cols: np.ndarray, length: int) -> np.ndarray:
        """Multiplier lane for each original column index in ``window``."""
        cols = np.asarray(cols, dtype=np.int64)
        mapped_cols, lanes = self.window_col_maps[window]
        base = cols % length
        if mapped_cols.size == 0 or cols.size == 0:
            return base
        positions = np.searchsorted(mapped_cols, cols)
        positions = np.minimum(positions, mapped_cols.size - 1)
        hit = mapped_cols[positions] == cols
        return np.where(hit, lanes[positions], base)

    def unpermute_output(self, y_permuted: np.ndarray) -> np.ndarray:
        """Map the permuted output vector back to original row order."""
        return y_permuted[self.row_perm]

    def color_lower_bounds(self, length: int) -> list[int]:
        """Per-window Eq. (1) color lower bounds, as scheduled.

        The max bipartite degree of each window graph with this balancer's
        column-to-multiplier assignment applied.  Any proper coloring needs
        at least this many colors.
        """
        matrix = self.matrix
        m, _ = matrix.shape
        bounds: list[int] = []
        window_of_row = (
            matrix.rows // length if matrix.nnz else np.zeros(0, np.int64)
        )
        for w in range(window_count(m, length)):
            mask = window_of_row == w
            if not mask.any():
                bounds.append(0)
                continue
            local_rows = matrix.rows[mask] % length
            colsegs = self.colseg_of(w, matrix.cols[mask], length)
            max_row = int(np.bincount(local_rows, minlength=length).max())
            max_seg = int(np.bincount(colsegs, minlength=length).max())
            bounds.append(max(max_row, max_seg))
        return bounds


class LoadBalancer:
    """Applies the three-step balancing for a given accelerator length."""

    def __init__(self, length: int):
        require_positive_length(length)
        self.length = length

    def balance(self, matrix: CooMatrix) -> BalancedMatrix:
        """Run steps 1-3 and return the permuted matrix plus metadata."""
        length = self.length
        m, _ = matrix.shape

        # Step 1: stable-sort rows by nonzero count (descending), so heavy
        # rows share windows with other heavy rows.
        counts = matrix.row_counts()
        order = np.argsort(-counts, kind="stable")
        row_perm = np.empty(m, dtype=np.int64)
        row_perm[order] = np.arange(m, dtype=np.int64)
        permuted = matrix.permute_rows(row_perm) if m else matrix

        # Steps 2-3, per window: sort the window's columns by nonzero count
        # (descending, stable) and deal them into lanes in snake order.
        maps: list[tuple[np.ndarray, np.ndarray]] = []
        window_of_row = (
            permuted.rows // length if permuted.nnz else np.zeros(0, np.int64)
        )
        for w in range(window_count(m, length)):
            mask = window_of_row == w
            window_cols = permuted.cols[mask]
            if window_cols.size == 0:
                maps.append(
                    (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
                )
                continue
            unique_cols, col_counts = np.unique(window_cols, return_counts=True)
            by_load = unique_cols[np.argsort(-col_counts, kind="stable")]
            lanes_dealt = _snake_deal(by_load.size, length)
            resort = np.argsort(by_load)
            maps.append((by_load[resort], lanes_dealt[resort]))

        return BalancedMatrix(
            matrix=permuted, row_perm=row_perm, window_col_maps=maps
        )


def _snake_deal(count: int, length: int) -> np.ndarray:
    """Lane assignment for ``count`` items dealt snake-wise into ``length``
    lanes: round 0 left-to-right, round 1 right-to-left, and so on."""
    positions = np.arange(count, dtype=np.int64)
    rounds = positions // length
    offsets = positions % length
    return np.where(rounds % 2 == 0, offsets, length - 1 - offsets)


def identity_balance(matrix: CooMatrix, length: int) -> BalancedMatrix:
    """A no-op :class:`BalancedMatrix` (used when load balancing is off)."""
    require_positive_length(length)
    m, _ = matrix.shape
    empty_map = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    maps = [empty_map for _ in range(window_count(m, length))]
    return BalancedMatrix(
        matrix=matrix,
        row_perm=np.arange(m, dtype=np.int64),
        window_col_maps=maps,
    )
