"""Naive collision-avoidance scheduling (the paper's strawman, Section 3.3).

Without edge coloring, each multiplier's buffer simply holds its column
segment's nonzeros in row order, and the array advances in lockstep: every
cycle the hardware attempts to forward all current head-of-line elements.
Whenever two or more heads target the same adder, those values are *not*
forwarded — the array stalls and replays the colliding elements one per
cycle (the naive hardware has no reordering logic, so resolution is
serial).  Only once a buffer position fully drains do the lanes advance to
the next position.

This reproduces the paper's empirical characterization of the naive policy:
hardware utilization collapses to roughly ``1 / (0.63 * l)`` on collision-
heavy inputs (the Figure 7a Naive series sits near 0.4% for l = 256), and
execution falls behind a plain 1D systolic array once density exceeds
~0.008 for 16384-square uniform matrices — measured in
``benchmarks/bench_naive_crossover.py``.

The outcome is expressed as a *coloring*: the cycle at which an element
issues is its buffer slot.  It is proper by construction — collision-free
heads have distinct rows and lanes; serialized elements occupy private
cycles — so the whole Schedule/machine stack runs unmodified on naive
schedules, merely with many more colors.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import WindowGraph


def naive_coloring(graph: WindowGraph) -> np.ndarray:
    """Lockstep stall-and-serialize schedule for one window.

    Returns a per-edge int64 array: the cycle at which each edge issues.
    """
    colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return colors

    length = graph.length
    # Per-lane queues in canonical (row, col) order: a stable sort of edge
    # ids by column segment preserves row-major arrival order per lane.
    order = np.argsort(graph.colsegs, kind="stable")
    seg_sorted = graph.colsegs[order]
    lane_starts = np.searchsorted(seg_sorted, np.arange(length + 1))

    ptr = lane_starts[:-1].copy()
    ends = lane_starts[1:]
    local_rows = graph.local_rows

    cycle = 0
    remaining = graph.edge_count
    while remaining:
        active = np.nonzero(ptr < ends)[0]
        head_edges = order[ptr[active]]
        head_rows = local_rows[head_edges]

        # Heads whose destination adder is unique forward together.
        multiplicity = np.bincount(head_rows, minlength=length)
        free_mask = multiplicity[head_rows] == 1
        free_edges = head_edges[free_mask]
        collided_edges = head_edges[~free_mask]

        if free_edges.size:
            colors[free_edges] = cycle
            cycle += 1
        # Colliding values are replayed one per cycle, in lane order.
        for edge in collided_edges:
            colors[edge] = cycle
            cycle += 1

        ptr[active] += 1
        remaining -= active.size
    return colors


def naive_stalls(graph: WindowGraph, colors: np.ndarray) -> int:
    """Stall events implied by a naive coloring.

    A lane stalls in every cycle from its first arrival to its last issue
    in which it does not issue; summing ``last_issue_cycle + 1 - queue_len``
    over lanes counts exactly those events.
    """
    if graph.edge_count == 0:
        return 0
    stalls = 0
    for lane in range(graph.length):
        mask = graph.colsegs == lane
        count = int(mask.sum())
        if count == 0:
            continue
        last = int(colors[mask].max())
        stalls += (last + 1) - count
    return stalls
