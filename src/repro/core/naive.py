"""Naive collision-avoidance scheduling (the paper's strawman, Section 3.3).

Without edge coloring, each multiplier's buffer simply holds its column
segment's nonzeros in row order, and the array advances in lockstep: every
cycle the hardware attempts to forward all current head-of-line elements.
Whenever two or more heads target the same adder, those values are *not*
forwarded — the array stalls and replays the colliding elements one per
cycle (the naive hardware has no reordering logic, so resolution is
serial).  Only once a buffer position fully drains do the lanes advance to
the next position.

This reproduces the paper's empirical characterization of the naive policy:
hardware utilization collapses to roughly ``1 / (0.63 * l)`` on collision-
heavy inputs (the Figure 7a Naive series sits near 0.4% for l = 256), and
execution falls behind a plain 1D systolic array once density exceeds
~0.008 for 16384-square uniform matrices — measured in
``benchmarks/bench_naive_crossover.py``.

The outcome is expressed as a *coloring*: the cycle at which an element
issues is its buffer slot.  It is proper by construction — collision-free
heads have distinct rows and lanes; serialized elements occupy private
cycles — so the whole Schedule/machine stack runs unmodified on naive
schedules, merely with many more colors.

Flat multi-window kernel
------------------------

Like "matching" and "first_fit" before it, the naive policy runs through a
flat NumPy kernel (:func:`naive_coloring_flat`) spanning *every window at
once*: windows are independent, each keeps its own cycle counter, and only
the semantically sequential dimension — the lockstep buffer position —
remains a Python loop.  One round resolves the head-of-line element of
every (window, lane) queue simultaneously; serialization ranks for
colliding heads come from a vectorized within-window cumulative count.
The kernel reproduces the frozen per-window seed implementation
(:func:`repro.graph._reference.reference_naive_coloring`) edge-for-edge,
pinned by ``tests/graph/test_coloring_properties.py``; the stall count is
likewise one vectorized segment-max pass (:func:`naive_stalls_flat`).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import WindowGraph


def naive_coloring_flat(
    local_rows: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    length: int,
    n_windows: int,
) -> np.ndarray:
    """Lockstep stall-and-serialize schedule over many windows at once.

    Args:
        local_rows: per-edge destination adder (row index within window).
        colsegs: per-edge multiplier lane.
        window_ids: per-edge owning window; edges must be grouped by window
            and, within a (window, lane) pair, in row-major arrival order —
            the canonical COO order delivers exactly this after the stable
            lane sort below.
        length: accelerator length ``l``.
        n_windows: total window count.

    Returns:
        int64 cycle-of-issue per edge, aligned with the edge arrays.

    Each round advances every still-active (window, lane) queue by one
    buffer position: heads whose destination adder is unique *within their
    window* forward together in one cycle; colliding heads serialize one
    per cycle in lane order.  Cycle counters are per window, so the batch
    reproduces the sequential per-window result exactly.
    """
    edge_count = int(local_rows.size)
    colors = np.full(edge_count, -1, dtype=np.int64)
    if edge_count == 0:
        return colors

    # Per-(window, lane) queues in canonical (row, col) order: a stable
    # sort of edge ids by the combined window-lane key preserves row-major
    # arrival order inside each queue.
    lane_key = window_ids * length + colsegs
    order = np.argsort(lane_key, kind="stable")
    key_sorted = lane_key[order]
    queue_starts = np.searchsorted(
        key_sorted, np.arange(n_windows * length + 1, dtype=np.int64)
    )

    ptr = queue_starts[:-1].copy()
    ends = queue_starts[1:]
    cycles = np.zeros(n_windows, dtype=np.int64)
    window_range = np.arange(n_windows + 1, dtype=np.int64)

    remaining = edge_count
    while remaining:
        # Heads of every non-empty queue, in flat (window, lane) order.
        active = np.flatnonzero(ptr < ends)
        head_edges = order[ptr[active]]
        head_rows = local_rows[head_edges]
        head_wins = active // length

        # Heads whose destination adder is unique in their window forward
        # together; duplicates stall and serialize.
        adder_key = head_wins * length + head_rows
        multiplicity = np.bincount(adder_key, minlength=n_windows * length)
        free_mask = multiplicity[adder_key] == 1

        free_wins = head_wins[free_mask]
        colors[head_edges[free_mask]] = cycles[free_wins]

        # Windows that forwarded at least one free head spend one cycle on
        # the parallel forward before serializing their collisions.
        free_spent = np.zeros(n_windows, dtype=np.int64)
        free_spent[free_wins] = 1

        coll_wins = head_wins[~free_mask]
        # Serialization rank: position of each colliding head among its
        # window's collisions, in lane order (the flat order is already
        # window-grouped and lane-ascending).
        coll_starts = np.searchsorted(coll_wins, window_range[:-1])
        ranks = np.arange(coll_wins.size, dtype=np.int64) - coll_starts[coll_wins]
        colors[head_edges[~free_mask]] = (
            cycles[coll_wins] + free_spent[coll_wins] + ranks
        )

        cycles += free_spent
        cycles += np.bincount(coll_wins, minlength=n_windows)
        ptr[active] += 1
        remaining -= active.size
    return colors


def naive_stalls_flat(
    colors: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    length: int,
    n_windows: int,
) -> int:
    """Stall events implied by a flat naive coloring, all windows at once.

    A lane stalls in every cycle from its first arrival to its last issue
    in which it does not issue; summing ``last_issue_cycle + 1 - queue_len``
    over non-empty (window, lane) queues counts exactly those events.
    """
    if colors.size == 0:
        return 0
    lane_key = window_ids * length + colsegs
    slots = n_windows * length
    last = np.full(slots, -1, dtype=np.int64)
    np.maximum.at(last, lane_key, colors)
    counts = np.bincount(lane_key, minlength=slots)
    occupied = counts > 0
    return int(((last[occupied] + 1) - counts[occupied]).sum())


def naive_coloring(graph: WindowGraph) -> np.ndarray:
    """Lockstep stall-and-serialize schedule for one window.

    Returns a per-edge int64 array: the cycle at which each edge issues.
    Single-window wrapper over :func:`naive_coloring_flat`.
    """
    return naive_coloring_flat(
        np.asarray(graph.local_rows, dtype=np.int64),
        np.asarray(graph.colsegs, dtype=np.int64),
        np.zeros(graph.edge_count, dtype=np.int64),
        graph.length,
        1,
    )


def naive_stalls(graph: WindowGraph, colors: np.ndarray) -> int:
    """Stall events implied by a naive coloring of one window."""
    return naive_stalls_flat(
        np.asarray(colors, dtype=np.int64),
        np.asarray(graph.colsegs, dtype=np.int64),
        np.zeros(graph.edge_count, dtype=np.int64),
        graph.length,
        1,
    )
