"""The scheduled-matrix storage format: M_sch, Row_sch, Col_sch.

Section 3.3: scheduling produces three l-by-C_total matrices.  ``M_sch``
holds matrix values rearranged and compressed; ``Row_sch`` holds each
element's row mod l (the crossbar destination); ``Col_sch`` holds its
original column (the vector element to multiply with).  "These matrices can
be viewed as a compressed storage format similar to the Coordinate format."

We store them timestep-major — arrays of shape (C_total, l) — so timestep
``t`` is the contiguous slice fed to the multipliers at cycle ``t``.  Empty
slots carry ``row == -1`` / ``col == -1`` / value 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError

#: Sentinel for unoccupied schedule slots.
EMPTY = -1

#: Pipeline depth: multiplier, crossbar, adder (Section 3.4: "GUST has 3
#: levels", adding 2 cycles of fill to the color count).
PIPELINE_FILL_CYCLES = 2


@dataclass(frozen=True)
class Schedule:
    """A complete collision-free GUST schedule for one matrix.

    Attributes:
        length: accelerator length ``l``.
        shape: original matrix shape (m, n) *after* any load-balancing row
            permutation (the pipeline tracks the permutation itself).
        m_sch: (C_total, l) float64 — value entering multiplier j at step t.
        row_sch: (C_total, l) int64 — window-local destination adder, or -1.
        col_sch: (C_total, l) int64 — original column index, or -1.
        window_colors: colors (timesteps) used by each row window; their sum
            is C_total.
    """

    length: int
    shape: tuple[int, int]
    m_sch: np.ndarray
    row_sch: np.ndarray
    col_sch: np.ndarray
    window_colors: tuple[int, ...]

    # -- sizes -------------------------------------------------------------

    @property
    def total_colors(self) -> int:
        """C_total: timesteps of multiplier input (buffer length)."""
        return int(self.m_sch.shape[0])

    @property
    def window_count(self) -> int:
        return len(self.window_colors)

    @property
    def nnz(self) -> int:
        """Scheduled nonzeros (occupied slots)."""
        return int((self.row_sch != EMPTY).sum())

    @property
    def execution_cycles(self) -> int:
        """Total cycles: color sum plus pipeline fill (Section 3.4)."""
        if self.nnz == 0:
            return 0
        return self.total_colors + PIPELINE_FILL_CYCLES

    @property
    def utilization(self) -> float:
        """Hardware utilization: NZ ops per cycle per unit (Section 1).

        Each scheduled nonzero occupies one multiplier and one adder for one
        cycle, so the ratio reduces to nnz / (l * cycles).
        """
        cycles = self.execution_cycles
        if cycles == 0:
            return 0.0
        return self.nnz / (self.length * cycles)

    @property
    def occupancy(self) -> float:
        """Fraction of schedule slots occupied (densified-stream quality)."""
        slots = self.m_sch.size
        return self.nnz / slots if slots else 0.0

    def window_offsets(self) -> np.ndarray:
        """Start timestep of each window (cumulative color sum)."""
        offsets = np.zeros(self.window_count, dtype=np.int64)
        np.cumsum(self.window_colors[:-1], out=offsets[1:])
        return offsets

    def window_of_timestep(self) -> np.ndarray:
        """Window index owning each timestep (length C_total)."""
        return np.repeat(
            np.arange(self.window_count, dtype=np.int64),
            np.asarray(self.window_colors, dtype=np.int64),
        )

    def occupied_slots(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinates of every scheduled nonzero: (steps, lanes, rows).

        ``steps``/``lanes`` index into the schedule arrays; ``rows`` is the
        global (window-offset) destination row of each occupied slot.  This
        is the gather every replay/refresh path starts from.
        """
        occupied = self.row_sch != EMPTY
        steps, lanes = np.nonzero(occupied)
        window_of_step = self.window_of_timestep()
        global_rows = (
            window_of_step[steps] * self.length + self.row_sch[steps, lanes]
        )
        return steps, lanes, global_rows

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency and collision freedom.

        Raises:
            ScheduleError: on shape mismatch, out-of-range indices, slot
                inconsistency, or two elements of one row sharing a timestep.
        """
        m, n = self.shape
        expected = (self.total_colors, self.length)
        for name, arr in (
            ("m_sch", self.m_sch),
            ("row_sch", self.row_sch),
            ("col_sch", self.col_sch),
        ):
            if arr.shape != expected:
                raise ScheduleError(
                    f"{name} has shape {arr.shape}, expected {expected}"
                )
        if sum(self.window_colors) != self.total_colors:
            raise ScheduleError("window_colors do not sum to C_total")
        if any(c < 0 for c in self.window_colors):
            raise ScheduleError("negative window color count")

        occupied = self.row_sch != EMPTY
        if ((self.col_sch != EMPTY) != occupied).any():
            raise ScheduleError("row_sch and col_sch disagree on occupancy")
        if (self.m_sch[~occupied] != 0.0).any():
            raise ScheduleError("value present in an empty slot")
        rows = self.row_sch[occupied]
        cols = self.col_sch[occupied]
        if rows.size and (rows.min() < 0 or rows.max() >= self.length):
            raise ScheduleError("row_sch destination out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= n):
            raise ScheduleError("col_sch index out of range")

        # Collision freedom: within a timestep, destinations are unique.
        steps = np.nonzero(occupied)[0]
        keys = steps * self.length + self.row_sch[occupied]
        if np.unique(keys).size != keys.size:
            raise ScheduleError("collision: one adder addressed twice in a cycle")

        # Window containment: each timestep's global rows stay in its window.
        window_of_step = self.window_of_timestep()
        global_rows = window_of_step[steps] * self.length + rows
        if global_rows.size and global_rows.max() >= m:
            raise ScheduleError("scheduled row beyond matrix height")
