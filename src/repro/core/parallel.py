"""Parallel arrangement of GUSTs (Section 5.5, Scalability).

The crossbar's cost grows quadratically with length, so beyond some size it
is cheaper to run ``k`` length-``l`` GUSTs side by side than one length-k*l
GUST.  Windows are independent, so the arrangement needs no new scheduling:
"the Edge-Coloring schedule found for a length-l GUST is applicable to k
parallel length-l GUSTs."  The costs the paper names are (1) reduced
resource sharing (k*l rows/columns -> l) and (2) imperfect division of work
across the k units — both visible in this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import GustPipeline
from repro.core.schedule import PIPELINE_FILL_CYCLES, Schedule
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport


@dataclass(frozen=True)
class ParallelRunReport:
    """Cycle accounting for a k-way parallel GUST run."""

    unit_cycles: tuple[int, ...]
    schedule: Schedule

    @property
    def cycles(self) -> int:
        """Wall-clock cycles: the slowest unit plus pipeline fill."""
        busiest = max(self.unit_cycles) if self.unit_cycles else 0
        return busiest + PIPELINE_FILL_CYCLES if busiest else 0

    @property
    def imbalance(self) -> float:
        """max/mean unit work; 1.0 is a perfect split."""
        work = np.asarray(self.unit_cycles, dtype=np.float64)
        if work.size == 0 or work.mean() == 0.0:
            return 1.0
        return float(work.max() / work.mean())


class ParallelGust:
    """``units`` length-``length`` GUSTs fed from one schedule.

    Args:
        length: the per-unit accelerator length ``l``.
        units: how many GUSTs run side by side (``k``).
        assignment: "round_robin" (the natural streaming order) or "lpt"
            (longest-processing-time greedy, an upper-bound heuristic on how
            well work could be divided).
    """

    def __init__(
        self,
        length: int,
        units: int,
        algorithm: str = "matching",
        load_balance: bool = True,
        assignment: str = "round_robin",
    ):
        if units <= 0:
            raise HardwareConfigError(f"units must be positive, got {units}")
        if assignment not in ("round_robin", "lpt"):
            raise HardwareConfigError(
                f"assignment must be 'round_robin' or 'lpt', got {assignment!r}"
            )
        self.length = length
        self.units = units
        self.assignment = assignment
        self.pipeline = GustPipeline(
            length, algorithm=algorithm, load_balance=load_balance
        )

    def run(self, matrix: CooMatrix) -> ParallelRunReport:
        """Schedule once, split windows over the units, report cycles."""
        schedule, _, _ = self.pipeline.preprocess(matrix)
        loads = self._assign(schedule.window_colors)
        return ParallelRunReport(unit_cycles=tuple(loads), schedule=schedule)

    def cycle_report(self, report: ParallelRunReport) -> CycleReport:
        """Utilization over the aggregate k*2l arithmetic units."""
        return CycleReport(
            cycles=report.cycles,
            useful_ops=2 * report.schedule.nnz,
            total_units=2 * self.length * self.units,
        )

    def _assign(self, window_colors: tuple[int, ...]) -> list[int]:
        loads = [0] * self.units
        if self.assignment == "round_robin":
            for index, colors in enumerate(window_colors):
                loads[index % self.units] += colors
        else:
            for colors in sorted(window_colors, reverse=True):
                loads[int(np.argmin(loads))] += colors
        return loads
