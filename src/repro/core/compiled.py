"""``CompiledSpmv``: the compiled-operator handle the public API returns.

The paper's deployment model is *schedule once, replay everywhere*.  This
module is the "replay everywhere" half as one object:
``GustPipeline.compile(matrix, backend="auto")`` returns a
:class:`CompiledSpmv` carrying

* ``matvec(x)`` / ``matmat(B)`` — replay through the resolved
  :mod:`~repro.core.backends` kernel;
* ``refresh_values(...)`` — same pattern, new values, in place: one
  O(nnz) gather over the compiled structure (the Jacobian/Hessian case),
  no recompile;
* ``backend_name`` / ``stats`` — which backend was chosen and what it
  guarantees (capability flags, probe verdict, plan sizes, compile and
  preprocessing cost).

Solvers bind a handle once and iterate; the serving layer pins one per
tenant; benchmarks gate through it.  The handle replaces the old scatter
of ``use_plans=`` kwargs and direct ``ExecutionPlan.execute*`` call
sites.

Thread-safety: replay methods are safe to share when the backend declares
``thread_safe`` (all built-ins do).  ``refresh_values`` swaps value
streams atomically — concurrent replays observe the old or the new
values, never a mixture — but interleaving refreshes with replays still
means a caller cannot know *which* stream a given result used; quiesce or
version externally if that matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.backends.base import BackendCapabilities, CompiledKernel
from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan
from repro.errors import BackendError
from repro.types import PreprocessReport


@dataclass
class CompiledStats:
    """What one compile resolved to, and what it cost.

    ``bit_identical`` is the *effective* guarantee: the backend's declared
    flag, downgraded by a failed probe for ``probed`` backends.
    ``probe_verdict`` is ``None`` when no probe ran.
    """

    backend: str
    capabilities: BackendCapabilities
    bit_identical: bool
    probe_verdict: bool | None
    shape: tuple[int, int]
    nnz: int
    segments: int
    length: int
    #: Analytic accelerator cycles for one replay of the schedule.
    cycles_per_replay: int
    compile_seconds: float
    #: Scheduling report when the handle came from ``compile(matrix)``;
    #: updated on every compile call that served this handle from memo.
    preprocess: PreprocessReport | None = field(default=None, repr=False)


class CompiledSpmv:
    """A matrix compiled onto one execution backend, ready to replay.

    Produced by :meth:`GustPipeline.compile` /
    :meth:`GustPipeline.compile_schedule`; not constructed directly.
    """

    def __init__(
        self,
        kernel: CompiledKernel,
        backend_name: str,
        stats: CompiledStats,
        plan: ExecutionPlan | None,
    ):
        self._kernel = kernel
        self.backend_name = backend_name
        self.stats = stats
        #: The compiled plan (``None`` for the uncompiled ``legacy-scatter``
        #: baseline, which replays straight off the schedule arrays).
        self.plan = plan

    # -- replay --------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.stats.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """One SpMV replay; ``y`` in original row order."""
        return self._kernel.matvec(x)

    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        """SpMM replay of a dense ``(n, k)`` block; returns ``(m, k)``."""
        return self._kernel.matmat(dense, tile_budget=tile_budget)

    __call__ = matvec

    # -- value refresh -------------------------------------------------------

    def refresh_values(self, balanced_data: np.ndarray) -> None:
        """Swap in new values for the same sparsity pattern, in place.

        ``balanced_data`` is the balanced-order value stream of a matrix
        with exactly this handle's pattern (what
        :meth:`ExecutionPlan.with_values` consumes).  One O(nnz) gather;
        the backend kernel reuses every structural artifact of the
        original compile.
        """
        if self.plan is None:
            raise BackendError(
                f"backend {self.backend_name!r} replays the schedule "
                f"arrays directly and cannot refresh values in place; "
                f"re-preprocess instead"
            )
        self.refresh_from_plan(self.plan.with_values(balanced_data))

    def refresh_from_plan(self, plan: ExecutionPlan) -> None:
        """In-place refresh from an already value-refreshed plan.

        The cache tiers hand refreshed plans out directly
        (:meth:`ScheduleCache.fetch` on a value change), so callers
        sitting on one — the serving registry re-registering a tenant —
        skip the gather in :meth:`refresh_values`.
        """
        if self.plan is None:
            raise BackendError(
                f"backend {self.backend_name!r} cannot refresh values in "
                f"place; re-preprocess instead"
            )
        self._kernel.refresh_values(plan)
        self.plan = plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self.shape
        return (
            f"<CompiledSpmv {m}x{n} nnz={self.stats.nnz} "
            f"backend={self.backend_name!r} "
            f"bit_identical={self.stats.bit_identical}>"
        )
