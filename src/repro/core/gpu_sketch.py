"""GPU-analogue GUST cost model (paper Section 7 sketch).

The conclusion section observes that a GPU already contains GUST's
ingredients: each thread block's shared memory acts as the crossbar, so an
implementable GUST is "a small length-k GUST for each block", with the
caveat that "GPUs are often memory-bound in the case of matrix-vector
multiplication".

This module turns that paragraph into a first-order cost model: a grid of
``blocks`` length-``block_length`` GUSTs executes the windowed schedule in
parallel (compute side), while the whole SpMV must also move its operand
bytes through device memory (bandwidth side).  Time is the maximum of the
two — and for realistic sparsities the bandwidth roof dominates, which is
precisely the paper's caveat and what tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import GustPipeline
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix

#: Bytes per scheduled nonzero: 4-byte value + 4-byte column index
#: + 1-byte row tag (block-local), matching the GUST stream layout.
_BYTES_PER_NNZ = 9
#: Bytes per vector/output element (float32).
_BYTES_PER_ELEMENT = 4


@dataclass(frozen=True)
class GpuSketchReport:
    """Cost breakdown of one GPU-analogue SpMV."""

    compute_seconds: float
    memory_seconds: float
    blocks_used: int

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def memory_bound(self) -> bool:
        """True when the bandwidth roof, not compute, sets the runtime."""
        return self.memory_seconds >= self.compute_seconds


class GpuGustSketch:
    """A grid of small shared-memory GUSTs plus a bandwidth roof.

    Args:
        blocks: concurrent thread blocks (each one small GUST).
        block_length: lanes per block — bounded by shared memory in
            practice, so small (the paper: "a small length-k GUST").
        clock_hz: effective per-block issue rate.
        memory_bandwidth_gbps: device memory bandwidth (decimal GB/s).
    """

    def __init__(
        self,
        blocks: int = 128,
        block_length: int = 32,
        clock_hz: float = 1.4e9,
        memory_bandwidth_gbps: float = 900.0,
    ):
        if blocks <= 0 or block_length <= 0:
            raise HardwareConfigError("blocks and block_length must be positive")
        if clock_hz <= 0 or memory_bandwidth_gbps <= 0:
            raise HardwareConfigError("clock and bandwidth must be positive")
        self.blocks = blocks
        self.block_length = block_length
        self.clock_hz = clock_hz
        self.memory_bandwidth_gbps = memory_bandwidth_gbps
        self._pipeline = GustPipeline(block_length)

    def estimate(self, matrix: CooMatrix) -> GpuSketchReport:
        """Cost one SpMV: windowed schedule over blocks vs bandwidth roof."""
        report, _ = self._pipeline.preprocess_stats(matrix)
        m, n = matrix.shape
        # Compute side: windows split round-robin over the blocks; each
        # block replays its share of the schedule at one timestep/cycle.
        total_colors = max(0, report.cycles - 2)
        per_block_colors = -(-total_colors // self.blocks) if total_colors else 0
        compute_seconds = (per_block_colors + 2) / self.clock_hz if total_colors else 0.0

        bytes_moved = (
            matrix.nnz * _BYTES_PER_NNZ + (m + n) * _BYTES_PER_ELEMENT
        )
        memory_seconds = bytes_moved / (self.memory_bandwidth_gbps * 1e9)
        return GpuSketchReport(
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            blocks_used=min(self.blocks, max(1, total_colors)),
        )
