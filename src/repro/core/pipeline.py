"""End-to-end GUST SpMV: preprocess once, execute many times.

This is the library's main entry point.  It mirrors the paper's software
flow: (optional) load balancing, edge-coloring scheduling (the one-time
preprocessing step), then repeated SpMV execution — either the fast
vectorized replay (used by the experiment harness) or the cycle-accurate
:class:`~repro.core.machine.GustMachine`.

Pass ``cache=`` to layer a :class:`~repro.core.cache.ScheduleCache` under
:meth:`GustPipeline.preprocess`: repeated preprocessing of the same
sparsity pattern returns the stored schedule (identical values) or runs
only the value scatter (same pattern, new values — the Jacobian/Hessian
case), so iterative solvers and SpMM replays pay the coloring once.

Pass ``store=`` to add the persistent tier: a
:class:`~repro.core.store.DiskScheduleStore` (or a directory path, or
``True`` for the default ``~/.cache/gust`` location) layered under the
memory cache, so lookups go memory -> disk -> compute and schedules
survive process restarts — the paper's Table 4 deployment model, where a
fleet of workers shares one schedule artifact store.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.cache import ScheduleCache
from repro.core.store import DiskScheduleStore
from repro.core.load_balance import BalancedMatrix, LoadBalancer, identity_balance
from repro.core.machine import GustMachine, MachineResult
from repro.core.plan import ExecutionPlan
from repro.core.schedule import PIPELINE_FILL_CYCLES, Schedule
from repro.core.scheduler import GustScheduler
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport, PreprocessReport


@dataclass(frozen=True)
class PipelineResult:
    """Everything produced by one full preprocess-plus-execute run."""

    y: np.ndarray
    schedule: Schedule
    balanced: BalancedMatrix
    preprocess: PreprocessReport
    cycle_report: CycleReport


class GustPipeline:
    """GUST's hardware/software co-design as a reusable object.

    Args:
        length: accelerator length ``l``.
        algorithm: scheduling policy ("matching", "first_fit", "euler", or
            "naive"); see :data:`repro.core.scheduler.SCHEDULING_ALGORITHMS`.
        load_balance: apply the Section 3.5 three-step balancer (the paper's
            EC/LB configuration).  Ignored for "naive", matching the paper's
            series (Naive has no LB variant).
        validate: run structural validation on every schedule (slow).
        cache: pattern-keyed schedule cache.  Pass a
            :class:`~repro.core.cache.ScheduleCache` (shareable across
            pipelines), ``True`` for a private default-capacity cache, an
            ``int`` for a private cache of that capacity, or ``None``/
            ``False`` (default) to schedule cold every time.
        store: persistent schedule tier.  Pass a
            :class:`~repro.core.store.DiskScheduleStore` (shareable across
            pipelines *and* processes), a directory path, or ``True`` for
            the default store location.  A store implies a memory cache: if
            ``cache`` is unset, a private default-capacity one is created
            to front it; if ``cache`` is an existing :class:`ScheduleCache`
            without a store, the store is attached to it.
        use_plans: replay schedules through prepared
            :class:`~repro.core.plan.ExecutionPlan` objects (compiled once
            per schedule, memoized).  ``False`` falls back to the pre-plan
            ``np.add.at`` scatter path — kept as the reference baseline for
            ``benchmarks/bench_replay_throughput.py`` and equivalence
            tests; both paths produce bit-identical results.
    """

    #: Plans memoized per pipeline (keyed by schedule identity).
    _PLAN_MEMO_CAPACITY = 8

    def __init__(
        self,
        length: int,
        algorithm: str = "matching",
        load_balance: bool = True,
        validate: bool = False,
        cache: ScheduleCache | int | bool | None = None,
        store: DiskScheduleStore | str | Path | bool | None = None,
        use_plans: bool = True,
    ):
        self.length = length
        self.use_plans = use_plans
        # id() -> (weakref to the schedule, plan): identity keys are only
        # trusted while the schedule object is alive, so a recycled id()
        # can never alias a dead entry.  Guarded by a lock: the serving
        # layer replays one pipeline's plans from many worker threads.
        self._plan_memo: dict[int, tuple] = {}
        self._plan_lock = threading.Lock()
        self.algorithm = algorithm
        self.load_balance = load_balance and algorithm != "naive"
        self.scheduler = GustScheduler(length, algorithm, validate=validate)
        self._balancer = LoadBalancer(length) if self.load_balance else None
        if store is True:
            store = DiskScheduleStore()
        elif store is False:
            store = None
        elif isinstance(store, (str, Path)):
            store = DiskScheduleStore(directory=store)
        if cache is False and store is not None:
            # The store is only reachable through the memory tier, so this
            # combination would silently never persist anything.
            raise HardwareConfigError(
                "cache=False disables all caching and is incompatible with "
                "a persistent store; drop one of the two arguments"
            )
        if cache is True:
            cache = ScheduleCache(store=store)
        elif cache is False:
            cache = None
        elif isinstance(cache, int):
            cache = ScheduleCache(capacity=cache, store=store)
        elif cache is None and store is not None:
            cache = ScheduleCache(store=store)
        if cache is not None and store is not None and cache.store is None:
            cache.store = store
        self.cache = cache
        self.store = store if store is not None else (
            cache.store if cache is not None else None
        )

    # -- preprocessing -------------------------------------------------------

    def preprocess(
        self, matrix: CooMatrix
    ) -> tuple[Schedule, BalancedMatrix, PreprocessReport]:
        """One-time scheduling of a matrix (the paper's preprocessing phase).

        Returns the schedule, the balanced matrix (identity when load
        balancing is off), and a wall-clock report.  With a cache attached,
        a previously seen pattern skips the coloring entirely: the report's
        ``notes["cache_hit"]`` / ``notes["cache_refresh"]`` flags record
        which path ran, and ``notes["disk_hit"]`` whether the persistent
        tier (rather than process memory) supplied the schedule.
        """
        started = time.perf_counter()
        cached = None
        if self.cache is not None:
            cached = self.cache.fetch(
                matrix, self.length, self.algorithm, self.load_balance
            )
        if cached is not None:
            self.scheduler.last_stalls = cached.stalls
            if cached.plan is not None:
                self._memoize_plan(cached.schedule, cached.plan)
            elapsed = time.perf_counter() - started
            report = PreprocessReport(
                seconds=elapsed,
                windows=cached.schedule.window_count,
                total_colors=cached.schedule.total_colors,
                notes={
                    "stalls": float(cached.stalls),
                    "cache_hit": 0.0 if cached.refreshed else 1.0,
                    "cache_refresh": 1.0 if cached.refreshed else 0.0,
                    "disk_hit": 1.0 if cached.from_disk else 0.0,
                },
            )
            return cached.schedule, cached.balanced, report
        if self._balancer is not None:
            balanced = self._balancer.balance(matrix)
        else:
            balanced = identity_balance(matrix, self.length)
        schedule = self.scheduler.schedule_balanced(balanced)
        if self.cache is not None:
            plan = self.cache.insert(
                matrix,
                self.length,
                self.algorithm,
                self.load_balance,
                schedule,
                balanced,
                stalls=self.scheduler.last_stalls,
            )
            if plan is not None:
                self._memoize_plan(schedule, plan)
        elapsed = time.perf_counter() - started
        notes = {"stalls": float(self.scheduler.last_stalls)}
        if self.cache is not None:
            notes["cache_hit"] = 0.0
            notes["cache_refresh"] = 0.0
            notes["disk_hit"] = 0.0
        report = PreprocessReport(
            seconds=elapsed,
            windows=schedule.window_count,
            total_colors=schedule.total_colors,
            notes=notes,
        )
        return schedule, balanced, report

    def preprocess_stats(
        self, matrix: CooMatrix
    ) -> tuple[CycleReport, PreprocessReport]:
        """Cycle statistics without building the schedule arrays.

        Equivalent to :meth:`preprocess` + :meth:`cycle_report` but O(nnz)
        memory, which matters for the naive policy on dense inputs.
        """
        started = time.perf_counter()
        if self._balancer is not None:
            balanced = self._balancer.balance(matrix)
        else:
            balanced = identity_balance(matrix, self.length)
        counts = self.scheduler.color_counts(balanced)
        elapsed = time.perf_counter() - started
        total = int(sum(counts))
        cycles = total + PIPELINE_FILL_CYCLES if matrix.nnz else 0
        cycle_report = CycleReport(
            cycles=cycles,
            useful_ops=2 * matrix.nnz,
            total_units=2 * self.length,
            stalls=self.scheduler.last_stalls,
        )
        preprocess = PreprocessReport(
            seconds=elapsed,
            windows=len(counts),
            total_colors=total,
            notes={"stalls": float(self.scheduler.last_stalls)},
        )
        return cycle_report, preprocess

    # -- execution -----------------------------------------------------------

    def _memoize_plan(self, schedule: Schedule, plan: ExecutionPlan) -> None:
        """Remember a compiled plan for this schedule object's lifetime."""
        with self._plan_lock:
            self._plan_memo[id(schedule)] = (weakref.ref(schedule), plan)
            while len(self._plan_memo) > self._PLAN_MEMO_CAPACITY:
                self._plan_memo.pop(next(iter(self._plan_memo)))

    def plan_for(
        self, schedule: Schedule, balanced: BalancedMatrix
    ) -> ExecutionPlan:
        """The prepared :class:`ExecutionPlan` for a schedule, compiled once.

        Plans are memoized per schedule object (and pre-seeded by the
        schedule cache, whose entries carry their plan), so iterative
        callers — solvers, SpMM column streams — pay the structural sort
        exactly once and every subsequent call is a dictionary lookup.
        A memoized plan is only served for the ``balanced`` it was
        compiled against: pairing the schedule with a different row
        permutation recompiles, preserving the scatter path's contract.

        Thread-safe: the memo is lock-guarded, and a rare concurrent
        compile of the same schedule is benign (identical plans; last
        writer's is memoized).
        """
        with self._plan_lock:
            memoized = self._plan_memo.get(id(schedule))
        if memoized is not None and memoized[0]() is schedule:
            plan = memoized[1]
            # Identity check first: every internal producer hands the
            # plan and the BalancedMatrix the same row_perm array, so the
            # O(m) comparison only runs for exotic caller pairings.
            if plan.row_perm is balanced.row_perm or np.array_equal(
                plan.row_perm, balanced.row_perm
            ):
                return plan
        plan = ExecutionPlan.from_schedule(schedule, row_perm=balanced.row_perm)
        self._memoize_plan(schedule, plan)
        return plan

    def executor(
        self, schedule: Schedule, balanced: BalancedMatrix
    ) -> Callable[[np.ndarray], np.ndarray]:
        """A compiled replay callable: ``apply(x) -> y``.

        Solvers bind this once after preprocessing and call it per
        iteration.  With ``use_plans`` (the default) it is the prepared
        plan's :meth:`~repro.core.plan.ExecutionPlan.execute`; with
        ``use_plans=False`` it is the pre-plan scatter path — bit-identical
        results either way.

        The plan-backed handle is safe to share across threads: the plan
        is immutable and its replay scratch buffer is thread-local, so a
        serving fleet can bind one executor per matrix and call it from
        every worker concurrently.
        """
        if self.use_plans:
            return self.plan_for(schedule, balanced).execute
        return lambda x: self.execute_scatter(schedule, balanced, x)

    def execute(
        self, schedule: Schedule, balanced: BalancedMatrix, x: np.ndarray
    ) -> np.ndarray:
        """Fast vectorized replay of a schedule (not cycle-accurate).

        Numerically identical to the machine: one product per occupied slot,
        accumulated into its destination row, then un-permuted.  Runs
        through the memoized :class:`ExecutionPlan` (compile once, replay
        many); ``use_plans=False`` selects :meth:`execute_scatter`.
        """
        if self.use_plans:
            return self.plan_for(schedule, balanced).execute(x)
        return self.execute_scatter(schedule, balanced, x)

    def execute_scatter(
        self, schedule: Schedule, balanced: BalancedMatrix, x: np.ndarray
    ) -> np.ndarray:
        """The pre-plan replay: per-call ``np.nonzero`` plus ``np.add.at``.

        Kept verbatim as the reference baseline ``benchmarks/
        bench_replay_throughput.py`` gates the plan path against (>= 3x)
        and the bit-identity oracle for plan replay tests.
        """
        x = np.asarray(x, dtype=np.float64)
        m, n = schedule.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {schedule.shape}"
            )
        steps, lanes, global_rows = schedule.occupied_slots()
        products = schedule.m_sch[steps, lanes] * x[schedule.col_sch[steps, lanes]]
        y_permuted = np.zeros(m, dtype=np.float64)
        np.add.at(y_permuted, global_rows, products)
        return balanced.unpermute_output(y_permuted)

    def execute_cycle_accurate(
        self, schedule: Schedule, balanced: BalancedMatrix, x: np.ndarray
    ) -> tuple[np.ndarray, MachineResult]:
        """Run the cycle-accurate machine; returns (y, machine result)."""
        machine = GustMachine(self.length)
        result = machine.run(schedule, np.asarray(x, dtype=np.float64))
        return balanced.unpermute_output(result.y_permuted), result

    def cycle_report(self, schedule: Schedule) -> CycleReport:
        """Analytic cycle/utilization report for a schedule.

        Each scheduled nonzero performs one multiply and one accumulate, on
        a datapath of ``l`` multipliers plus ``l`` adders.
        """
        return CycleReport(
            cycles=schedule.execution_cycles,
            useful_ops=2 * schedule.nnz,
            total_units=2 * self.length,
            stalls=self.scheduler.last_stalls,
        )

    # -- convenience -----------------------------------------------------------

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> PipelineResult:
        """Preprocess + execute in one call."""
        schedule, balanced, report = self.preprocess(matrix)
        y = self.execute(schedule, balanced, x)
        return PipelineResult(
            y=y,
            schedule=schedule,
            balanced=balanced,
            preprocess=report,
            cycle_report=self.cycle_report(schedule),
        )
