"""End-to-end GUST SpMV: preprocess once, execute many times.

This is the library's main entry point.  It mirrors the paper's software
flow: (optional) load balancing, edge-coloring scheduling (the one-time
preprocessing step), then repeated SpMV execution — either the fast
vectorized replay (used by the experiment harness) or the cycle-accurate
:class:`~repro.core.machine.GustMachine`.

Pass ``cache=`` to layer a :class:`~repro.core.cache.ScheduleCache` under
:meth:`GustPipeline.preprocess`: repeated preprocessing of the same
sparsity pattern returns the stored schedule (identical values) or runs
only the value scatter (same pattern, new values — the Jacobian/Hessian
case), so iterative solvers and SpMM replays pay the coloring once.

Pass ``store=`` to add the persistent tier: a
:class:`~repro.core.store.DiskScheduleStore` (or a directory path, or
``True`` for the default ``~/.cache/gust`` location) layered under the
memory cache, so lookups go memory -> disk -> compute and schedules
survive process restarts — the paper's Table 4 deployment model, where a
fleet of workers shares one schedule artifact store.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs as _obs
from repro.analysis.runtime import validation_enabled
from repro.obs import clock as _obs_clock
from repro.obs import trace as _trace
from repro.core.backends import compile_plan
from repro.core.backends.base import BackendCapabilities
from repro.core.backends.scatter import scatter_matmat
from repro.core.cache import ScheduleCache
from repro.core.compiled import CompiledSpmv, CompiledStats
from repro.core.store import DiskScheduleStore
from repro.core.load_balance import BalancedMatrix, LoadBalancer, identity_balance
from repro.core.machine import GustMachine, MachineResult
from repro.core.plan import DEFAULT_TILE_BUDGET, ExecutionPlan
from repro.core.schedule import PIPELINE_FILL_CYCLES, Schedule
from repro.core.scheduler import GustScheduler
from repro.errors import BackendError, HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport, PreprocessReport

#: Pipeline-level pseudo-backend: the *uncompiled* pre-plan replay (a dense
#: ``np.nonzero`` over the schedule arrays plus ``np.add.at``, every call).
#: Not in the backend registry — it needs schedule context a compiled
#: :class:`ExecutionPlan` no longer carries — and kept only as the
#: reference baseline ``benchmarks/bench_replay_throughput.py`` gates the
#: compiled backends against.
LEGACY_SCATTER = "legacy-scatter"

_LEGACY_CAPABILITIES = BackendCapabilities(
    bit_identical=True, supports_block=True, thread_safe=True, probed=False
)


class _LegacyScatterKernel:
    """Adapter giving the pre-plan replay the ``CompiledKernel`` surface.

    Binds the schedule/balanced pair the way the old ``executor()``
    closure did; every call re-derives the occupied slots (that per-call
    ``np.nonzero`` is the point — it is the cost the compiled backends
    are measured against).  Values cannot be refreshed in place: there is
    no compiled structure to reuse.
    """

    def __init__(
        self,
        pipeline: "GustPipeline",
        schedule: Schedule,
        balanced: BalancedMatrix,
    ):
        self._pipeline = pipeline
        self._schedule = schedule
        self._balanced = balanced

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._pipeline.execute_scatter(
            self._schedule, self._balanced, x
        )

    def matmat(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        schedule, balanced = self._schedule, self._balanced
        m, n = schedule.shape
        if dense.ndim != 2 or dense.shape[0] != n:
            raise HardwareConfigError(
                f"dense operand must be ({n}, k), got {dense.shape}"
            )
        steps, lanes, global_rows = schedule.occupied_slots()
        block = scatter_matmat(
            schedule.m_sch[steps, lanes],
            schedule.col_sch[steps, lanes],
            global_rows,
            m,
            dense,
            tile_budget,
        )
        return balanced.unpermute_output(block)

    def refresh_values(self, plan: ExecutionPlan) -> None:
        raise BackendError(
            "the legacy-scatter baseline replays the schedule arrays "
            "directly and cannot refresh values in place; re-preprocess "
            "instead"
        )


@dataclass(frozen=True)
class PipelineResult:
    """Everything produced by one full preprocess-plus-execute run."""

    y: np.ndarray
    schedule: Schedule
    balanced: BalancedMatrix
    preprocess: PreprocessReport
    cycle_report: CycleReport


class GustPipeline:
    """GUST's hardware/software co-design as a reusable object.

    Args:
        length: accelerator length ``l``.
        algorithm: scheduling policy ("matching", "first_fit", "euler", or
            "naive"); see :data:`repro.core.scheduler.SCHEDULING_ALGORITHMS`.
        load_balance: apply the Section 3.5 three-step balancer (the paper's
            EC/LB configuration).  Ignored for "naive", matching the paper's
            series (Naive has no LB variant).
        validate: run structural validation on every schedule (slow).
        cache: pattern-keyed schedule cache.  Pass a
            :class:`~repro.core.cache.ScheduleCache` (shareable across
            pipelines), ``True`` for a private default-capacity cache, an
            ``int`` for a private cache of that capacity, or ``None``/
            ``False`` (default) to schedule cold every time.
        store: persistent schedule tier.  Pass a
            :class:`~repro.core.store.DiskScheduleStore` (shareable across
            pipelines *and* processes), a directory path, or ``True`` for
            the default store location.  A store implies a memory cache: if
            ``cache`` is unset, a private default-capacity one is created
            to front it; if ``cache`` is an existing :class:`ScheduleCache`
            without a store, the store is attached to it.
        backend: default execution backend for :meth:`compile`,
            :meth:`compile_schedule`, and :meth:`execute` — a name from
            :func:`repro.core.backends.available_backends`, ``"auto"``
            (first bit-identical candidate, honoring the ``GUST_BACKEND``
            environment override), or :data:`LEGACY_SCATTER` for the
            uncompiled pre-plan baseline.
        require_bit_identical: demand exact scatter-oracle reproduction
            from every compile through this pipeline; a backend that
            cannot guarantee it raises
            :class:`~repro.errors.BackendCapabilityError` instead of
            silently drifting to allclose-grade results.
        jobs: worker processes for cold scheduling passes (forwarded to
            :class:`~repro.core.scheduler.GustScheduler`).  ``jobs > 1``
            partitions the window axis across a process pool for very
            large matrices; schedules — and the cache/store artifacts
            written through the usual tiers — are byte-identical to the
            single-process result.
    """

    #: Plans memoized per pipeline (keyed by schedule identity).
    _PLAN_MEMO_CAPACITY = 8

    def __init__(
        self,
        length: int,
        algorithm: str = "matching",
        load_balance: bool = True,
        validate: bool = False,
        cache: ScheduleCache | int | bool | None = None,
        store: DiskScheduleStore | str | Path | bool | None = None,
        backend: str = "auto",
        require_bit_identical: bool = False,
        jobs: int = 1,
    ):
        self.length = length
        self.backend = backend
        self.require_bit_identical = require_bit_identical
        # id() -> (weakref to the schedule, plan): identity keys are only
        # trusted while the schedule object is alive, so a recycled id()
        # can never alias a dead entry.  Guarded by a lock: the serving
        # layer replays one pipeline's plans from many worker threads.
        self._plan_memo: dict[int, tuple] = {}
        # (id(schedule), backend, require) ->
        # (weakref(schedule), token, handle, weakref(balanced)): compiled
        # handles memoized alongside plans so the per-call execute path
        # and re-compiling callers (solvers with a shared cache) pay
        # kernel compilation and the bit-identity probe once per
        # schedule.  ``token`` is the plan (compiled backends) or the
        # BalancedMatrix (legacy) the handle was built against; the
        # balanced weakref makes the common hit a pure identity check.
        self._compiled_memo: dict[tuple, tuple] = {}
        self._plan_lock = threading.Lock()
        self.algorithm = algorithm
        self.load_balance = load_balance and algorithm != "naive"
        self.scheduler = GustScheduler(
            length, algorithm, validate=validate, jobs=jobs
        )
        self._balancer = LoadBalancer(length) if self.load_balance else None
        if store is True:
            store = DiskScheduleStore()
        elif store is False:
            store = None
        elif isinstance(store, (str, Path)):
            store = DiskScheduleStore(directory=store)
        if cache is False and store is not None:
            # The store is only reachable through the memory tier, so this
            # combination would silently never persist anything.
            raise HardwareConfigError(
                "cache=False disables all caching and is incompatible with "
                "a persistent store; drop one of the two arguments"
            )
        if cache is True:
            cache = ScheduleCache(store=store)
        elif cache is False:
            cache = None
        elif isinstance(cache, int):
            cache = ScheduleCache(capacity=cache, store=store)
        elif cache is None and store is not None:
            cache = ScheduleCache(store=store)
        if cache is not None and store is not None and cache.store is None:
            cache.store = store
        self.cache = cache
        self.store = store if store is not None else (
            cache.store if cache is not None else None
        )

    # -- preprocessing -------------------------------------------------------

    def preprocess(
        self, matrix: CooMatrix
    ) -> tuple[Schedule, BalancedMatrix, PreprocessReport]:
        """One-time scheduling of a matrix (the paper's preprocessing phase).

        Returns the schedule, the balanced matrix (identity when load
        balancing is off), and a wall-clock report.  With a cache attached,
        a previously seen pattern skips the coloring entirely: the report's
        ``notes["cache_hit"]`` / ``notes["cache_refresh"]`` flags record
        which path ran, and ``notes["disk_hit"]`` whether the persistent
        tier (rather than process memory) supplied the schedule.
        """
        started = _obs_clock.monotonic()
        cached = None
        if self.cache is not None:
            cached = self.cache.fetch(
                matrix, self.length, self.algorithm, self.load_balance
            )
        if cached is not None:
            self.scheduler.last_stalls = cached.stalls
            if cached.plan is not None:
                self._memoize_plan(cached.schedule, cached.plan)
            elapsed = _obs_clock.monotonic() - started
            report = PreprocessReport(
                seconds=elapsed,
                windows=cached.schedule.window_count,
                total_colors=cached.schedule.total_colors,
                notes={
                    "stalls": float(cached.stalls),
                    "cache_hit": 0.0 if cached.refreshed else 1.0,
                    "cache_refresh": 1.0 if cached.refreshed else 0.0,
                    "disk_hit": 1.0 if cached.from_disk else 0.0,
                },
            )
            return cached.schedule, cached.balanced, report
        with _obs.phase("load_balance"):
            if self._balancer is not None:
                balanced = self._balancer.balance(matrix)
            else:
                balanced = identity_balance(matrix, self.length)
        schedule = self.scheduler.schedule_balanced(balanced)
        if self.cache is not None:
            with _obs.phase("plan_build"):
                plan = self.cache.insert(
                    matrix,
                    self.length,
                    self.algorithm,
                    self.load_balance,
                    schedule,
                    balanced,
                    stalls=self.scheduler.last_stalls,
                )
            if plan is not None:
                self._memoize_plan(schedule, plan)
        elapsed = _obs_clock.monotonic() - started
        if self.cache is not None:
            # The compute tier of the memory -> disk -> compute lookup
            # ladder: what a cold pattern actually cost end to end.
            _obs.default_registry().histogram(
                "gust_cache_lookup_seconds",
                help="Schedule-cache lookup latency by resolving tier.",
            ).observe(elapsed, tier="compute")
        notes = {"stalls": float(self.scheduler.last_stalls)}
        if self.cache is not None:
            notes["cache_hit"] = 0.0
            notes["cache_refresh"] = 0.0
            notes["disk_hit"] = 0.0
        report = PreprocessReport(
            seconds=elapsed,
            windows=schedule.window_count,
            total_colors=schedule.total_colors,
            notes=notes,
        )
        return schedule, balanced, report

    def preprocess_stats(
        self, matrix: CooMatrix
    ) -> tuple[CycleReport, PreprocessReport]:
        """Cycle statistics without building the schedule arrays.

        Equivalent to :meth:`preprocess` + :meth:`cycle_report` but O(nnz)
        memory, which matters for the naive policy on dense inputs.
        """
        started = _obs_clock.monotonic()
        if self._balancer is not None:
            balanced = self._balancer.balance(matrix)
        else:
            balanced = identity_balance(matrix, self.length)
        counts = self.scheduler.color_counts(balanced)
        elapsed = _obs_clock.monotonic() - started
        total = int(sum(counts))
        cycles = total + PIPELINE_FILL_CYCLES if matrix.nnz else 0
        cycle_report = CycleReport(
            cycles=cycles,
            useful_ops=2 * matrix.nnz,
            total_units=2 * self.length,
            stalls=self.scheduler.last_stalls,
        )
        preprocess = PreprocessReport(
            seconds=elapsed,
            windows=len(counts),
            total_colors=total,
            notes={"stalls": float(self.scheduler.last_stalls)},
        )
        return cycle_report, preprocess

    # -- execution -----------------------------------------------------------

    def _memoize_plan(self, schedule: Schedule, plan: ExecutionPlan) -> None:
        """Remember a compiled plan for this schedule object's lifetime."""
        with self._plan_lock:
            self._plan_memo[id(schedule)] = (weakref.ref(schedule), plan)
            while len(self._plan_memo) > self._PLAN_MEMO_CAPACITY:
                self._plan_memo.pop(next(iter(self._plan_memo)))

    def plan_for(
        self, schedule: Schedule, balanced: BalancedMatrix
    ) -> ExecutionPlan:
        """The prepared :class:`ExecutionPlan` for a schedule, compiled once.

        Plans are memoized per schedule object (and pre-seeded by the
        schedule cache, whose entries carry their plan), so iterative
        callers — solvers, SpMM column streams — pay the structural sort
        exactly once and every subsequent call is a dictionary lookup.
        A memoized plan is only served for the ``balanced`` it was
        compiled against: pairing the schedule with a different row
        permutation recompiles, preserving the scatter path's contract.

        Thread-safe: the memo is lock-guarded, and a rare concurrent
        compile of the same schedule is benign (identical plans; last
        writer's is memoized).
        """
        with self._plan_lock:
            memoized = self._plan_memo.get(id(schedule))
        if memoized is not None and memoized[0]() is schedule:
            plan = memoized[1]
            # Identity check first: every internal producer hands the
            # plan and the BalancedMatrix the same row_perm array, so the
            # O(m) comparison only runs for exotic caller pairings.
            if plan.row_perm is balanced.row_perm or np.array_equal(
                plan.row_perm, balanced.row_perm
            ):
                return plan
        plan = ExecutionPlan.from_schedule(schedule, row_perm=balanced.row_perm)
        if validation_enabled():
            plan.validate()
        self._memoize_plan(schedule, plan)
        return plan

    def compile_schedule(
        self,
        schedule: Schedule,
        balanced: BalancedMatrix,
        backend: str | None = None,
        require_bit_identical: bool | None = None,
    ) -> CompiledSpmv:
        """Compile an already-preprocessed schedule onto a backend.

        The :class:`~repro.core.compiled.CompiledSpmv` handle is memoized
        per (schedule, backend, requirement) for the schedule object's
        lifetime — kernel compilation and the bit-identity probe run once,
        every subsequent call is a dictionary lookup.  Safe to share
        across threads for every built-in backend.
        """
        backend = backend if backend is not None else self.backend
        require = (
            require_bit_identical
            if require_bit_identical is not None
            else self.require_bit_identical
        )
        key = (id(schedule), backend, require)
        with self._plan_lock:
            memoized = self._compiled_memo.get(key)
        if memoized is not None and memoized[0]() is schedule:
            token, handle = memoized[1], memoized[2]
            # Steady-state hit: the exact (schedule, balanced) pair the
            # handle was compiled for — two identity checks, no plan_for
            # lookup.  This is the per-call cost of ``execute``.
            if memoized[3]() is balanced:
                return handle
            # Same schedule, different BalancedMatrix object: fall back
            # to the plan-token comparison, which recompiles when the
            # pairing carries a different row permutation.
            if backend == LEGACY_SCATTER:
                if token is balanced:
                    return handle
            elif token is self.plan_for(schedule, balanced):
                return handle
        handle = self._compile_uncached(schedule, balanced, backend, require)
        token = balanced if backend == LEGACY_SCATTER else handle.plan
        with self._plan_lock:
            self._compiled_memo[key] = (
                weakref.ref(schedule),
                token,
                handle,
                weakref.ref(balanced),
            )
            while len(self._compiled_memo) > self._PLAN_MEMO_CAPACITY:
                self._compiled_memo.pop(next(iter(self._compiled_memo)))
        return handle

    def _compile_uncached(
        self,
        schedule: Schedule,
        balanced: BalancedMatrix,
        backend: str,
        require: bool,
    ) -> CompiledSpmv:
        started = _obs_clock.monotonic()
        if backend == LEGACY_SCATTER:
            kernel = _LegacyScatterKernel(self, schedule, balanced)
            stats = CompiledStats(
                backend=LEGACY_SCATTER,
                capabilities=_LEGACY_CAPABILITIES,
                bit_identical=True,
                probe_verdict=None,
                shape=schedule.shape,
                nnz=schedule.nnz,
                segments=0,
                length=self.length,
                cycles_per_replay=schedule.execution_cycles,
                compile_seconds=_obs_clock.monotonic() - started,
            )
            return CompiledSpmv(kernel, LEGACY_SCATTER, stats, plan=None)
        plan = self.plan_for(schedule, balanced)
        compiled = compile_plan(
            plan, backend=backend, require_bit_identical=require
        )
        stats = CompiledStats(
            backend=compiled.name,
            capabilities=compiled.capabilities,
            bit_identical=compiled.bit_identical,
            probe_verdict=compiled.probe_verdict,
            shape=plan.shape,
            nnz=plan.nnz,
            segments=plan.segments,
            length=self.length,
            cycles_per_replay=schedule.execution_cycles,
            compile_seconds=_obs_clock.monotonic() - started,
        )
        return CompiledSpmv(compiled.kernel, compiled.name, stats, plan=plan)

    def compile(
        self,
        matrix: CooMatrix,
        backend: str | None = None,
        require_bit_identical: bool | None = None,
    ) -> CompiledSpmv:
        """Preprocess ``matrix`` and compile it onto an execution backend.

        The main entry point of the redesigned API: schedule once (through
        whatever cache tiers this pipeline carries), compile once, then
        replay through the returned handle's ``matvec``/``matmat`` as many
        times as the workload wants.  The handle's ``stats.preprocess``
        records which cache path served the scheduling pass.
        """
        schedule, balanced, report = self.preprocess(matrix)
        handle = self.compile_schedule(
            schedule,
            balanced,
            backend=backend,
            require_bit_identical=require_bit_identical,
        )
        handle.stats.preprocess = report
        return handle

    def execute(
        self, schedule: Schedule, balanced: BalancedMatrix, x: np.ndarray
    ) -> np.ndarray:
        """Fast vectorized replay of a schedule (not cycle-accurate).

        Numerically identical to the machine: one product per occupied slot,
        accumulated into its destination row, then un-permuted.  Runs
        through the memoized :class:`~repro.core.compiled.CompiledSpmv`
        handle for this pipeline's backend (compile once, replay many);
        ``backend="legacy-scatter"`` selects :meth:`execute_scatter`.
        """
        if self.backend == LEGACY_SCATTER:
            return self.execute_scatter(schedule, balanced, x)
        # The replay hot loop: with tracing disabled this span is the
        # shared no-op (one ambient lookup, no allocation) — the bench
        # gates the whole path at <=3% over the bare kernel.
        with _trace.span("replay.execute"):
            return self.compile_schedule(schedule, balanced).matvec(x)

    def execute_scatter(
        self, schedule: Schedule, balanced: BalancedMatrix, x: np.ndarray
    ) -> np.ndarray:
        """The pre-plan replay: per-call ``np.nonzero`` plus ``np.add.at``.

        Kept verbatim as the reference baseline ``benchmarks/
        bench_replay_throughput.py`` gates the plan path against (>= 3x)
        and the bit-identity oracle for plan replay tests.
        """
        x = np.asarray(x, dtype=np.float64)
        m, n = schedule.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {schedule.shape}"
            )
        steps, lanes, global_rows = schedule.occupied_slots()
        products = schedule.m_sch[steps, lanes] * x[schedule.col_sch[steps, lanes]]
        y_permuted = np.zeros(m, dtype=np.float64)
        # The one sanctioned registry bypass: this *is* the pre-plan
        # baseline the registry backends are benchmarked against.
        np.add.at(y_permuted, global_rows, products)  # lint: disable=R1
        return balanced.unpermute_output(y_permuted)

    def execute_cycle_accurate(
        self, schedule: Schedule, balanced: BalancedMatrix, x: np.ndarray
    ) -> tuple[np.ndarray, MachineResult]:
        """Run the cycle-accurate machine; returns (y, machine result)."""
        machine = GustMachine(self.length)
        result = machine.run(schedule, np.asarray(x, dtype=np.float64))
        return balanced.unpermute_output(result.y_permuted), result

    def cycle_report(self, schedule: Schedule) -> CycleReport:
        """Analytic cycle/utilization report for a schedule.

        Each scheduled nonzero performs one multiply and one accumulate, on
        a datapath of ``l`` multipliers plus ``l`` adders.
        """
        return CycleReport(
            cycles=schedule.execution_cycles,
            useful_ops=2 * schedule.nnz,
            total_units=2 * self.length,
            stalls=self.scheduler.last_stalls,
        )

    # -- convenience -----------------------------------------------------------

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> PipelineResult:
        """Preprocess + execute in one call."""
        schedule, balanced, report = self.preprocess(matrix)
        y = self.execute(schedule, balanced, x)
        return PipelineResult(
            y=y,
            schedule=schedule,
            balanced=balanced,
            preprocess=report,
            cycle_report=self.cycle_report(schedule),
        )
