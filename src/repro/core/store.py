"""Content-addressed on-disk schedule store: the persistent cache tier.

GUST's deployment story (Table 4 vs. Serpens) assumes the edge-coloring
schedule outlives a single process: a fleet of workers serves SpMV traffic
against a shared artifact store and never pays the coloring cost twice for
one sparsity pattern.  RACE (Alappat et al.) treats coloring the same way —
a reusable preprocessing artifact, not a per-run expense.

This module is that store.  Artifacts are addressed by content, not by
name: the key is a stable fingerprint of everything the stored schedule
depends on —

* the sparsity pattern (shape, nnz, and the hashed canonical COO index
  arrays, via :func:`repro.core.cache.pattern_digest`),
* the scheduling configuration (length ``l``, coloring algorithm,
  load-balance flag), and
* the code/format version (:data:`SCHEDULER_CODE_VERSION` plus the
  serializer's format version), so artifacts from incompatible library
  revisions can never be confused for fresh ones.

Two processes that schedule the same pattern derive the same key and write
the same artifact; :func:`repro.core.serialize.save_schedule`'s atomic
write-then-rename makes the race harmless (last writer wins, every reader
sees a complete file).  A corrupt or truncated artifact — failed checksum,
bad format, wrong version — is quarantined into the store's
``.quarantine/`` subdirectory and reported as a miss, so the caller falls
through to recomputation and the damaged bytes stay available for
forensics (a writer bug should be debuggable, not destroyed); corruption
never propagates.  ``clear()`` empties the quarantine along with the live
artifacts.

The store holds a bounded byte budget.  After each write, artifacts are
evicted oldest-modification-first until the directory fits the budget
(an approximate LRU: loads refresh the file's mtime).  Budget accounting
runs off a lightweight size manifest (``.manifest.json``) so the common
under-budget insert is O(1) instead of re-statting the whole directory;
the full stat walk remains the authority and runs whenever the manifest
is stale, unreadable, reports the store over budget, or periodically as
insurance against concurrent writers (see :meth:`_account_write`).

Layered under :class:`~repro.core.cache.ScheduleCache` (pass ``store=``),
lookups go memory -> disk -> compute with write-back on miss; see
:class:`~repro.core.pipeline.GustPipeline`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults as _faults
from repro.analysis.runtime import validation_enabled
from repro.core.load_balance import BalancedMatrix
from repro.core.schedule import Schedule
from repro.obs import trace as _trace
from repro.core.serialize import (
    _FORMAT_VERSION,
    StoredSchedule,
    load_schedule_entry,
    save_schedule,
)
from repro.errors import HardwareConfigError, ScheduleError
from repro.sparse.coo import CooMatrix

#: Bump when scheduling *semantics* change (coloring order, balancer
#: behavior, schedule layout): persisted artifacts keyed under the old
#: version then simply miss instead of replaying stale schedules.
SCHEDULER_CODE_VERSION = 1

#: Default size budget for a store directory (1 GiB).
DEFAULT_MAX_BYTES = 1 << 30

#: Artifact filename suffix.
_SUFFIX = ".sched"

#: Subdirectory receiving corrupt artifacts (kept for forensics).
_QUARANTINE_DIR = ".quarantine"

#: Most corrupt artifacts retained for forensics; a recurring writer bug
#: must not grow the quarantine without bound, so the oldest files are
#: pruned past this count.
_QUARANTINE_KEEP = 8

#: Size-manifest filename (lives beside the artifacts, never matches the
#: artifact suffix so it is invisible to the artifact walk).
_MANIFEST_NAME = ".manifest.json"

#: Manifest schema version; bump on incompatible layout changes so old
#: manifests read as stale and trigger a rebuild walk.
_MANIFEST_VERSION = 1

#: Every Nth write re-syncs the manifest from a full stat walk.  Another
#: process's writes can be missing from this process's manifest copy
#: (last-writer-wins update race), which at worst delays eviction; the
#: periodic walk bounds that drift without paying the walk per insert.
_MANIFEST_RESYNC_WRITES = 64


def default_store_dir() -> Path:
    """The conventional store location, ``~/.cache/gust``.

    ``GUST_CACHE_DIR`` overrides outright; otherwise ``XDG_CACHE_HOME`` (or
    ``~/.cache``) is used as the base, matching the usual Linux cache
    conventions.
    """
    override = os.environ.get("GUST_CACHE_DIR")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "gust"
    return Path.home() / ".cache" / "gust"


def store_key_from_digest(digest: bytes, nnz: int) -> str:
    """Content address for a pattern digest under the current code version."""
    h = hashlib.blake2b(digest_size=20)
    h.update(b"gust-schedule-artifact")
    h.update(
        np.array(
            [SCHEDULER_CODE_VERSION, _FORMAT_VERSION, nnz], dtype=np.int64
        ).tobytes()
    )
    h.update(digest)
    return h.hexdigest()


@dataclass(frozen=True)
class DiskStoreStats:
    """Counters for one :class:`DiskScheduleStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    corrupt_dropped: int = 0
    evictions: int = 0
    #: Read/write ``OSError``s absorbed and degraded to a miss or failed
    #: write — the store keeps serving (by recomputing) while its disk is
    #: sick, and this counter is how operators notice the sickness.
    io_errors: int = 0
    #: Full directory stat walks performed for budget accounting; with the
    #: size manifest healthy this stays near writes / 64 instead of 1:1.
    stat_walks: int = 0


class DiskScheduleStore:
    """Bounded directory of content-addressed schedule artifacts.

    Args:
        directory: artifact directory; created on first use.  Defaults to
            :func:`default_store_dir`.
        max_bytes: total artifact byte budget; oldest artifacts are evicted
            after each write until the directory fits.
        faults: explicit :class:`~repro.faults.FaultPlan` for the
            ``store-read`` / ``store-write`` / ``store-corrupt`` injection
            sites; ``None`` uses the ambient plan (``GUST_FAULTS``).

    The store is safe to share between processes: writes are atomic
    renames, reads only ever see complete files, and corrupt files are
    quarantined on first contact.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        faults: _faults.FaultPlan | None = None,
    ):
        if max_bytes <= 0:
            raise HardwareConfigError(
                f"store byte budget must be positive, got {max_bytes}"
            )
        self.directory = (
            Path(directory) if directory is not None else default_store_dir()
        )
        self.max_bytes = max_bytes
        self._faults = faults
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._write_errors = 0
        self._corrupt_dropped = 0
        self._evictions = 0
        self._io_errors = 0
        self._stat_walks = 0

    # -- keys and paths -----------------------------------------------------

    def key_for(
        self,
        matrix: CooMatrix,
        length: int,
        algorithm: str,
        load_balance: bool,
    ) -> str:
        """Content address of ``matrix``'s schedule under one configuration."""
        from repro.core.cache import pattern_digest

        digest = pattern_digest(matrix, length, algorithm, load_balance)
        return store_key_from_digest(digest, matrix.nnz)

    def path_for(self, key: str) -> Path:
        """Artifact path for a key (flat layout, one file per pattern)."""
        return self.directory / f"{key}{_SUFFIX}"

    # -- introspection ------------------------------------------------------

    @property
    def stats(self) -> DiskStoreStats:
        return DiskStoreStats(
            hits=self._hits,
            misses=self._misses,
            writes=self._writes,
            write_errors=self._write_errors,
            corrupt_dropped=self._corrupt_dropped,
            evictions=self._evictions,
            io_errors=self._io_errors,
            stat_walks=self._stat_walks,
        )

    def _artifacts(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return [
            p
            for p in self.directory.iterdir()
            if p.suffix == _SUFFIX and p.is_file()
        ]

    def artifact_count(self) -> int:
        """Number of artifacts currently on disk."""
        return len(self._artifacts())

    def total_bytes(self) -> int:
        """Bytes currently occupied by artifacts."""
        total = 0
        for path in self._artifacts():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    # -- load / store / clear ----------------------------------------------

    def load(self, key: str) -> StoredSchedule | None:
        """Fetch an artifact by key; ``None`` on miss or quarantined file.

        Loads normally skip the O(nnz log nnz) logical re-validation: the
        CRC-32 checksum already proves the bytes are exactly what
        :func:`~repro.core.serialize.save_schedule` wrote, and warm-start
        latency is this tier's reason to exist.  Integrity (bit rot,
        truncation, version skew) is still fully enforced, and setting
        ``GUST_VALIDATE=1`` turns the full schedule/plan invariant checks
        back on at this trust boundary (CI runs a tier-1 leg that way).
        """
        path = self.path_for(key)
        try:
            _faults.raise_if(
                "store-read",
                lambda: OSError("injected store-read fault"),
                self._faults,
            )
            with _trace.span("store.read", cat="store"):
                entry = load_schedule_entry(
                    path, validate=validation_enabled()
                )
        except FileNotFoundError:
            self._misses += 1
            return None
        except ScheduleError:
            # Corrupt, truncated, or version-mismatched: move it aside so
            # the slot can be rebuilt, and report a miss — the caller
            # recomputes.  The bytes land in ``.quarantine/`` rather than
            # being destroyed, preserving the evidence a writer bug would
            # need.  Never let a bad artifact escape.
            self._corrupt_dropped += 1
            self._misses += 1
            self._quarantine(path)
            return None
        except OSError:
            # Transient I/O trouble (e.g. a flaky network mount) is a
            # miss, not corruption — leave the shared artifact alone.
            self._misses += 1
            self._io_errors += 1
            return None
        self._hits += 1
        # Approximate-LRU bookkeeping for the byte-budget eviction.
        try:
            os.utime(path)
        except OSError:
            pass
        return entry

    def store(
        self,
        key: str,
        schedule: Schedule,
        balanced: BalancedMatrix,
        stalls: int = 0,
        slots: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        data_order: np.ndarray | None = None,
        plan_order: np.ndarray | None = None,
    ) -> bool:
        """Persist one schedule under ``key``; returns False on I/O failure.

        ``slots``/``data_order``/``plan_order`` are forwarded to
        :func:`~repro.core.serialize.save_schedule` so a cache tier that
        already computed the refresh joins and the execution plan persists
        them for free.  Write failures (disk full, permissions) are
        absorbed and counted — a serving system must keep answering
        queries when its cache directory is sick — but the artifact is
        then simply absent.

        The post-write budget eviction never sacrifices the artifact this
        call just wrote while older ones remain (newest-in is the one the
        caller is most likely to read back); only when the artifact alone
        exceeds the whole budget is it dropped — and then the return value
        says so: True means the artifact is on disk when this returns.
        """
        try:
            _faults.raise_if(
                "store-write",
                lambda: OSError("injected store-write fault"),
                self._faults,
            )
            with _trace.span("store.write", cat="store"):
                save_schedule(
                    self.path_for(key),
                    schedule,
                    balanced,
                    stalls=stalls,
                    slots=slots,
                    data_order=data_order,
                    plan_order=plan_order,
                )
        except OSError:
            self._write_errors += 1
            self._io_errors += 1
            return False
        self._writes += 1
        if _faults.should_fire("store-corrupt", self._faults):
            # Simulated bit rot: damage the artifact *after* a successful
            # write so the next load exercises the genuine checksum ->
            # quarantine -> recompute path, not a shortcut around it.
            self._flip_bytes(self.path_for(key))
        return self._account_write(self.path_for(key))

    @staticmethod
    def _flip_bytes(path: Path) -> None:
        """XOR a byte mid-file (the ``store-corrupt`` fault injector)."""
        try:
            with open(path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(size // 2)
                byte = handle.read(1)
                handle.seek(size // 2)
                handle.write(bytes([byte[0] ^ 0xFF]))
        except OSError:
            pass

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    @property
    def quarantine_dir(self) -> Path:
        """Directory corrupt artifacts are moved into on first contact."""
        return self.directory / _QUARANTINE_DIR

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact into the quarantine subdirectory.

        The move is a same-filesystem rename (atomic, no copy); if even
        that fails — e.g. a read-only store — fall back to deleting so a
        poisoned slot cannot wedge the store, and absorb errors entirely:
        quarantine is bookkeeping, not correctness.  The quarantine is
        bounded: past ``_QUARANTINE_KEEP`` files, the oldest are pruned,
        so a recurring writer bug keeps its freshest evidence without
        eating the disk.
        """
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            return
        try:
            entries = []
            for kept in self.quarantine_dir.iterdir():
                if kept.is_file():
                    entries.append((kept.stat().st_mtime, kept))
            entries.sort()  # oldest first
            for _, stale in entries[: max(0, len(entries) - _QUARANTINE_KEEP)]:
                stale.unlink()
        except OSError:
            pass

    def quarantined_count(self) -> int:
        """Number of corrupt artifacts currently held in quarantine."""
        quarantine = self.quarantine_dir
        if not quarantine.is_dir():
            return 0
        return sum(1 for p in quarantine.iterdir() if p.is_file())

    def clear(self) -> int:
        """Delete every artifact, stray temporary, and quarantined file;
        returns the count removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if not path.is_file():
                continue
            if path.suffix == _SUFFIX or path.suffix == ".tmp":
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        # The manifest describes artifacts that no longer exist; drop it
        # (not counted — it is bookkeeping, not an artifact).
        try:
            self.manifest_path.unlink()
        except OSError:
            pass
        quarantine = self.quarantine_dir
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                if not path.is_file():
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    # -- budget accounting ---------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Location of the size manifest used for O(1) budget checks."""
        return self.directory / _MANIFEST_NAME

    def _read_manifest(self) -> dict[str, int] | None:
        """Artifact-name -> byte-size map, or ``None`` when stale/absent.

        Any defect — missing file, unreadable JSON, version skew, malformed
        entries — reads as "stale": the caller falls back to the
        authoritative stat walk and rebuilds.
        """
        try:
            raw = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or raw.get("version") != _MANIFEST_VERSION:
            return None
        sizes = raw.get("sizes")
        if not isinstance(sizes, dict):
            return None
        out: dict[str, int] = {}
        for name, size in sizes.items():
            if not isinstance(name, str) or not isinstance(size, int):
                return None
            out[name] = size
        return out

    def _write_manifest(self, sizes: dict[str, int]) -> None:
        """Atomically persist the size map; failures are absorbed (the
        manifest is an optimization — the stat walk remains correct)."""
        payload = json.dumps(
            {"version": _MANIFEST_VERSION, "sizes": sizes}, separators=(",", ":")
        )
        tmp = self.manifest_path.with_suffix(".json.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self.manifest_path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def _walk_sizes(self) -> dict[str, int]:
        """Authoritative artifact-size map from a full directory stat."""
        self._stat_walks += 1
        sizes: dict[str, int] = {}
        for path in self._artifacts():
            try:
                sizes[path.name] = path.stat().st_size
            except OSError:
                continue
        return sizes

    def _account_write(self, written: Path) -> None:
        """Post-write budget enforcement through the size manifest.

        The common case — store under budget, manifest healthy — costs one
        stat (the just-written artifact) plus a small JSON rewrite instead
        of re-statting every artifact.  The full walk runs when the
        manifest is stale/unreadable, every ``_MANIFEST_RESYNC_WRITES``-th
        write (bounding drift from concurrent writers whose inserts this
        process's manifest copy may have lost), or whenever the manifest
        total says the budget is exceeded — eviction decisions always come
        from fresh stat data, never from the manifest alone.

        Returns True while ``written`` is still on disk afterwards.
        """
        sizes = None
        if self._writes % _MANIFEST_RESYNC_WRITES != 0:
            sizes = self._read_manifest()
        if sizes is not None:
            try:
                sizes[written.name] = written.stat().st_size
            except OSError:
                sizes = None
        if sizes is None:
            sizes = self._walk_sizes()
        if sum(sizes.values()) <= self.max_bytes:
            self._write_manifest(sizes)
            return True
        return self._evict_to_budget(protect=written)

    def _evict_to_budget(self, protect: Path | None = None) -> bool:
        """Evict oldest-mtime artifacts until the directory fits the budget.

        Always works from a fresh stat walk (sizes *and* mtimes), then
        rewrites the manifest to match the surviving set.  ``protect``
        (the artifact whose write triggered this pass) is spared while any
        other artifact can be evicted instead — mtime says it is the
        newest *use*, and evicting the one artifact the caller just paid
        to persist would silently turn the write into a no-op.  Only when
        the protected artifact alone still exceeds the budget is it
        dropped too; the return value is False exactly in that case.
        """
        self._stat_walks += 1
        entries = []
        for path in self._artifacts():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        survivors = {path.name: size for _, size, path in entries}
        entries.sort()  # oldest first
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            survivors.pop(path.name, None)
            self._evictions += 1
        survived = True
        if total > self.max_bytes and protect is not None:
            # Nothing else left to evict: the protected artifact alone
            # busts the budget.  Honor the budget and report honestly.
            try:
                protect.unlink()
                self._evictions += 1
            except OSError:
                pass
            else:
                size = survivors.pop(protect.name, None)
                if size is not None:
                    total -= size
                survived = False
        self._write_manifest(survivors)
        return survived
