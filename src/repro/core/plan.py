"""Prepared execution plans: compile a schedule once, replay it many times.

GUST's economics (Section 3.3, Table 4) make scheduling a one-time cost and
replay the steady-state hot path — an iterative solver or an SpMM column
stream executes the *same* schedule thousands of times.  Before this module
every replay re-derived the occupied-slot coordinates with a dense
``np.nonzero`` over the (C_total, l) schedule arrays and accumulated with
``np.add.at``, the slowest scatter in NumPy.  An :class:`ExecutionPlan` pays
that structural work once:

* the occupied slots are flattened into three aligned arrays — values,
  source columns, destination rows — **pre-sorted by destination row** with
  CSR-style segment boundaries (``seg_starts`` / ``seg_rows``), the
  row-merged streaming layout of Serpens and ESC's batched conflict
  resolution: the shape NumPy reduces fastest;
* SpMV replay is then gather -> multiply -> segment reduction.  The 1-D
  reduction runs through ``np.bincount(weights=...)``, which accumulates
  strictly sequentially per destination — **bit-identical** to the
  ``np.add.at`` reference path (the stable row sort preserves each row's
  slot order) at a fraction of its cost;
* SpMM replay reuses one plan across every column tile and reduces each
  (slots x tile) product block with ``np.add.reduceat`` over the same
  segment boundaries — no per-tile scatter.

Plans are immutable.  A value refresh (same pattern, new data — the
Jacobian/Hessian case) produces a new plan via :meth:`ExecutionPlan.
with_values`, a single O(nnz) gather that reuses the sorted structure; the
schedule cache performs exactly that on a value-refresh lookup, and the
serialized artifact container persists ``slot_order`` so a disk warm start
rebuilds the plan without re-sorting (see :mod:`repro.core.serialize`).

Compiled and memoized by :class:`repro.core.pipeline.GustPipeline` (see
:meth:`~repro.core.pipeline.GustPipeline.plan_for`), used by
:class:`repro.core.spmm.GustSpmm` and every solver in
:mod:`repro.solvers`; gated by ``benchmarks/bench_replay_throughput.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.schedule import Schedule
from repro.errors import HardwareConfigError, ScheduleError

#: Element budget for the per-tile product temporary in
#: :meth:`ExecutionPlan.execute_block` (~512 MB of float64 at the default);
#: wide dense blocks are processed in column tiles of ``budget // nnz`` so
#: peak memory stays bounded while the replay remains vectorized.
DEFAULT_TILE_BUDGET = 1 << 26


@dataclass(frozen=True)
class ExecutionPlan:
    """An immutable, replay-ready compilation of one schedule.

    Attributes:
        length: accelerator length ``l``.
        shape: scheduled matrix shape ``(m, n)`` (post row permutation).
        values: (nnz,) float64 — slot values, grouped by destination row.
        sources: (nnz,) intp — original column of each slot (the gather
            index into the input vector), aligned with ``values``.
        rows: (nnz,) intp — permuted destination row of each slot,
            non-decreasing (the sort key).
        seg_starts: (segments,) intp — CSR-style offsets: segment ``s``
            spans ``values[seg_starts[s]:seg_starts[s+1]]``.
        seg_rows: (segments,) intp — destination row of each segment.
        slot_order: (nnz,) intp or None — the stable permutation taking
            the source slot arrays to the row-sorted plan order; ``None``
            means identity (the slots were already row-sorted, as in a
            version-3 artifact).  The serializer uses it to persist slots
            pre-sorted so a warm start skips the sort.
        row_perm: (m,) intp — ``row_perm[i]`` is the permuted position of
            original row ``i`` (the load balancer's output permutation).
        value_source: (nnz,) intp or None — index into the *balanced-order*
            value stream feeding each plan slot; enables O(nnz) value
            refreshes via :meth:`with_values`.
    """

    length: int
    shape: tuple[int, int]
    values: np.ndarray
    sources: np.ndarray
    rows: np.ndarray
    seg_starts: np.ndarray
    seg_rows: np.ndarray
    slot_order: np.ndarray | None
    row_perm: np.ndarray
    value_source: np.ndarray | None = None
    #: Per-thread scratch for the replay's product buffer: replay is the
    #: hot path, and at high call rates the per-call ``products`` temporary
    #: was the last allocation left in it.  Thread-local so one plan can be
    #: replayed concurrently from many server workers without sharing a
    #: buffer; excluded from comparison/replace (a refreshed plan starts
    #: with fresh scratch).
    _scratch: threading.local = field(
        default_factory=threading.local, init=False, repr=False, compare=False
    )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_components(
        cls,
        length: int,
        shape: tuple[int, int],
        global_rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        row_perm: np.ndarray,
        value_source: np.ndarray | None = None,
        order: np.ndarray | None = None,
    ) -> "ExecutionPlan":
        """Compile a plan from flat occupied-slot arrays.

        ``global_rows`` / ``cols`` / ``values`` are aligned per-slot arrays
        in the schedule's canonical (step, lane) order; ``order`` is an
        optional precomputed stable row sort (as persisted in artifacts) —
        derived here when omitted.  ``value_source`` indexes the
        balanced-order data stream per slot (pre-sort order) and unlocks
        :meth:`with_values`.
        """
        if order is None:
            order = np.argsort(global_rows, kind="stable")
        order = np.ascontiguousarray(order, dtype=np.intp)
        return cls.from_sorted(
            length=length,
            shape=shape,
            values=np.asarray(values, dtype=np.float64)[order],
            sources=np.asarray(cols)[order],
            rows=np.asarray(global_rows)[order],
            slot_order=order,
            row_perm=row_perm,
            value_source=(
                np.asarray(value_source)[order]
                if value_source is not None
                else None
            ),
        )

    @classmethod
    def from_sorted(
        cls,
        length: int,
        shape: tuple[int, int],
        values: np.ndarray,
        sources: np.ndarray,
        rows: np.ndarray,
        slot_order: np.ndarray | None,
        row_perm: np.ndarray,
        value_source: np.ndarray | None = None,
    ) -> "ExecutionPlan":
        """Assemble a plan from arrays *already in destination-row order*.

        The fast warm-start constructor: the artifact loader gathers each
        per-slot array straight into plan order (one gather per array,
        no re-sort), so all that remains is the O(nnz) segment-boundary
        scan.  ``slot_order=None`` records an identity order (the source
        arrays were already sorted).  Callers are responsible for the
        sort invariant; :meth:`validate` still checks it.
        """
        rows = np.ascontiguousarray(rows, dtype=np.intp)
        nnz = int(rows.size)
        if nnz:
            firsts = np.empty(nnz, dtype=bool)
            firsts[0] = True
            np.not_equal(rows[1:], rows[:-1], out=firsts[1:])
            seg_starts = np.flatnonzero(firsts)
            seg_rows = rows[seg_starts]
        else:
            seg_starts = np.zeros(0, dtype=np.intp)
            seg_rows = np.zeros(0, dtype=np.intp)
        return cls(
            length=int(length),
            shape=(int(shape[0]), int(shape[1])),
            values=np.ascontiguousarray(values, dtype=np.float64),
            sources=np.ascontiguousarray(sources, dtype=np.intp),
            rows=rows,
            seg_starts=seg_starts,
            seg_rows=seg_rows,
            slot_order=(
                np.ascontiguousarray(slot_order, dtype=np.intp)
                if slot_order is not None
                else None
            ),
            row_perm=np.ascontiguousarray(row_perm, dtype=np.intp),
            value_source=(
                np.ascontiguousarray(value_source, dtype=np.intp)
                if value_source is not None
                else None
            ),
        )

    @classmethod
    def from_schedule(
        cls,
        schedule: Schedule,
        row_perm: np.ndarray | None = None,
        slots: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> "ExecutionPlan":
        """Compile a plan from a schedule (and optionally its slot join).

        Args:
            schedule: the schedule to prepare.
            row_perm: the balancer's row permutation; identity when omitted.
            slots: precomputed ``(steps, lanes, source)`` occupied-slot join
                (as from :func:`~repro.core.scheduler.slot_value_sources`).
                When given, ``source`` is retained as :attr:`value_source`
                so the plan supports O(nnz) value refreshes; the dense
                ``np.nonzero`` pass is skipped either way after compile.
        """
        if slots is not None:
            steps, lanes, source = slots
            steps = np.ascontiguousarray(steps, dtype=np.intp)
            lanes = np.ascontiguousarray(lanes, dtype=np.intp)
            window_of_step = schedule.window_of_timestep()
            global_rows = (
                window_of_step[steps] * schedule.length
                + schedule.row_sch[steps, lanes]
            )
        else:
            steps, lanes, global_rows = schedule.occupied_slots()
            source = None
        m = schedule.shape[0]
        if row_perm is None:
            row_perm = np.arange(m, dtype=np.intp)
        return cls.from_components(
            length=schedule.length,
            shape=schedule.shape,
            global_rows=global_rows,
            cols=schedule.col_sch[steps, lanes],
            values=schedule.m_sch[steps, lanes],
            row_perm=row_perm,
            value_source=source,
        )

    # -- sizes ---------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Scheduled nonzeros (plan slots)."""
        return int(self.values.size)

    @property
    def segments(self) -> int:
        """Distinct destination rows (CSR segments)."""
        return int(self.seg_rows.size)

    # -- replay --------------------------------------------------------------

    def execute(self, x: np.ndarray) -> np.ndarray:
        """One SpMV replay: gather -> multiply -> segment-reduce -> unpermute.

        The reduction is ``np.bincount(rows, weights=products)``: strictly
        sequential per destination, so with the stable row sort preserving
        each row's slot order the result is bit-identical to the reference
        ``np.add.at`` scatter path — just several times faster, with no
        per-call ``np.nonzero``.

        The gather and multiply run through a reusable per-plan scratch
        buffer (``np.take``/``np.multiply`` with ``out=``), so steady-state
        replay allocates only its output vector.  The scratch is
        thread-local: the same plan object can be replayed concurrently
        from many threads (server workers, solver pools) without locking.
        """
        x = np.asarray(x, dtype=np.float64)
        m, n = self.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {self.shape}"
            )
        if self.nnz == 0:
            return np.zeros(m, dtype=np.float64)[self.row_perm]
        buf = getattr(self._scratch, "products", None)
        if buf is None:
            buf = np.empty(self.nnz, dtype=np.float64)
            self._scratch.products = buf
        # mode="clip" skips the per-element bounds check; sources were
        # bounds-validated against n at compile time, x against n above.
        np.take(x, self.sources, out=buf, mode="clip")
        np.multiply(self.values, buf, out=buf)
        y_permuted = np.bincount(self.rows, weights=buf, minlength=m)
        return y_permuted[self.row_perm]

    def execute_block(
        self, dense: np.ndarray, tile_budget: int = DEFAULT_TILE_BUDGET
    ) -> np.ndarray:
        """SpMM replay: one plan drives every column tile of ``dense``.

        Each (slots x tile) product block reduces with one
        ``np.add.reduceat`` over the CSR segment boundaries — contiguous
        segment sums instead of a scatter per tile.  Columns are tiled so
        the product temporary stays under ``tile_budget`` elements.
        """
        dense = np.asarray(dense, dtype=np.float64)
        m, n = self.shape
        if dense.ndim != 2 or dense.shape[0] != n:
            raise HardwareConfigError(
                f"dense operand must be ({n}, k), got {dense.shape}"
            )
        k = dense.shape[1]
        y_permuted = np.zeros((m, k), dtype=np.float64)
        if self.nnz and k:
            values = self.values[:, None]
            tile = max(1, int(tile_budget) // max(1, self.nnz))
            for start in range(0, k, tile):
                stop = min(k, start + tile)
                products = values * dense[self.sources, start:stop]
                # This IS the reduceat backend's block kernel; it lives
                # here because backends/ imports plan (no reverse edge).
                # Callers get it only via backends declaring
                # bit_identical=False.
                y_permuted[self.seg_rows, start:stop] = np.add.reduceat(  # lint: disable=R1
                    products, self.seg_starts, axis=0
                )
        return y_permuted[self.row_perm]

    def csr_layout(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR components in *original* row order, slot order preserved.

        Returns ``(indptr, cols, vals, order)``: a classic CSR triple whose
        row ``i`` is the plan segment destined for original row ``i`` (the
        :attr:`row_perm` un-permutation folded into the layout), plus the
        ``order`` gather taking plan-slot arrays into it.  Within each row
        the slots keep their plan order, so any consumer that accumulates
        rows sequentially in storage order — ``scipy.sparse`` CSR matvec,
        :class:`~repro.core.spmm.StackedReplay` — reproduces
        :meth:`execute` bit for bit while skipping the per-call
        ``row_perm`` gather entirely.  Computed once per plan and cached
        (the layout is value-independent apart from ``vals = values[order]``).
        """
        cached = self.__dict__.get("_csr_layout_cache")
        if cached is not None:
            return cached
        m, _ = self.shape
        seg_counts = np.diff(np.append(self.seg_starts, self.nnz))
        counts_perm = np.zeros(m, dtype=np.intp)
        counts_perm[self.seg_rows] = seg_counts
        counts = counts_perm[self.row_perm]
        indptr = np.zeros(m + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        starts_perm = np.zeros(m, dtype=np.intp)
        starts_perm[self.seg_rows] = self.seg_starts
        if self.nnz:
            # order[indptr[i]:indptr[i+1]] = start_of(row_perm[i]) + 0..len
            offsets = np.arange(self.nnz, dtype=np.intp) - np.repeat(
                indptr[:-1], counts
            )
            order = np.repeat(starts_perm[self.row_perm], counts) + offsets
        else:
            order = np.zeros(0, dtype=np.intp)
        layout = (indptr, self.sources[order], self.values[order], order)
        # Lazy idempotent memo: concurrent first calls compute identical
        # arrays, last writer wins.  object.__setattr__ bypasses frozen.
        object.__setattr__(self, "_csr_layout_cache", layout)
        return layout

    # -- refresh -------------------------------------------------------------

    def with_values(self, balanced_data: np.ndarray) -> "ExecutionPlan":
        """New plan with refreshed values, reusing the sorted structure.

        ``balanced_data`` is the balanced-order value stream of a matrix
        with exactly this plan's sparsity pattern.  One O(nnz) gather; no
        sort, no schedule traversal.  Requires :attr:`value_source` (plans
        compiled through the cache/store tiers carry it).
        """
        if self.value_source is None:
            raise ScheduleError(
                "plan lacks value-source metadata; recompile from the "
                "refreshed schedule instead"
            )
        balanced_data = np.asarray(balanced_data, dtype=np.float64)
        if balanced_data.size != self.nnz:
            raise ScheduleError(
                f"value stream has {balanced_data.size} entries, plan holds "
                f"{self.nnz}; pattern changed, full rescheduling required"
            )
        return replace(self, values=balanced_data[self.value_source])

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency (sorted rows, boundaries, bounds)."""
        m, n = self.shape
        nnz = self.nnz
        for name, arr in (
            ("sources", self.sources),
            ("rows", self.rows),
        ):
            if arr.size != nnz:
                raise ScheduleError(f"plan member {name!r} disagrees on nnz")
        if self.slot_order is not None and self.slot_order.size != nnz:
            raise ScheduleError("plan member 'slot_order' disagrees on nnz")
        if self.value_source is not None and self.value_source.size != nnz:
            raise ScheduleError("plan value_source disagrees on nnz")
        if self.row_perm.size != m:
            raise ScheduleError("plan row permutation does not match matrix")
        if nnz:
            if (np.diff(self.rows) < 0).any():
                raise ScheduleError("plan rows are not sorted")
            if int(self.rows[0]) < 0 or int(self.rows[-1]) >= max(m, 1):
                raise ScheduleError("plan destination row out of range")
            if self.sources.size and (
                int(self.sources.min()) < 0 or int(self.sources.max()) >= n
            ):
                raise ScheduleError("plan source column out of range")
            if self.slot_order is not None:
                counts = np.bincount(self.slot_order, minlength=nnz)
                if counts.max() != 1:
                    raise ScheduleError("plan slot_order is not a permutation")
            expected_starts = np.flatnonzero(
                np.concatenate(([True], self.rows[1:] != self.rows[:-1]))
            )
            if not np.array_equal(self.seg_starts, expected_starts):
                raise ScheduleError("plan segment boundaries are inconsistent")
            if not np.array_equal(self.seg_rows, self.rows[self.seg_starts]):
                raise ScheduleError("plan segment rows are inconsistent")
        elif self.seg_starts.size or self.seg_rows.size:
            raise ScheduleError("empty plan carries segment boundaries")
