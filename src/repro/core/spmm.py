"""Sparse-matrix x dense-matrix multiplication on GUST (extension).

The paper's future-work section proposes extending resource sharing to
sparse matrix-*matrix* multiplication.  For the common SpMM case — sparse A
times a dense block of vectors B — GUST's schedule-reuse property already
does the heavy lifting: the edge coloring depends only on A's sparsity
pattern, so one schedule drives all columns of B.  Two execution layouts
are modeled:

* ``column_cycled`` — one GUST datapath replays the schedule once per
  column of B: cycles = k * (C_total) + pipeline fill (the dump of column
  j overlaps the first timestep of column j+1, as windows already do).
* ``replicated`` — ``r`` parallel GUSTs (Section 5.5 arrangement) each
  take a slice of B's columns: cycles = ceil(k / r) * C_total + fill.

Both reuse the single schedule and therefore pay preprocessing once.  The
software replay reuses the pipeline's prepared
:class:`~repro.core.plan.ExecutionPlan` across every column tile: the
occupied-slot flattening and destination-row sort are paid once per
schedule, and each tile reduces with one contiguous ``np.add.reduceat``
instead of a scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.cache import ScheduleCache
from repro.core.load_balance import BalancedMatrix
from repro.core.pipeline import GustPipeline
from repro.core.plan import ExecutionPlan
from repro.core.store import DiskScheduleStore
from repro.core.schedule import PIPELINE_FILL_CYCLES, Schedule
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport

try:  # pragma: no cover - exercised via the scipy-present environment
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised when scipy is absent
    _scipy_sparse = None

#: Element budget for the per-tile product temporary in :meth:`GustSpmm.
#: multiply` (~512 MB of float64 at the default); wide dense blocks are
#: processed in column tiles of ``budget // occupied_slots`` so memory
#: stays bounded while keeping the replay vectorized.
_SPMM_PRODUCT_BUDGET = 1 << 26


class StackedReplay:
    """Batched SpMV: ``k`` stacked right-hand sides against one plan.

    Concurrent SpMV requests for the same matrix are algebraically an SpMM
    — ``k`` parallel replays of one schedule — so the serving layer's
    batcher coalesces them into a single stacked block and executes the
    block in one pass.  Unlike :meth:`ExecutionPlan.execute_block` (whose
    ``np.add.reduceat`` tile reduction uses NumPy's unrolled partial-sum
    accumulators and is therefore only *numerically close* to per-request
    replay for rows with >= 8 slots), this kernel guarantees **bit-identical
    results**: every backend accumulates each destination row strictly
    sequentially in plan slot order, exactly like the ``np.bincount``
    reduction in :meth:`ExecutionPlan.execute` and the ``np.add.at``
    scatter reference.

    Backends, fastest first:

    * ``"scipy"`` — the plan's :meth:`~ExecutionPlan.csr_layout` wrapped in
      a ``scipy.sparse.csr_matrix`` (indices deliberately *not*
      canonicalized: storage order **is** the accumulation contract) and
      applied as ``A @ X``; scipy's ``csr_matvecs`` kernel walks each row's
      entries in storage order with a vectorized axpy across the ``k``
      columns.  A compile-time probe verifies bit-identity against
      :meth:`ExecutionPlan.execute` on random data and silently falls back
      if a future scipy changes its accumulation order.
    * ``"numpy"`` — a flat ``np.bincount`` over ``(row * k + column)`` bins
      (sequential by construction); used when scipy is unavailable or the
      probe fails.

    Thread-safe: compiled state is immutable after construction.
    """

    #: Probe vectors used to verify a backend reproduces ``plan.execute``
    #: bit-for-bit before it is trusted.
    _PROBE_COLUMNS = 2

    def __init__(self, plan: ExecutionPlan, force_numpy: bool = False):
        self.plan = plan
        self._matrix = None
        self.backend = "numpy"
        if _scipy_sparse is not None and not force_numpy:
            indptr, cols, vals, _ = plan.csr_layout()
            matrix = _scipy_sparse.csr_matrix(
                (vals, cols.astype(np.intp, copy=False), indptr),
                shape=plan.shape,
                copy=False,
            )
            if self._probe(matrix):
                self._matrix = matrix
                self.backend = "scipy"

    def _probe(self, matrix) -> bool:
        """True when ``matrix @ X`` is bit-identical to per-request replay."""
        _, n = self.plan.shape
        rng = np.random.default_rng(0xC0FFEE)
        stacked = rng.normal(size=(self._PROBE_COLUMNS, n))
        block = matrix @ stacked.T
        return all(
            bool((self.plan.execute(stacked[j]) == block[:, j]).all())
            for j in range(self._PROBE_COLUMNS)
        )

    def matvecs(self, stacked: np.ndarray) -> np.ndarray:
        """Execute ``k`` stacked requests; returns the ``(m, k)`` block.

        ``stacked`` is ``(k, n)`` — one request per row.  Column ``j`` of
        the result is bit-identical to ``plan.execute(stacked[j])``, in
        original (un-permuted) row order.
        """
        stacked = np.asarray(stacked, dtype=np.float64)
        m, n = self.plan.shape
        if stacked.ndim != 2 or stacked.shape[1] != n:
            raise HardwareConfigError(
                f"stacked operand must be (k, {n}), got {stacked.shape}"
            )
        k = stacked.shape[0]
        if self._matrix is not None:
            return self._matrix @ stacked.T
        if self.plan.nnz == 0 or k == 0:
            return np.zeros((m, k), dtype=np.float64)
        plan = self.plan
        # Flat sequential reduction: bin (row, column) pairs so bincount's
        # strictly in-order accumulation visits each destination's slots in
        # plan order — the bit-identity contract — while the gather and
        # multiply stay vectorized across the whole block.
        products = plan.values[:, None] * stacked.T[plan.sources, :]
        bins = (plan.rows[:, None] * k + np.arange(k)).ravel()
        flat = np.bincount(bins, weights=products.ravel(), minlength=m * k)
        return flat.reshape(m, k)[plan.row_perm]


@dataclass(frozen=True)
class SpmmResult:
    """Output block and cycle accounting for one SpMM run."""

    y: np.ndarray
    schedule: Schedule
    cycle_report: CycleReport
    columns: int
    replicas: int


class GustSpmm:
    """SpMM engine: schedule A once, stream every column of B through it.

    Args:
        length: accelerator length ``l``.
        replicas: parallel GUST count sharing the column work.
        algorithm / load_balance: forwarded to the scheduling pipeline.
        cache: forwarded to :class:`~repro.core.pipeline.GustPipeline`; with
            a cache attached, calling :meth:`spmm` repeatedly on operands
            sharing one sparsity pattern (e.g. a re-assembled Jacobian
            against fresh blocks) pays the coloring once and refreshes only
            the value stream thereafter.
        store: forwarded to the pipeline; a persistent
            :class:`~repro.core.store.DiskScheduleStore` tier makes the
            schedule survive process restarts, so a restarted SpMM worker
            warm-starts from disk instead of recoloring.
    """

    def __init__(
        self,
        length: int,
        replicas: int = 1,
        algorithm: str = "matching",
        load_balance: bool = True,
        cache: ScheduleCache | int | bool | None = None,
        store: DiskScheduleStore | str | Path | bool | None = None,
        use_plans: bool = True,
    ):
        if replicas <= 0:
            raise HardwareConfigError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self.pipeline = GustPipeline(
            length,
            algorithm=algorithm,
            load_balance=load_balance,
            cache=cache,
            store=store,
            use_plans=use_plans,
        )

    def preprocess(self, matrix: CooMatrix) -> tuple[Schedule, BalancedMatrix]:
        """One-time scheduling of the sparse operand."""
        schedule, balanced, _ = self.pipeline.preprocess(matrix)
        return schedule, balanced

    def multiply(
        self,
        schedule: Schedule,
        balanced: BalancedMatrix,
        dense: np.ndarray,
    ) -> SpmmResult:
        """Compute ``A @ B`` column by column over the shared schedule."""
        dense = np.asarray(dense, dtype=np.float64)
        m, n = schedule.shape
        if dense.ndim != 2 or dense.shape[0] != n:
            raise HardwareConfigError(
                f"dense operand must be ({n}, k), got {dense.shape}"
            )
        k = dense.shape[1]
        if self.pipeline.use_plans:
            # Prepared replay: one plan (compiled once, memoized by the
            # pipeline) drives every column tile; each (slots x tile)
            # product block reduces with a contiguous segment reduction.
            plan = self.pipeline.plan_for(schedule, balanced)
            y = plan.execute_block(dense, tile_budget=_SPMM_PRODUCT_BUDGET)
        else:
            # Pre-plan reference replay: gather each occupied slot's value
            # and row, multiply against many columns of B simultaneously,
            # and scatter-add into the output block.  Columns are tiled so
            # the (slots x tile) product temporary stays bounded.
            steps, lanes, global_rows = schedule.occupied_slots()
            values = schedule.m_sch[steps, lanes][:, None]
            sources = schedule.col_sch[steps, lanes]
            y_permuted = np.zeros((m, k), dtype=np.float64)
            tile = max(1, _SPMM_PRODUCT_BUDGET // max(1, values.size))
            for start in range(0, k, tile):
                stop = min(k, start + tile)
                products = values * dense[sources, start:stop]
                np.add.at(y_permuted[:, start:stop], global_rows, products)
            y = balanced.unpermute_output(y_permuted)
        report = self.cycle_report(schedule, k)
        return SpmmResult(
            y=y,
            schedule=schedule,
            cycle_report=report,
            columns=k,
            replicas=self.replicas,
        )

    def spmm(self, matrix: CooMatrix, dense: np.ndarray) -> SpmmResult:
        """Preprocess + multiply in one call."""
        schedule, balanced = self.preprocess(matrix)
        return self.multiply(schedule, balanced, dense)

    def cycle_report(self, schedule: Schedule, columns: int) -> CycleReport:
        """Cycles for ``columns`` replays split over the replicas."""
        if columns < 0:
            raise HardwareConfigError("columns must be non-negative")
        if columns == 0 or schedule.nnz == 0:
            return CycleReport(
                cycles=0,
                useful_ops=0,
                total_units=2 * schedule.length * self.replicas,
            )
        per_replica = -(-columns // self.replicas)
        cycles = per_replica * schedule.total_colors + PIPELINE_FILL_CYCLES
        return CycleReport(
            cycles=cycles,
            useful_ops=2 * schedule.nnz * columns,
            total_units=2 * schedule.length * self.replicas,
        )
