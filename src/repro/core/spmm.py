"""Sparse-matrix x dense-matrix multiplication on GUST (extension).

The paper's future-work section proposes extending resource sharing to
sparse matrix-*matrix* multiplication.  For the common SpMM case — sparse A
times a dense block of vectors B — GUST's schedule-reuse property already
does the heavy lifting: the edge coloring depends only on A's sparsity
pattern, so one schedule drives all columns of B.  Two execution layouts
are modeled:

* ``column_cycled`` — one GUST datapath replays the schedule once per
  column of B: cycles = k * (C_total) + pipeline fill (the dump of column
  j overlaps the first timestep of column j+1, as windows already do).
* ``replicated`` — ``r`` parallel GUSTs (Section 5.5 arrangement) each
  take a slice of B's columns: cycles = ceil(k / r) * C_total + fill.

Both reuse the single schedule and therefore pay preprocessing once.  The
software replay reuses the pipeline's prepared
:class:`~repro.core.plan.ExecutionPlan` across every column tile: the
occupied-slot flattening and destination-row sort are paid once per
schedule, and each tile reduces with one contiguous ``np.add.reduceat``
instead of a scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.cache import ScheduleCache
from repro.core.load_balance import BalancedMatrix
from repro.core.pipeline import GustPipeline
from repro.core.store import DiskScheduleStore
from repro.core.schedule import PIPELINE_FILL_CYCLES, Schedule
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport

#: Element budget for the per-tile product temporary in :meth:`GustSpmm.
#: multiply` (~512 MB of float64 at the default); wide dense blocks are
#: processed in column tiles of ``budget // occupied_slots`` so memory
#: stays bounded while keeping the replay vectorized.
_SPMM_PRODUCT_BUDGET = 1 << 26


@dataclass(frozen=True)
class SpmmResult:
    """Output block and cycle accounting for one SpMM run."""

    y: np.ndarray
    schedule: Schedule
    cycle_report: CycleReport
    columns: int
    replicas: int


class GustSpmm:
    """SpMM engine: schedule A once, stream every column of B through it.

    Args:
        length: accelerator length ``l``.
        replicas: parallel GUST count sharing the column work.
        algorithm / load_balance: forwarded to the scheduling pipeline.
        cache: forwarded to :class:`~repro.core.pipeline.GustPipeline`; with
            a cache attached, calling :meth:`spmm` repeatedly on operands
            sharing one sparsity pattern (e.g. a re-assembled Jacobian
            against fresh blocks) pays the coloring once and refreshes only
            the value stream thereafter.
        store: forwarded to the pipeline; a persistent
            :class:`~repro.core.store.DiskScheduleStore` tier makes the
            schedule survive process restarts, so a restarted SpMM worker
            warm-starts from disk instead of recoloring.
    """

    def __init__(
        self,
        length: int,
        replicas: int = 1,
        algorithm: str = "matching",
        load_balance: bool = True,
        cache: ScheduleCache | int | bool | None = None,
        store: DiskScheduleStore | str | Path | bool | None = None,
        use_plans: bool = True,
    ):
        if replicas <= 0:
            raise HardwareConfigError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self.pipeline = GustPipeline(
            length,
            algorithm=algorithm,
            load_balance=load_balance,
            cache=cache,
            store=store,
            use_plans=use_plans,
        )

    def preprocess(self, matrix: CooMatrix) -> tuple[Schedule, BalancedMatrix]:
        """One-time scheduling of the sparse operand."""
        schedule, balanced, _ = self.pipeline.preprocess(matrix)
        return schedule, balanced

    def multiply(
        self,
        schedule: Schedule,
        balanced: BalancedMatrix,
        dense: np.ndarray,
    ) -> SpmmResult:
        """Compute ``A @ B`` column by column over the shared schedule."""
        dense = np.asarray(dense, dtype=np.float64)
        m, n = schedule.shape
        if dense.ndim != 2 or dense.shape[0] != n:
            raise HardwareConfigError(
                f"dense operand must be ({n}, k), got {dense.shape}"
            )
        k = dense.shape[1]
        if self.pipeline.use_plans:
            # Prepared replay: one plan (compiled once, memoized by the
            # pipeline) drives every column tile; each (slots x tile)
            # product block reduces with a contiguous segment reduction.
            plan = self.pipeline.plan_for(schedule, balanced)
            y = plan.execute_block(dense, tile_budget=_SPMM_PRODUCT_BUDGET)
        else:
            # Pre-plan reference replay: gather each occupied slot's value
            # and row, multiply against many columns of B simultaneously,
            # and scatter-add into the output block.  Columns are tiled so
            # the (slots x tile) product temporary stays bounded.
            steps, lanes, global_rows = schedule.occupied_slots()
            values = schedule.m_sch[steps, lanes][:, None]
            sources = schedule.col_sch[steps, lanes]
            y_permuted = np.zeros((m, k), dtype=np.float64)
            tile = max(1, _SPMM_PRODUCT_BUDGET // max(1, values.size))
            for start in range(0, k, tile):
                stop = min(k, start + tile)
                products = values * dense[sources, start:stop]
                np.add.at(y_permuted[:, start:stop], global_rows, products)
            y = balanced.unpermute_output(y_permuted)
        report = self.cycle_report(schedule, k)
        return SpmmResult(
            y=y,
            schedule=schedule,
            cycle_report=report,
            columns=k,
            replicas=self.replicas,
        )

    def spmm(self, matrix: CooMatrix, dense: np.ndarray) -> SpmmResult:
        """Preprocess + multiply in one call."""
        schedule, balanced = self.preprocess(matrix)
        return self.multiply(schedule, balanced, dense)

    def cycle_report(self, schedule: Schedule, columns: int) -> CycleReport:
        """Cycles for ``columns`` replays split over the replicas."""
        if columns < 0:
            raise HardwareConfigError("columns must be non-negative")
        if columns == 0 or schedule.nnz == 0:
            return CycleReport(
                cycles=0,
                useful_ops=0,
                total_units=2 * schedule.length * self.replicas,
            )
        per_replica = -(-columns // self.replicas)
        cycles = per_replica * schedule.total_colors + PIPELINE_FILL_CYCLES
        return CycleReport(
            cycles=cycles,
            useful_ops=2 * schedule.nnz * columns,
            total_units=2 * schedule.length * self.replicas,
        )
