"""Sparse-matrix x dense-matrix multiplication on GUST (extension).

The paper's future-work section proposes extending resource sharing to
sparse matrix-*matrix* multiplication.  For the common SpMM case — sparse A
times a dense block of vectors B — GUST's schedule-reuse property already
does the heavy lifting: the edge coloring depends only on A's sparsity
pattern, so one schedule drives all columns of B.  Two execution layouts
are modeled:

* ``column_cycled`` — one GUST datapath replays the schedule once per
  column of B: cycles = k * (C_total) + pipeline fill (the dump of column
  j overlaps the first timestep of column j+1, as windows already do).
* ``replicated`` — ``r`` parallel GUSTs (Section 5.5 arrangement) each
  take a slice of B's columns: cycles = ceil(k / r) * C_total + fill.

Both reuse the single schedule and therefore pay preprocessing once.  The
software replay reuses the pipeline's prepared
:class:`~repro.core.plan.ExecutionPlan` across every column tile: the
occupied-slot flattening and destination-row sort are paid once per
schedule, and each tile reduces with one contiguous ``np.add.reduceat``
instead of a scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.backends import compile_plan
from repro.core.cache import ScheduleCache
from repro.core.load_balance import BalancedMatrix
from repro.core.pipeline import LEGACY_SCATTER, GustPipeline
from repro.core.plan import ExecutionPlan
from repro.core.store import DiskScheduleStore
from repro.core.schedule import PIPELINE_FILL_CYCLES, Schedule
from repro.errors import BackendCapabilityError, HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport

#: Element budget for the per-tile product temporary in :meth:`GustSpmm.
#: multiply` (~512 MB of float64 at the default); wide dense blocks are
#: processed in column tiles of ``budget // occupied_slots`` so memory
#: stays bounded while keeping the replay vectorized.
_SPMM_PRODUCT_BUDGET = 1 << 26


class StackedReplay:
    """Batched SpMV: ``k`` stacked right-hand sides against one plan.

    Concurrent SpMV requests for the same matrix are algebraically an SpMM
    — ``k`` parallel replays of one schedule — so the serving layer's
    batcher coalesces them into a single stacked block and executes the
    block in one pass.  The kernel comes from the
    :mod:`~repro.core.backends` registry with
    ``require_bit_identical=True``: whichever backend wins (scipy CSR
    where its per-compile probe passes, the flat-``bincount`` block kernel
    otherwise — never ``reduceat``), every batched column is
    **bit-identical** to the per-request scatter oracle.

    ``force_numpy`` pins the ``"bincount"`` backend (useful for tests and
    for comparing backends).  :attr:`backend` reports the resolved
    registry name.

    Thread-safe: compiled state only changes through
    :meth:`refresh_from_plan`, which swaps value streams atomically while
    reusing all structure.
    """

    def __init__(self, plan: ExecutionPlan, force_numpy: bool = False):
        self.plan = plan
        compiled = compile_plan(
            plan,
            backend="bincount" if force_numpy else "auto",
            require_bit_identical=True,
        )
        self._kernel = compiled.kernel
        self.backend = compiled.name

    @classmethod
    def from_compiled(cls, compiled) -> "StackedReplay":
        """Wrap an already-compiled bit-identical handle's kernel.

        The serving registry compiles one
        :class:`~repro.core.compiled.CompiledSpmv` per tenant for
        per-request replay; its kernel serves batches just as well, so
        wrapping it skips a second compile + bit-identity probe (and a
        second resident CSR structure).  The handle must have been
        compiled with the bit-identity guarantee this kernel's contract
        requires.
        """
        if compiled.plan is None:
            raise BackendCapabilityError(
                f"backend {compiled.backend_name!r} carries no compiled "
                f"plan; the batched-replay kernel requires one — compile "
                f"on a registry backend instead"
            )
        if not compiled.stats.bit_identical:
            raise BackendCapabilityError(
                f"backend {compiled.backend_name!r} is not bit-identical; "
                f"the batched-replay contract requires exactness"
            )
        self = cls.__new__(cls)
        self.plan = compiled.plan
        self._kernel = compiled._kernel
        self.backend = compiled.backend_name
        return self

    def matvecs(self, stacked: np.ndarray) -> np.ndarray:
        """Execute ``k`` stacked requests; returns the ``(m, k)`` block.

        ``stacked`` is ``(k, n)`` — one request per row.  Column ``j`` of
        the result is bit-identical to the per-request replay of
        ``stacked[j]``, in original (un-permuted) row order.
        """
        stacked = np.asarray(stacked, dtype=np.float64)
        _, n = self.plan.shape
        if stacked.ndim != 2 or stacked.shape[1] != n:
            raise HardwareConfigError(
                f"stacked operand must be (k, {n}), got {stacked.shape}"
            )
        return self._kernel.matmat(stacked.T)

    def refresh_from_plan(self, plan: ExecutionPlan) -> None:
        """Same pattern, new values: re-gather in place, never recompile.

        ``plan`` must share this kernel's structure (it comes from the
        schedule cache's value-refresh path, i.e.
        :meth:`ExecutionPlan.with_values`).  The compiled structure — the
        scipy index arrays and cached layout gather, or the bincount
        kernel's sorted slot arrays — is reused verbatim; only the value
        stream moves.  This is what makes serving-tenant re-registration
        O(nnz) instead of a CSR recompile.
        """
        self._kernel.refresh_values(plan)
        self.plan = plan


@dataclass(frozen=True)
class SpmmResult:
    """Output block and cycle accounting for one SpMM run."""

    y: np.ndarray
    schedule: Schedule
    cycle_report: CycleReport
    columns: int
    replicas: int


class GustSpmm:
    """SpMM engine: schedule A once, stream every column of B through it.

    Args:
        length: accelerator length ``l``.
        replicas: parallel GUST count sharing the column work.
        algorithm / load_balance: forwarded to the scheduling pipeline.
        cache: forwarded to :class:`~repro.core.pipeline.GustPipeline`; with
            a cache attached, calling :meth:`spmm` repeatedly on operands
            sharing one sparsity pattern (e.g. a re-assembled Jacobian
            against fresh blocks) pays the coloring once and refreshes only
            the value stream thereafter.
        store: forwarded to the pipeline; a persistent
            :class:`~repro.core.store.DiskScheduleStore` tier makes the
            schedule survive process restarts, so a restarted SpMM worker
            warm-starts from disk instead of recoloring.
        backend: execution backend for the block replay (``"auto"``
            selects a bit-identical kernel; name ``"reduceat"`` explicitly
            for the fastest allclose-grade segmented reduction).
        require_bit_identical: demand exact per-column reproduction of the
            scatter oracle; combined with a backend that cannot honor it
            (``"reduceat"``), compilation raises a typed
            :class:`~repro.errors.BackendCapabilityError` instead of
            silently returning allclose-grade results.
    """

    def __init__(
        self,
        length: int,
        replicas: int = 1,
        algorithm: str = "matching",
        load_balance: bool = True,
        cache: ScheduleCache | int | bool | None = None,
        store: DiskScheduleStore | str | Path | bool | None = None,
        backend: str = "auto",
        require_bit_identical: bool = False,
    ):
        if replicas <= 0:
            raise HardwareConfigError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self.pipeline = GustPipeline(
            length,
            algorithm=algorithm,
            load_balance=load_balance,
            cache=cache,
            store=store,
            backend=backend,
            require_bit_identical=require_bit_identical,
        )

    def preprocess(self, matrix: CooMatrix) -> tuple[Schedule, BalancedMatrix]:
        """One-time scheduling of the sparse operand."""
        schedule, balanced, _ = self.pipeline.preprocess(matrix)
        return schedule, balanced

    def multiply(
        self,
        schedule: Schedule,
        balanced: BalancedMatrix,
        dense: np.ndarray,
    ) -> SpmmResult:
        """Compute ``A @ B`` column by column over the shared schedule."""
        dense = np.asarray(dense, dtype=np.float64)
        m, n = schedule.shape
        if dense.ndim != 2 or dense.shape[0] != n:
            raise HardwareConfigError(
                f"dense operand must be ({n}, k), got {dense.shape}"
            )
        k = dense.shape[1]
        # Compiled replay: the backend kernel (memoized per schedule by
        # the pipeline, capability-checked at compile) drives every column
        # tile; the legacy baseline re-derives the occupied slots per call
        # inside its adapter, exactly as the pre-plan code did.
        handle = self.pipeline.compile_schedule(schedule, balanced)
        y = handle.matmat(dense, tile_budget=_SPMM_PRODUCT_BUDGET)
        report = self.cycle_report(schedule, k)
        return SpmmResult(
            y=y,
            schedule=schedule,
            cycle_report=report,
            columns=k,
            replicas=self.replicas,
        )

    def spmm(self, matrix: CooMatrix, dense: np.ndarray) -> SpmmResult:
        """Preprocess + multiply in one call."""
        schedule, balanced = self.preprocess(matrix)
        return self.multiply(schedule, balanced, dense)

    def cycle_report(self, schedule: Schedule, columns: int) -> CycleReport:
        """Cycles for ``columns`` replays split over the replicas."""
        if columns < 0:
            raise HardwareConfigError("columns must be non-negative")
        if columns == 0 or schedule.nnz == 0:
            return CycleReport(
                cycles=0,
                useful_ops=0,
                total_units=2 * schedule.length * self.replicas,
            )
        per_replica = -(-columns // self.replicas)
        cycles = per_replica * schedule.total_colors + PIPELINE_FILL_CYCLES
        return CycleReport(
            cycles=cycles,
            useful_ops=2 * schedule.nnz * columns,
            total_units=2 * schedule.length * self.replicas,
        )
