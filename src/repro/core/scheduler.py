"""The GUST scheduler: windowing + per-window edge coloring -> Schedule.

Implements Section 3.3's "GUST Scheduling Algorithm": the matrix is split
into ceil(m/l) windows of ``l`` rows; each window becomes a bipartite
multigraph that an edge-coloring algorithm assigns buffer slots to; Listing 2
then scatters values and indices into M_sch / Row_sch / Col_sch.
"""

from __future__ import annotations

import numpy as np

from repro.core.load_balance import BalancedMatrix, identity_balance
from repro.core.naive import naive_coloring, naive_stalls
from repro.core.schedule import EMPTY, Schedule
from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph
from repro.graph.edge_coloring import ALGORITHMS as _COLORING_ALGORITHMS
from repro.graph.properties import validate_coloring
from repro.sparse.coo import CooMatrix
from repro.sparse.stats import require_positive_length, window_count

#: Scheduling policies: the paper's greedy matching (default), the fast
#: first-fit variant, the optimal Euler/König coloring, and the naive
#: stall-on-collision strawman.
SCHEDULING_ALGORITHMS = tuple(sorted(_COLORING_ALGORITHMS)) + ("naive",)


class GustScheduler:
    """Produces collision-free :class:`~repro.core.schedule.Schedule` objects.

    Args:
        length: accelerator length ``l`` (multipliers = adders = l).
        algorithm: one of :data:`SCHEDULING_ALGORITHMS`.
        validate: if True, validate every window's coloring and the final
            schedule (slower; meant for tests and debugging).
    """

    def __init__(
        self, length: int, algorithm: str = "matching", validate: bool = False
    ):
        require_positive_length(length)
        if algorithm not in SCHEDULING_ALGORITHMS:
            raise ColoringError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {SCHEDULING_ALGORITHMS}"
            )
        self.length = length
        self.algorithm = algorithm
        self.validate = validate
        #: Stall events observed by the naive policy in the last schedule()
        #: call (always 0 for coloring-based policies).
        self.last_stalls = 0

    # -- public API ---------------------------------------------------------

    def schedule(self, matrix: CooMatrix) -> Schedule:
        """Schedule a matrix without load balancing."""
        return self.schedule_balanced(identity_balance(matrix, self.length))

    def color_counts(self, balanced: BalancedMatrix) -> list[int]:
        """Per-window color counts without materializing M_sch et al.

        The cycle/utilization analysis only needs the color counts; skipping
        the (C_total x l) arrays keeps memory flat even for the naive
        policy, whose color count approaches the nonzero count.
        """
        matrix = balanced.matrix
        length = self.length
        m, _ = matrix.shape
        self.last_stalls = 0
        window_of_row = matrix.rows // length if matrix.nnz else np.zeros(0, np.int64)
        counts: list[int] = []
        for w in range(window_count(m, length)):
            mask = window_of_row == w
            graph = WindowGraph(
                length=length,
                local_rows=(matrix.rows[mask] % length).astype(np.int64),
                colsegs=balanced.colseg_of(w, matrix.cols[mask], length),
                cols=matrix.cols[mask].astype(np.int64),
                values=matrix.data[mask].astype(np.float64),
            )
            colors = self._color(graph)
            if self.validate:
                validate_coloring(graph, colors)
            counts.append(int(colors.max()) + 1 if colors.size else 0)
        return counts

    def schedule_balanced(self, balanced: BalancedMatrix) -> Schedule:
        """Schedule a load-balanced matrix (the EC/LB configuration)."""
        matrix = balanced.matrix
        length = self.length
        m, n = matrix.shape
        windows = window_count(m, length)
        self.last_stalls = 0

        graphs: list[WindowGraph] = []
        colorings: list[np.ndarray] = []
        colors_per_window: list[int] = []
        window_of_row = matrix.rows // length if matrix.nnz else np.zeros(0, np.int64)

        for w in range(windows):
            mask = window_of_row == w
            graph = WindowGraph(
                length=length,
                local_rows=(matrix.rows[mask] % length).astype(np.int64),
                colsegs=balanced.colseg_of(w, matrix.cols[mask], length),
                cols=matrix.cols[mask].astype(np.int64),
                values=matrix.data[mask].astype(np.float64),
            )
            colors = self._color(graph)
            if self.validate:
                validate_coloring(graph, colors)
            graphs.append(graph)
            colorings.append(colors)
            colors_per_window.append(
                int(colors.max()) + 1 if colors.size else 0
            )

        total = int(sum(colors_per_window))
        m_sch = np.zeros((total, length), dtype=np.float64)
        row_sch = np.full((total, length), EMPTY, dtype=np.int64)
        col_sch = np.full((total, length), EMPTY, dtype=np.int64)

        offset = 0
        for graph, colors, span in zip(graphs, colorings, colors_per_window):
            if graph.edge_count:
                steps = offset + colors
                m_sch[steps, graph.colsegs] = graph.values
                row_sch[steps, graph.colsegs] = graph.local_rows
                col_sch[steps, graph.colsegs] = graph.cols
            offset += span

        schedule = Schedule(
            length=length,
            shape=(m, n),
            m_sch=m_sch,
            row_sch=row_sch,
            col_sch=col_sch,
            window_colors=tuple(colors_per_window),
        )
        if self.validate:
            schedule.validate()
        return schedule

    def reschedule_values(
        self, schedule: Schedule, balanced: BalancedMatrix
    ) -> Schedule:
        """Refresh M_sch for a matrix whose values changed but pattern did not.

        The paper's Jacobian/Hessian case: Listing 1 (the coloring) need not
        rerun; only Listing 2's value fill does.  ``balanced.matrix`` must
        have the same sparsity pattern the schedule was built from.
        """
        matrix = balanced.matrix
        length = self.length
        m_sch = np.zeros_like(schedule.m_sch)
        occupied = schedule.row_sch != EMPTY

        # Rebuild the (timestep, lane) -> value mapping from the pattern.
        window_of_step = schedule.window_of_timestep()
        steps, lanes = np.nonzero(occupied)
        global_rows = (
            window_of_step[steps] * length + schedule.row_sch[steps, lanes]
        )
        cols = schedule.col_sch[steps, lanes]
        lookup = {
            (int(r), int(c)): float(v)
            for r, c, v in zip(matrix.rows, matrix.cols, matrix.data)
        }
        try:
            values = [lookup[(int(r), int(c))] for r, c in zip(global_rows, cols)]
        except KeyError as exc:
            raise ColoringError(
                f"schedule refers to entry {exc.args[0]} missing from matrix; "
                "pattern changed, full rescheduling required"
            ) from None
        m_sch[steps, lanes] = values
        return Schedule(
            length=length,
            shape=schedule.shape,
            m_sch=m_sch,
            row_sch=schedule.row_sch,
            col_sch=schedule.col_sch,
            window_colors=schedule.window_colors,
        )

    # -- internals ----------------------------------------------------------

    def _color(self, graph: WindowGraph) -> np.ndarray:
        if self.algorithm == "naive":
            colors = naive_coloring(graph)
            self.last_stalls += naive_stalls(graph, colors)
            return colors
        return _COLORING_ALGORITHMS[self.algorithm](graph)
