"""The GUST scheduler: windowing + per-window edge coloring -> Schedule.

Implements Section 3.3's "GUST Scheduling Algorithm": the matrix is split
into ceil(m/l) windows of ``l`` rows; each window becomes a bipartite
multigraph that an edge-coloring algorithm assigns buffer slots to; Listing 2
then scatters values and indices into M_sch / Row_sch / Col_sch.

Vectorized batch engine
-----------------------

Scheduling is the paper's amortized preprocessing cost (Section 3.3), so its
wall clock is what RACE-style preprocessing budgets care about.  This module
therefore avoids every per-window Python pass over the nonzeros:

* **Partition** — the canonical COO order is already sorted by row, so one
  ``searchsorted`` against the window boundaries partitions the flat edge
  arrays into per-window slices (replacing the former O(windows x nnz)
  boolean-mask loop), and
  :meth:`~repro.core.load_balance.BalancedMatrix.colseg_of_all` resolves
  every edge's multiplier lane in a single binary search.
* **Coloring** — every built-in policy runs through a flat NumPy kernel
  that colors *all windows simultaneously* (windows are independent, so
  only the semantically sequential dimension of each algorithm remains a
  Python loop): "matching"/"first_fit" via
  :mod:`repro.graph.edge_coloring`'s batch kernels, "naive" via
  :func:`repro.core.naive.naive_coloring_flat`, and "euler" via
  :func:`repro.graph.edge_coloring.euler_coloring_flat`, whose per-color
  Hopcroft-Karp pass peels one perfect matching from every still-active
  window at once.
* **Process-pool scheduling** — ``jobs=`` partitions the window axis into
  contiguous, nnz-balanced chunks and colors them in a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Chunks are rebased,
  self-contained partitions of the same flat kernels, so the merged color
  array — and therefore every downstream artifact (schedule, serialized
  bytes, cache/store keys) — is identical to the single-process result.
* **Scatter** — Listing 2's fill of M_sch/Row_sch/Col_sch is one fancy-
  indexed assignment: timestep = window offset + edge color.
* **Value reuse** — :meth:`GustScheduler.reschedule_values` refreshes a
  schedule for a same-pattern matrix via a ``searchsorted`` join on
  (row, col) keys instead of a per-nonzero Python dict.

The original pure-Python implementations are preserved verbatim in
:mod:`repro.graph._reference`; the vectorized engine reproduces their
colorings edge-for-edge (``tests/graph/test_vectorized_equivalence.py``)
and beats them by an order of magnitude on large matrices
(``benchmarks/bench_scheduling_throughput.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import faults as _faults
from repro import obs as _obs
from repro.core.load_balance import BalancedMatrix, identity_balance
from repro.core.naive import naive_coloring_flat, naive_stalls_flat
from repro.core.schedule import EMPTY, Schedule
from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph
from repro.graph.edge_coloring import ALGORITHMS as _COLORING_ALGORITHMS
from repro.graph.edge_coloring import (
    euler_coloring_flat,
    first_fit_coloring_flat,
    matching_coloring_flat,
)
from repro.graph.properties import validate_coloring
from repro.sparse.coo import CooMatrix
from repro.sparse.stats import require_positive_length, window_count

#: Scheduling policies: the paper's greedy matching (default), the fast
#: first-fit variant, the optimal Euler/König coloring, and the naive
#: stall-on-collision strawman.
SCHEDULING_ALGORITHMS = tuple(sorted(_COLORING_ALGORITHMS)) + ("naive",)

#: Policies handled by the flat multi-window NumPy kernels.  Flat kernels
#: are window-local, which is also what makes them chunkable across a
#: process pool (``jobs=``) without changing a single color.
_FLAT_ALGORITHMS = ("matching", "first_fit", "euler", "naive")


def _color_window_range(
    algorithm: str,
    length: int,
    local_rows: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    window_starts: np.ndarray,
    n_windows: int,
) -> np.ndarray:
    """Color one self-contained window range with its flat kernel.

    Module-level (picklable) so process-pool workers can run it; window ids
    and starts must already be rebased to the chunk (first window = 0).
    """
    if algorithm == "matching":
        return matching_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
    if algorithm == "first_fit":
        return first_fit_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows, window_starts
        )
    if algorithm == "euler":
        return euler_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
    if algorithm == "naive":
        return naive_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
    raise ColoringError(f"no flat kernel for algorithm {algorithm!r}")


def _color_chunk(payload):
    """Process-pool entry point: color one chunk, or die first.

    ``payload`` is ``(die, chunk_args)``.  A True ``die`` flag (decided by
    the parent's ``pool-kill`` fault probe) simulates a worker killed from
    outside Python — OOM killer, SIGKILL, a segfaulting extension —
    via ``os._exit``, which skips every cleanup hook and surfaces in the
    parent as :class:`~concurrent.futures.process.BrokenProcessPool`.
    """
    die, args = payload
    if die:
        os._exit(43)
    return _color_window_range(*args)


@dataclass(frozen=True)
class _Partition:
    """Flat per-edge window decomposition of a balanced matrix.

    Attributes:
        windows: window count ceil(m / l).
        window_ids: per-edge owning window (rows // l).
        window_starts: ``windows + 1`` offsets delimiting each window's
            contiguous slice of the canonical edge arrays.
        local_rows: per-edge window-local row (rows mod l).
        colsegs: per-edge multiplier lane (load-balanced column segment).
    """

    windows: int
    window_ids: np.ndarray
    window_starts: np.ndarray
    local_rows: np.ndarray
    colsegs: np.ndarray


class GustScheduler:
    """Produces collision-free :class:`~repro.core.schedule.Schedule` objects.

    Args:
        length: accelerator length ``l`` (multipliers = adders = l).
        algorithm: one of :data:`SCHEDULING_ALGORITHMS`.
        validate: if True, validate every window's coloring and the final
            schedule (slower; meant for tests and debugging).
        jobs: worker processes for the coloring pass.  ``1`` (the default)
            colors in-process; ``jobs > 1`` partitions the window axis
            across a process pool for very large matrices.  Windows are
            independent, so the merged schedule is *identical* — byte for
            byte once serialized — to the single-process result.  A broken
            pool (a worker killed from outside Python) is survived by
            re-dispatching every chunk serially, preserving that identity.
        faults: explicit :class:`~repro.faults.FaultPlan` for the
            ``pool-kill`` injection site; ``None`` uses the ambient plan.
    """

    def __init__(
        self,
        length: int,
        algorithm: str = "matching",
        validate: bool = False,
        jobs: int = 1,
        faults: _faults.FaultPlan | None = None,
    ):
        require_positive_length(length)
        if algorithm not in SCHEDULING_ALGORITHMS:
            raise ColoringError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {SCHEDULING_ALGORITHMS}"
            )
        if jobs < 1:
            raise ColoringError(f"jobs must be >= 1, got {jobs}")
        self.length = length
        self.algorithm = algorithm
        self.validate = validate
        self.jobs = jobs
        self.faults = faults
        #: Stall events observed by the naive policy in the last schedule()
        #: call (always 0 for coloring-based policies).
        self.last_stalls = 0

    # -- public API ---------------------------------------------------------

    def schedule(self, matrix: CooMatrix) -> Schedule:
        """Schedule a matrix without load balancing."""
        return self.schedule_balanced(identity_balance(matrix, self.length))

    def color_counts(self, balanced: BalancedMatrix) -> list[int]:
        """Per-window color counts without materializing M_sch et al.

        The cycle/utilization analysis only needs the color counts; skipping
        the (C_total x l) arrays keeps memory flat even for the naive
        policy, whose color count approaches the nonzero count.
        """
        partition = self._partition(balanced)
        colors = self._color_flat(balanced, partition)
        return [int(c) for c in self._counts(partition, colors)]

    def schedule_balanced(self, balanced: BalancedMatrix) -> Schedule:
        """Schedule a load-balanced matrix (the EC/LB configuration)."""
        matrix = balanced.matrix
        length = self.length
        m, n = matrix.shape

        with _obs.phase("partition"):
            partition = self._partition(balanced)
        with _obs.phase("coloring"):
            colors = self._color_flat(balanced, partition)
            counts = self._counts(partition, colors)

        # Listing 2 as one scatter: timestep = window offset + edge color.
        with _obs.phase("scatter"):
            total = int(counts.sum())
            m_sch = np.zeros((total, length), dtype=np.float64)
            row_sch = np.full((total, length), EMPTY, dtype=np.int64)
            col_sch = np.full((total, length), EMPTY, dtype=np.int64)
            if matrix.nnz:
                offsets = np.concatenate(
                    ([0], np.cumsum(counts[:-1], dtype=np.int64))
                )
                steps = offsets[partition.window_ids] + colors
                lanes = partition.colsegs
                m_sch[steps, lanes] = matrix.data
                row_sch[steps, lanes] = partition.local_rows
                col_sch[steps, lanes] = matrix.cols

        schedule = Schedule(
            length=length,
            shape=(m, n),
            m_sch=m_sch,
            row_sch=row_sch,
            col_sch=col_sch,
            window_colors=tuple(int(c) for c in counts),
        )
        if self.validate:
            schedule.validate()
        return schedule

    def reschedule_values(
        self, schedule: Schedule, balanced: BalancedMatrix
    ) -> Schedule:
        """Refresh M_sch for a matrix whose values changed but pattern did not.

        The paper's Jacobian/Hessian case: Listing 1 (the coloring) need not
        rerun; only Listing 2's value fill does.  ``balanced.matrix`` must
        have exactly the sparsity pattern the schedule was built from — a
        matrix with missing *or extra* nonzeros is rejected.

        The (row, col) -> value join runs as a binary search of the
        schedule's occupied slots against the matrix's canonical key order;
        no per-nonzero Python loop.
        """
        matrix = balanced.matrix
        length = self.length
        if matrix.nnz != schedule.nnz:
            raise ColoringError(
                f"pattern changed: matrix has {matrix.nnz} nonzeros but the "
                f"schedule holds {schedule.nnz}; full rescheduling required"
            )
        steps, lanes, source = slot_value_sources(schedule, matrix)
        m_sch = np.zeros_like(schedule.m_sch)
        m_sch[steps, lanes] = matrix.data[source]
        return Schedule(
            length=length,
            shape=schedule.shape,
            m_sch=m_sch,
            row_sch=schedule.row_sch,
            col_sch=schedule.col_sch,
            window_colors=schedule.window_colors,
        )

    # -- internals ----------------------------------------------------------

    def _partition(self, balanced: BalancedMatrix) -> _Partition:
        """Split the canonical edge arrays into window slices, mask-free."""
        matrix = balanced.matrix
        length = self.length
        m, _ = matrix.shape
        windows = window_count(m, length)
        if matrix.nnz:
            rows = matrix.rows
            window_ids = rows // length
            window_starts = np.searchsorted(
                rows, np.arange(windows + 1, dtype=np.int64) * length
            )
            local_rows = rows % length
            colsegs = balanced.colseg_of_all(window_ids, matrix.cols, length)
        else:
            window_ids = np.zeros(0, dtype=np.int64)
            window_starts = np.zeros(windows + 1, dtype=np.int64)
            local_rows = np.zeros(0, dtype=np.int64)
            colsegs = np.zeros(0, dtype=np.int64)
        return _Partition(
            windows=windows,
            window_ids=window_ids,
            window_starts=window_starts,
            local_rows=local_rows,
            colsegs=colsegs,
        )

    def _color_flat(
        self, balanced: BalancedMatrix, partition: _Partition
    ) -> np.ndarray:
        """Color every edge of every window; flat array aligned with edges."""
        self.last_stalls = 0
        length = self.length
        windows = max(1, partition.windows)
        if self.algorithm in _FLAT_ALGORITHMS:
            jobs = self._effective_jobs(partition)
            if jobs > 1:
                colors = self._color_multiprocess(partition, jobs)
            else:
                colors = _color_window_range(
                    self.algorithm,
                    length,
                    partition.local_rows,
                    partition.colsegs,
                    partition.window_ids,
                    partition.window_starts,
                    windows,
                )
            if self.algorithm == "naive":
                self.last_stalls = naive_stalls_flat(
                    colors,
                    partition.colsegs,
                    partition.window_ids,
                    length,
                    windows,
                )
        else:
            colors = np.full(partition.local_rows.size, -1, dtype=np.int64)
            for graph, lo, hi in self._window_graphs(balanced, partition):
                colors[lo:hi] = _COLORING_ALGORITHMS[self.algorithm](graph)
        if self.validate:
            for graph, lo, hi in self._window_graphs(balanced, partition):
                validate_coloring(graph, colors[lo:hi])
        return colors

    def _effective_jobs(self, partition: _Partition) -> int:
        """Clamp the requested job count to the parallelism that exists."""
        if self.jobs <= 1 or partition.local_rows.size == 0:
            return 1
        return min(self.jobs, max(1, partition.windows))

    def _color_multiprocess(
        self, partition: _Partition, jobs: int
    ) -> np.ndarray:
        """Color nnz-balanced window chunks in a process pool and merge.

        Each chunk is rebased into a standalone partition (window ids and
        starts shifted to zero), colored by the same flat kernel the
        single-process path runs, and concatenated back in window order —
        so the merged array is exactly the in-process result.

        A :class:`BrokenProcessPool` — a worker killed from outside Python
        mid-chunk — degrades to serial re-dispatch of every chunk: the
        kernels are deterministic and the chunks self-contained, so the
        recomputed merge is the exact array the pool would have produced
        (the ``jobs=N`` byte-identity contract holds even through worker
        death), at single-process speed for this one call.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        starts = partition.window_starts
        edge_count = int(partition.local_rows.size)
        # Cut the window axis where the cumulative nnz crosses each job's
        # even share; np.unique drops empty chunks (e.g. hub windows that
        # swallow several shares).
        targets = (np.arange(1, jobs, dtype=np.int64) * edge_count) // jobs
        cuts = np.searchsorted(starts, targets, side="left")
        bounds = np.unique(
            np.concatenate(([0], cuts, [partition.windows]))
        ).astype(np.int64)
        chunks = []
        for w_lo, w_hi in zip(bounds[:-1], bounds[1:]):
            lo, hi = int(starts[w_lo]), int(starts[w_hi])
            chunks.append(
                (
                    self.algorithm,
                    self.length,
                    partition.local_rows[lo:hi],
                    partition.colsegs[lo:hi],
                    partition.window_ids[lo:hi] - w_lo,
                    starts[w_lo : w_hi + 1] - lo,
                    int(w_hi - w_lo),
                )
            )
        if len(chunks) == 1:
            return _color_window_range(*chunks[0])
        plan = _faults.resolve(self.faults)
        payloads = [
            (plan is not None and plan.should_fire("pool-kill"), chunk)
            for chunk in chunks
        ]
        try:
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                results = list(pool.map(_color_chunk, payloads))
        except BrokenProcessPool:
            results = [_color_window_range(*chunk) for chunk in chunks]
        return np.concatenate(results)

    def _window_graphs(self, balanced: BalancedMatrix, partition: _Partition):
        """Yield (WindowGraph, edge slice) per window, via partition slices."""
        matrix = balanced.matrix
        starts = partition.window_starts
        for w in range(partition.windows):
            lo, hi = int(starts[w]), int(starts[w + 1])
            yield (
                WindowGraph(
                    length=self.length,
                    local_rows=partition.local_rows[lo:hi],
                    colsegs=partition.colsegs[lo:hi],
                    cols=matrix.cols[lo:hi],
                    values=matrix.data[lo:hi],
                ),
                lo,
                hi,
            )

    def _counts(self, partition: _Partition, colors: np.ndarray) -> np.ndarray:
        """Per-window color counts (max color + 1; 0 for empty windows)."""
        counts = np.zeros(partition.windows, dtype=np.int64)
        if colors.size:
            np.maximum.at(counts, partition.window_ids, colors + 1)
        return counts


def slot_value_sources(
    schedule: Schedule, matrix: CooMatrix
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Join occupied schedule slots to matrix entries by (row, col) key.

    Returns (steps, lanes, source) such that slot ``(steps[k], lanes[k])``
    carries ``matrix.data[source[k]]``.  Raises :class:`ColoringError` if
    any slot's (row, col) is absent from the matrix (pattern change).
    """
    steps, lanes, global_rows = schedule.occupied_slots()
    cols = schedule.col_sch[steps, lanes]
    n = max(1, schedule.shape[1])
    slot_keys = global_rows * np.int64(n) + cols
    # Widen explicitly: matrices reconstituted from disk artifacts carry
    # narrow index dtypes, and NumPy 1.x value-based casting would keep
    # the product in int16/int32 and overflow the key space.
    matrix_keys = (
        matrix.rows.astype(np.int64, copy=False) * np.int64(n)
        + matrix.cols.astype(np.int64, copy=False)
    )
    source = np.searchsorted(matrix_keys, slot_keys)
    in_range = np.minimum(source, max(0, matrix_keys.size - 1))
    missing = (source >= matrix_keys.size) | (matrix_keys[in_range] != slot_keys)
    if missing.any():
        bad = int(np.flatnonzero(missing)[0])
        entry = (int(global_rows[bad]), int(cols[bad]))
        raise ColoringError(
            f"schedule refers to entry {entry} missing from matrix; "
            "pattern changed, full rescheduling required"
        )
    return steps, lanes, source
