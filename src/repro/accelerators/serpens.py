"""Serpens: HBM-based general-purpose SpMV accelerator (Song et al., DAC'22).

The paper's state-of-the-art comparison point (Section 5.3, Table 4).
Serpens spreads the matrix over HBM channels; each channel feeds a cluster
of processing lanes, and rows are handled in lane-wide groups.  Two
architectural facts drive its cycle count:

* each nonzero streams a (value, column-index) pair through a channel, so a
  lane sustains one nonzero every ~2 cycles of its memory stream;
* the 8 rows of a group finish together, so a group costs its *heaviest*
  row — power-law matrices with hub rows waste most of the group's lanes,
  which is why Serpens loses the most ground on social-network matrices
  (Table 4: soc_pokec, googleplus).

The defaults (24 channels x 8 lanes, 2.2 cycles per element) reproduce
Table 4's cycle counts within the fidelity of the surrogate matrices; the
per-element rate is the mid-range of the effective rates implied by the
published cycle counts (1.93-2.83 across the nine matrices), and all three
are constructor parameters, not magic constants.
"""

from __future__ import annotations

import time

import numpy as np

from repro.accelerators.base import Accelerator
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport, PreprocessReport


class Serpens(Accelerator):
    """Serpens with ``channels`` HBM channels of ``lanes`` PEs each."""

    name = "Serpens"

    def __init__(
        self,
        channels: int = 24,
        lanes: int = 8,
        cycles_per_element: float = 2.2,
        startup_cycles: int = 256,
    ):
        if channels <= 0 or lanes <= 0:
            raise HardwareConfigError("channels and lanes must be positive")
        if cycles_per_element <= 0:
            raise HardwareConfigError("cycles_per_element must be positive")
        self.channels = channels
        self.lanes = lanes
        self.cycles_per_element = cycles_per_element
        self.startup_cycles = startup_cycles

    @property
    def total_units(self) -> int:
        """Each lane is a MAC unit: one multiplier plus one adder."""
        return 2 * self.channels * self.lanes

    # -- cycle model ----------------------------------------------------------

    def run(self, matrix: CooMatrix) -> CycleReport:
        if matrix.nnz == 0:
            return CycleReport(cycles=0, useful_ops=0, total_units=self.total_units)
        group_heaviest = self._group_heaviest_rows(matrix)
        group_channel = np.arange(group_heaviest.size) % self.channels
        channel_cycles = np.bincount(
            group_channel,
            weights=group_heaviest * self.cycles_per_element,
            minlength=self.channels,
        )
        cycles = int(np.ceil(channel_cycles.max())) + self.startup_cycles
        return CycleReport(
            cycles=cycles,
            useful_ops=2 * matrix.nnz,
            total_units=self.total_units,
        )

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        """Walk the dataflow: per-group lane-parallel row dot products."""
        x = np.asarray(x, dtype=np.float64)
        m, n = matrix.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        # Each lane owns one row of its group and accumulates serially in
        # column order — identical float semantics to the canonical order.
        y = np.zeros(m, dtype=np.float64)
        np.add.at(y, matrix.rows, matrix.data * x[matrix.cols])
        return y

    # -- preprocessing ----------------------------------------------------------

    def preprocess(self, matrix: CooMatrix) -> PreprocessReport:
        """Build the channel-interleaved padded stream Serpens consumes.

        Rows are grouped lane-wide; every row in a group is padded to the
        group's heaviest row; each group's (value, column) pairs are
        interleaved lane-major, producing one dense stream per channel.
        Wall-clock time of this conversion is the preprocessing cost
        reported in the Table 4 reproduction.
        """
        started = time.perf_counter()
        m, _ = matrix.shape
        counts = matrix.row_counts()
        groups = -(-m // self.lanes) if m else 0
        padded_total = 0
        streams: list[list[np.ndarray]] = [[] for _ in range(self.channels)]
        csr_order = np.lexsort((matrix.cols, matrix.rows))
        sorted_rows = matrix.rows[csr_order]
        row_starts = np.searchsorted(sorted_rows, np.arange(m + 1))
        for g in range(groups):
            row_lo = g * self.lanes
            row_hi = min(m, row_lo + self.lanes)
            heaviest = int(counts[row_lo:row_hi].max()) if row_hi > row_lo else 0
            if heaviest == 0:
                continue
            lane_count = row_hi - row_lo
            block = np.zeros((lane_count, heaviest, 2), dtype=np.float64)
            for lane, row in enumerate(range(row_lo, row_hi)):
                lo, hi = row_starts[row], row_starts[row + 1]
                picked = csr_order[lo:hi]
                block[lane, : hi - lo, 0] = matrix.data[picked]
                block[lane, : hi - lo, 1] = matrix.cols[picked]
            streams[g % self.channels].append(block)
            padded_total += lane_count * heaviest
        elapsed = time.perf_counter() - started
        return PreprocessReport(
            seconds=elapsed,
            windows=groups,
            total_colors=0,
            notes={"padded_elements": float(padded_total)},
        )

    # -- internals ----------------------------------------------------------

    def _group_heaviest_rows(self, matrix: CooMatrix) -> np.ndarray:
        """Max row nonzero count per lane-wide row group."""
        m, _ = matrix.shape
        counts = matrix.row_counts()
        groups = -(-m // self.lanes)
        padded = np.zeros(groups * self.lanes, dtype=np.int64)
        padded[:m] = counts
        return padded.reshape(groups, self.lanes).max(axis=1)
