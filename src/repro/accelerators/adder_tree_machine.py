"""Cycle-accurate balanced adder tree (validates the analytic model).

Figure 1(c)'s dataflow: every cycle one ``l``-wide chunk of a matrix row
(dense, zeros included) and the matching vector chunk enter the ``l``
multipliers; the log(l)-deep reduction tree pipelines the chunk sums; a
final accumulator folds chunk results into the row total.

Tests pin this machine's cycle count to
:class:`~repro.accelerators.adder_tree.AdderTree`'s closed form
(m * ceil(n/l) + log(l) + 1) and its output to the numpy oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.convert import to_dense


@dataclass(frozen=True)
class AdderTreeMachineResult:
    """Outcome of one cycle-accurate adder-tree run."""

    y: np.ndarray
    cycles: int
    multiply_slots: int
    nonzero_multiplies: int
    tree_reductions: int

    @property
    def occupancy(self) -> float:
        """Fraction of multiplier slots holding nonzero data."""
        if self.multiply_slots == 0:
            return 0.0
        return self.nonzero_multiplies / self.multiply_slots


class AdderTreeMachine:
    """Executes SpMV on a length-``l`` balanced adder tree, chunk by chunk.

    Materializes each row densely, so (like the other validation machines)
    it targets small and medium inputs.
    """

    def __init__(self, length: int):
        if length <= 1:
            raise HardwareConfigError(f"length must exceed 1, got {length}")
        self.length = length

    def run(self, matrix: CooMatrix, x: np.ndarray) -> AdderTreeMachineResult:
        m, n = matrix.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        if matrix.nnz == 0:
            return AdderTreeMachineResult(
                y=np.zeros(m),
                cycles=0,
                multiply_slots=0,
                nonzero_multiplies=0,
                tree_reductions=0,
            )

        length = self.length
        chunks_per_row = -(-n // length)
        dense = to_dense(matrix)
        padded_n = chunks_per_row * length
        if padded_n != n:
            dense = np.pad(dense, ((0, 0), (0, padded_n - n)))
            x_padded = np.pad(x, (0, padded_n - n))
        else:
            x_padded = x

        y = np.zeros(m, dtype=np.float64)
        multiply_slots = 0
        nonzero_multiplies = 0
        tree_reductions = 0
        cycles = 0
        for i in range(m):
            total = 0.0
            for chunk in range(chunks_per_row):
                lo = chunk * length
                segment = dense[i, lo : lo + length]
                products = segment * x_padded[lo : lo + length]
                # Pairwise tree reduction, level by level, mirroring the
                # physical adder layout (and its float summation order).
                level = products
                while level.size > 1:
                    if level.size % 2:
                        level = np.append(level, 0.0)
                    level = level[0::2] + level[1::2]
                    tree_reductions += level.size
                total += float(level[0])
                multiply_slots += length
                nonzero_multiplies += int(np.count_nonzero(segment))
                cycles += 1
            y[i] = total
        cycles += int(math.log2(length)) + 1  # tree fill + final fold
        return AdderTreeMachineResult(
            y=y,
            cycles=cycles,
            multiply_slots=multiply_slots,
            nonzero_multiplies=nonzero_multiplies,
            tree_reductions=tree_reductions,
        )
