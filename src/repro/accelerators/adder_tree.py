"""Balanced adder tree baseline (paper Section 2.2, Figure 1c).

``l`` multipliers feed a binary reduction tree of ``l - 1`` adders.  Each
iteration maps an ``l``-wide chunk of one matrix row (dense, zeros
included) and the matching vector chunk onto the multipliers; the tree sums
the chunk in log(l) pipelined stages.

Execution time (Table 1): m*n/l + log(l) + 1 — ceil(n/l) chunks per row for
m rows, plus tree fill.  Utilization is as poor as 1D's because zeros
occupy multiplier slots all the same.
"""

from __future__ import annotations

import math

import numpy as np

from repro.accelerators.base import Accelerator
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.types import CycleReport


class AdderTree(Accelerator):
    """Length-``l`` balanced adder tree: l multipliers + (l-1) adders."""

    name = "AT"

    def __init__(self, length: int):
        if length <= 1:
            raise HardwareConfigError(f"length must exceed 1, got {length}")
        self.length = length

    @property
    def total_units(self) -> int:
        return 2 * self.length - 1

    def run(self, matrix: CooMatrix) -> CycleReport:
        m, n = matrix.shape
        chunks_per_row = -(-n // self.length)
        cycles = (
            m * chunks_per_row + int(math.log2(self.length)) + 1
            if matrix.nnz
            else 0
        )
        # Useful work: one multiply per nonzero; reducing the k nonzero
        # partials of a chunk takes k-1 useful adds, plus one accumulate of
        # each chunk result into the row total.
        nonempty_chunks = self._nonempty_chunks(matrix)
        useful_adds = matrix.nnz - nonempty_chunks  # k-1 summed over chunks
        useful_adds += max(0, nonempty_chunks - self._nonempty_rows(matrix))
        return CycleReport(
            cycles=cycles,
            useful_ops=matrix.nnz + useful_adds,
            total_units=self.total_units,
        )

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        """Walk the dataflow: chunked dot products via the reduction tree."""
        x = np.asarray(x, dtype=np.float64)
        m, n = matrix.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        csr = CsrMatrix.from_coo(matrix)
        y = np.zeros(m, dtype=np.float64)
        for i in range(m):
            cols, vals = csr.row(i)
            if cols.size == 0:
                continue
            total = 0.0
            chunk_of_col = cols // self.length
            for chunk in np.unique(chunk_of_col):
                in_chunk = chunk_of_col == chunk
                total += float(np.sum(vals[in_chunk] * x[cols[in_chunk]]))
            y[i] = total
        return y

    def _nonempty_chunks(self, matrix: CooMatrix) -> int:
        chunk_ids = matrix.rows * (-(-matrix.shape[1] // self.length)) + (
            matrix.cols // self.length
        )
        return int(np.unique(chunk_ids).size)

    def _nonempty_rows(self, matrix: CooMatrix) -> int:
        return int(np.unique(matrix.rows).size)
