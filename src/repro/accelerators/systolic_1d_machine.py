"""Cycle-accurate 1D systolic array (validates the analytic model).

The strip of ``l`` MAC PEs from Figure 1(b), simulated cycle by cycle: each
window assigns PE ``i`` the window's ``i``-th row; the dense column stream
(zeros included) enters top-to-bottom while vector elements ripple
left-to-right one PE per cycle, so PE ``i`` sees column ``t`` at cycle
``t + i``.  A dump signal drains the strip after the last column.

Tests assert this machine's cycle count equals
:class:`~repro.accelerators.systolic_1d.Systolic1D`'s closed form and its
output equals the numpy oracle — the same two-level-model contract the
GUST machine satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.convert import to_dense
from repro.sparse.stats import window_count


@dataclass(frozen=True)
class Systolic1DMachineResult:
    """Outcome of one cycle-accurate 1D run."""

    y: np.ndarray
    cycles: int
    multiply_ops: int
    nonzero_multiplies: int

    @property
    def occupancy(self) -> float:
        """Fraction of multiply slots that touched nonzero data."""
        if self.multiply_ops == 0:
            return 0.0
        return self.nonzero_multiplies / self.multiply_ops


class Systolic1DMachine:
    """Executes SpMV on an ``l``-PE strip, one dense column per cycle.

    Memory note: materializes each window densely (l x n), so this is a
    validation tool for small and medium inputs, like the GUST machine.
    """

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length

    def run(self, matrix: CooMatrix, x: np.ndarray) -> Systolic1DMachineResult:
        m, n = matrix.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        if matrix.nnz == 0:
            return Systolic1DMachineResult(
                y=np.zeros(m), cycles=0, multiply_ops=0, nonzero_multiplies=0
            )

        dense = to_dense(matrix)
        y = np.zeros(m, dtype=np.float64)
        windows = window_count(m, self.length)
        cycles = 0
        multiply_ops = 0
        nonzero_multiplies = 0

        for w in range(windows):
            start = w * self.length
            rows_here = min(self.length, m - start)
            accumulators = np.zeros(rows_here, dtype=np.float64)
            # The skew means PE i processes column t at cycle t + i; the
            # window completes after n + (rows_here - 1) + 1 cycles of
            # compute plus one dump cycle.  Windows overlap their ripple
            # with the previous window's drain except for the first fill,
            # giving the Table 1 total of windows*n + l + 1.
            for t in range(n):
                column = dense[start : start + rows_here, t]
                accumulators += column * x[t]
                multiply_ops += rows_here
                nonzero_multiplies += int(np.count_nonzero(column))
            y[start : start + rows_here] = accumulators
            cycles += n
        cycles += self.length + 1  # pipeline fill (ripple) + dump
        return Systolic1DMachineResult(
            y=y,
            cycles=cycles,
            multiply_ops=multiply_ops,
            nonzero_multiplies=nonzero_multiplies,
        )
