"""Fafnir baseline: near-memory intelligent-reduction tree (Section 2.2).

A binary tree with ``l`` multiplier leaves and log(l) levels of reduction
nodes; the paper's configuration gives every level l/2 adders in total (so
448 adders for l = 128).  Leaves consume the matrix in LIL order — leaf k
owns the columns congruent to k and streams their nonzeros serially —
while reduction nodes merge partial products that carry the same row index
and forward everything else.

The binding constraint for SpMV is the *forwarding* path: every reduced or
unreduced value must exit through the tree one value per node-port per
cycle, so the root emits at most one result per cycle.  With in-tree
merging credited optimistically (all of a row's partials merge before the
root), the run lasts at least one cycle per nonempty row; leaves also
bound the run at the heaviest per-leaf column workload.  This reproduces
Fafnir's empirical profile (Table 1: 4.67% mean utilization, better on
denser rows, "at least" #NZ * log(l)/4 cycles in the worst case).
"""

from __future__ import annotations

import math

import numpy as np

from repro.accelerators.base import Accelerator
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport


class Fafnir(Accelerator):
    """A Fafnir tree with ``length`` leaves (paper setup: 128)."""

    name = "FAFNIR"

    def __init__(self, length: int):
        if length < 2 or length & (length - 1):
            raise HardwareConfigError(
                f"Fafnir length must be a power of two >= 2, got {length}"
            )
        self.length = length

    @property
    def levels(self) -> int:
        return int(math.log2(self.length))

    @property
    def adder_count(self) -> int:
        """l/2 adders per level across log(l) levels (448 for l = 128)."""
        return (self.length // 2) * self.levels

    @property
    def total_units(self) -> int:
        return self.length + self.adder_count

    def run(self, matrix: CooMatrix) -> CycleReport:
        if matrix.nnz == 0:
            return CycleReport(cycles=0, useful_ops=0, total_units=self.total_units)
        leaf_work = np.bincount(matrix.cols % self.length, minlength=self.length)
        nonempty_rows = int(np.unique(matrix.rows).size)
        cycles = max(int(leaf_work.max()), nonempty_rows) + self.levels + 1
        # Useful work: one multiply per nonzero; merging a row's k partials
        # takes k-1 adds somewhere in the tree.
        useful_adds = matrix.nnz - nonempty_rows
        return CycleReport(
            cycles=cycles,
            useful_ops=matrix.nnz + useful_adds,
            total_units=self.total_units,
        )

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        """Walk the dataflow: leaf products merged upward by row index."""
        x = np.asarray(x, dtype=np.float64)
        m, n = matrix.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        # Leaf multiply: partial product per nonzero, tagged with row index.
        products = matrix.data * x[matrix.cols]
        # Tree reduction: same-row partials meet at the lowest common
        # ancestor; the float result equals a leaf-ordered segmented sum.
        leaf = matrix.cols % self.length
        order = np.lexsort((leaf, matrix.rows))
        y = np.zeros(m, dtype=np.float64)
        np.add.at(y, matrix.rows[order], products[order])
        return y
