"""Flex-TPU baseline: a 2D systolic array repurposed for SpMV (Section 2.1).

Only nonzero elements map onto the grid of PEs; Separator PEs mark row
boundaries so several matrix rows can share one grid row.  Each partition
of the grid runs a three-phase sequence — reconfiguration (load elements,
left to right), calculation (stream vector top to bottom), and dump — each
taking ~``g`` cycles for a g-by-g grid, so a partition costs ~3g cycles
(Table 1's ~3 * #NZ / l once the packing is accounted for).

The packing model mirrors the paper's Figure 1(a): elements of one matrix
row occupy consecutive PEs followed by one Separator PE; a matrix row's
elements may wrap to the next grid row, but every matrix row consumes one
separator.  The evaluation normalizes all designs to 256 multipliers and
256 adders, so the default grid is 16x16 MAC PEs.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.types import CycleReport


class FlexTpu(Accelerator):
    """A ``grid`` x ``grid`` Flex-TPU (grid*grid MAC PEs)."""

    name = "FTPU"

    def __init__(self, grid: int):
        if grid <= 0:
            raise HardwareConfigError(f"grid must be positive, got {grid}")
        self.grid = grid

    @classmethod
    def with_units(cls, units: int) -> "FlexTpu":
        """Build the grid holding ``units`` multipliers (e.g. 256 -> 16x16)."""
        grid = int(round(units**0.5))
        if grid * grid != units:
            raise HardwareConfigError(
                f"units={units} is not a perfect square grid"
            )
        return cls(grid)

    @property
    def pe_count(self) -> int:
        return self.grid * self.grid

    def run(self, matrix: CooMatrix) -> CycleReport:
        if matrix.nnz == 0:
            return CycleReport(cycles=0, useful_ops=0, total_units=2 * self.pe_count)
        partitions = self._count_partitions(matrix)
        cycles = partitions * 3 * self.grid
        return CycleReport(
            cycles=cycles,
            useful_ops=2 * matrix.nnz,
            total_units=2 * self.pe_count,
        )

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        """Walk the dataflow: partitions of packed rows, row-wise products.

        Normal PEs multiply on vector-index match and forward right;
        Separator PEs accumulate, which is a segmented row-sum.
        """
        x = np.asarray(x, dtype=np.float64)
        m, n = matrix.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        csr = CsrMatrix.from_coo(matrix)
        y = np.zeros(m, dtype=np.float64)
        for i in range(m):
            cols, vals = csr.row(i)
            if cols.size:
                y[i] = float(np.sum(vals * x[cols]))
        return y

    def _count_partitions(self, matrix: CooMatrix) -> int:
        """Pack rows (elements + one separator each) into the PE grid.

        Rows may wrap across grid rows (their separator carries the partial
        sum forward), so packing is dense: total slots are nnz plus one
        separator per nonempty row, spread over grid*grid PEs per partition.
        """
        nonempty_rows = int(np.unique(matrix.rows).size)
        slots = matrix.nnz + nonempty_rows
        return -(-slots // self.pe_count)
