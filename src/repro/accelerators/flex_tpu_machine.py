"""Cycle-accurate Flex-TPU (validates the partition/packing model).

Figure 1(a)'s three-phase operation, simulated partition by partition:

* **reconfiguration** — nonzero elements and Separator markers load into
  the grid left-to-right, one column of PEs per cycle (``g`` cycles);
* **calculation** — vector elements stream top-to-bottom; each Normal PE
  multiplies on index match and forwards right; Separator PEs accumulate
  what arrives from their left neighbours (``g`` cycles);
* **dump** — Separators emit their stored partial sums (``g`` cycles).

A matrix row may wrap across grid rows; its trailing Separator then
carries the partial sum for downstream accumulation, which is why rows
wrap without extra partitions (matching
:meth:`repro.accelerators.flex_tpu.FlexTpu._count_partitions`).

Tests pin this machine's partition count and cycle total to the analytic
model and its output to the numpy oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class FlexTpuMachineResult:
    """Outcome of one cycle-accurate Flex-TPU run."""

    y: np.ndarray
    cycles: int
    partitions: int
    normal_pe_slots: int
    separator_slots: int


@dataclass
class _Slot:
    """One PE's configuration within a partition."""

    is_separator: bool
    row: int
    col: int = -1
    value: float = 0.0


class FlexTpuMachine:
    """Executes SpMV on a ``grid`` x ``grid`` Flex-TPU, phase by phase."""

    def __init__(self, grid: int):
        if grid <= 0:
            raise HardwareConfigError(f"grid must be positive, got {grid}")
        self.grid = grid

    @property
    def pe_count(self) -> int:
        return self.grid * self.grid

    def run(self, matrix: CooMatrix, x: np.ndarray) -> FlexTpuMachineResult:
        m, n = matrix.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        if matrix.nnz == 0:
            return FlexTpuMachineResult(
                y=np.zeros(m),
                cycles=0,
                partitions=0,
                normal_pe_slots=0,
                separator_slots=0,
            )

        slots = self._pack(matrix)
        y = np.zeros(m, dtype=np.float64)
        partials: dict[int, float] = {}
        partitions = 0
        normal_slots = 0
        separator_slots = 0

        for partition_start in range(0, len(slots), self.pe_count):
            partition = slots[partition_start : partition_start + self.pe_count]
            partitions += 1
            # Calculation phase: walk the partition in stream order; a
            # Normal PE contributes value * x[col] to its row's running
            # partial; a Separator closes out the row segment.
            for slot in partition:
                if slot.is_separator:
                    separator_slots += 1
                    y[slot.row] += partials.pop(slot.row, 0.0)
                else:
                    normal_slots += 1
                    partials[slot.row] = (
                        partials.get(slot.row, 0.0) + slot.value * x[slot.col]
                    )
        # A row whose last elements sit at the very end of the final
        # partition still dumps (the dump phase flushes every separator,
        # and packing always appends one separator per row).
        for row, value in partials.items():  # pragma: no cover - guarded
            y[row] += value

        cycles = partitions * 3 * self.grid
        return FlexTpuMachineResult(
            y=y,
            cycles=cycles,
            partitions=partitions,
            normal_pe_slots=normal_slots,
            separator_slots=separator_slots,
        )

    def _pack(self, matrix: CooMatrix) -> list[_Slot]:
        """Row-major packing: each nonempty row's elements, then a Separator."""
        csr = CsrMatrix.from_coo(matrix)
        slots: list[_Slot] = []
        for i in range(matrix.shape[0]):
            cols, vals = csr.row(i)
            if cols.size == 0:
                continue
            for col, value in zip(cols, vals):
                slots.append(
                    _Slot(is_separator=False, row=i, col=int(col), value=float(value))
                )
            slots.append(_Slot(is_separator=True, row=i))
        return slots
