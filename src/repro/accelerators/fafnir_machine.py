"""Event-driven Fafnir tree machine.

The analytic :class:`~repro.accelerators.fafnir.Fafnir` model credits the
tree with perfect in-flight merging — the optimistic floor behind Table 1's
"at least" execution time.  This machine simulates the actual value flow,
node port by node port, so the two can be compared:

* leaves emit one (row, partial product) per cycle from their column
  queues (LIL order: each leaf owns the columns congruent to its index);
* an internal node looks at its two children's output heads each cycle —
  equal row indices merge (one accumulate) into a single forwarded value,
  otherwise the smaller row index forwards and the other waits;
* every node output port carries at most one value per cycle, so
  unmergeable traffic serializes — exactly the congestion that drags
  Fafnir's SpMV utilization to the paper's measured few percent;
* the root's output stream accumulates into the result vector.

Invariants pinned by tests: output equals the numpy oracle; cycle count is
never *below* the analytic model's optimistic floor; and merge + root
output counts add up to the nonzero count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class FafnirMachineResult:
    """Outcome of one event-driven Fafnir run."""

    y: np.ndarray
    cycles: int
    merges: int
    root_outputs: int
    leaf_multiplies: int


class FafnirMachine:
    """Simulates a Fafnir tree with ``length`` leaves (power of two)."""

    def __init__(self, length: int):
        if length < 2 or length & (length - 1):
            raise HardwareConfigError(
                f"Fafnir length must be a power of two >= 2, got {length}"
            )
        self.length = length

    def run(self, matrix: CooMatrix, x: np.ndarray) -> FafnirMachineResult:
        m, n = matrix.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        if matrix.nnz == 0:
            return FafnirMachineResult(
                y=np.zeros(m), cycles=0, merges=0, root_outputs=0,
                leaf_multiplies=0,
            )

        length = self.length
        # Heap-indexed tree: node 1 is the root, nodes length..2*length-1
        # are leaves; children of node i are 2i and 2i+1.
        outputs: list[deque[tuple[int, float]]] = [
            deque() for _ in range(2 * length)
        ]

        # Leaf queues: each leaf's columns in ascending (col, row) order —
        # LIL streaming of the columns it owns.
        leaf_order = np.lexsort((matrix.rows, matrix.cols))
        leaf_of_edge = (matrix.cols % length)[leaf_order]
        rows_sorted = matrix.rows[leaf_order]
        products_sorted = (matrix.data * x[matrix.cols])[leaf_order]
        leaf_queues: list[deque[tuple[int, float]]] = [
            deque() for _ in range(length)
        ]
        for leaf, row, product in zip(leaf_of_edge, rows_sorted, products_sorted):
            leaf_queues[leaf].append((int(row), float(product)))

        y = np.zeros(m, dtype=np.float64)
        merges = 0
        root_outputs = 0
        leaf_multiplies = 0
        cycles = 0

        internal = list(range(1, length))  # root-first (top-down) order

        def node_step(node: int) -> None:
            nonlocal merges
            left, right = outputs[2 * node], outputs[2 * node + 1]
            if left and right and left[0][0] == right[0][0]:
                row, a = left.popleft()
                _, b = right.popleft()
                outputs[node].append((row, a + b))
                merges += 1
            elif left and (not right or left[0][0] <= right[0][0]):
                outputs[node].append(left.popleft())
            elif right:
                outputs[node].append(right.popleft())

        while True:
            busy = False
            # Root drains one value per cycle into the result vector.
            if outputs[1]:
                row, value = outputs[1].popleft()
                y[row] += value
                root_outputs += 1
                busy = True
            # Internal nodes, top-down: each moves one value this cycle,
            # reading children state that predates their own step (one
            # level of travel per cycle).
            for node in internal:
                if outputs[2 * node] or outputs[2 * node + 1]:
                    node_step(node)
                    busy = True
            # Leaves multiply and emit one element each.
            for leaf in range(length):
                if leaf_queues[leaf]:
                    outputs[length + leaf].append(leaf_queues[leaf].popleft())
                    leaf_multiplies += 1
                    busy = True
            if not busy:
                break
            cycles += 1

        return FafnirMachineResult(
            y=y,
            cycles=cycles,
            merges=merges,
            root_outputs=root_outputs,
            leaf_multiplies=leaf_multiplies,
        )
