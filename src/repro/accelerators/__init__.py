"""Baseline SpMV accelerator models (paper Section 2) plus GUST and Serpens.

Every design implements the :class:`~repro.accelerators.base.Accelerator`
interface: ``run(matrix)`` returns a :class:`~repro.types.CycleReport` from
the design's dataflow, and ``spmv(matrix, x)`` executes the same dataflow
functionally so tests can pin each model to the numpy oracle.
"""

from repro.accelerators.adder_tree import AdderTree
from repro.accelerators.adder_tree_machine import AdderTreeMachine
from repro.accelerators.base import Accelerator
from repro.accelerators.fafnir import Fafnir
from repro.accelerators.fafnir_machine import FafnirMachine
from repro.accelerators.flex_tpu import FlexTpu
from repro.accelerators.flex_tpu_machine import FlexTpuMachine
from repro.accelerators.gust import GustAccelerator
from repro.accelerators.serpens import Serpens
from repro.accelerators.serpens_machine import SerpensMachine
from repro.accelerators.systolic_1d import Systolic1D
from repro.accelerators.systolic_1d_machine import Systolic1DMachine

__all__ = [
    "Accelerator",
    "AdderTree",
    "AdderTreeMachine",
    "Fafnir",
    "FafnirMachine",
    "FlexTpu",
    "FlexTpuMachine",
    "GustAccelerator",
    "Serpens",
    "SerpensMachine",
    "Systolic1D",
    "Systolic1DMachine",
]
