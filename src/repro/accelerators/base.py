"""Common interface for all accelerator models."""

from __future__ import annotations

import abc

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.types import CycleReport


class Accelerator(abc.ABC):
    """An SpMV design with a dataflow-level cycle model.

    Subclasses define ``name``, the number of arithmetic units, and the two
    core operations.  Cycle models follow each design's published mechanism
    (Figure 1 of the paper); functional ``spmv`` walks the same dataflow so
    the model's bookkeeping is continuously cross-checked against numerics.
    """

    #: Short identifier used in experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, matrix: CooMatrix) -> CycleReport:
        """Predict cycles/utilization for one SpMV on ``matrix``."""

    @abc.abstractmethod
    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        """Execute the design's dataflow functionally; returns y = A @ x."""

    def utilization(self, matrix: CooMatrix) -> float:
        """Convenience: hardware utilization for one SpMV."""
        return self.run(matrix).utilization

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
