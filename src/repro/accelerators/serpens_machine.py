"""Cycle-level Serpens group walker (independent check of the channel model).

Walks the channel-interleaved padded stream the preprocessing step builds:
each channel advances through its row groups in order; within a group every
lane consumes its row one element per ``cycles_per_element`` stream slots,
and the group releases only when its heaviest row drains (lane-synchronous
release — the load-imbalance mechanism behind Serpens' power-law losses).

This is an *independent implementation* of the same architecture as
:class:`~repro.accelerators.serpens.Serpens`; tests assert the two agree
exactly on cycles, which guards each against bugs in the other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class SerpensMachineResult:
    """Outcome of one group-walk run."""

    y: np.ndarray
    cycles: int
    channel_cycles: tuple[int, ...]
    lane_busy_slots: int
    lane_idle_slots: int

    @property
    def lane_efficiency(self) -> float:
        """Busy element-slots over total element-slots across all groups.

        A group of ``lanes`` rows occupies ``lanes * heaviest_row`` slots;
        only the actual nonzeros are busy.  Low efficiency is Serpens'
        power-law failure mode.
        """
        total = self.lane_busy_slots + self.lane_idle_slots
        return self.lane_busy_slots / total if total else 0.0


class SerpensMachine:
    """Walks row groups channel by channel, lane by lane."""

    def __init__(
        self,
        channels: int = 24,
        lanes: int = 8,
        cycles_per_element: float = 2.2,
        startup_cycles: int = 256,
    ):
        if channels <= 0 or lanes <= 0:
            raise HardwareConfigError("channels and lanes must be positive")
        if cycles_per_element <= 0:
            raise HardwareConfigError("cycles_per_element must be positive")
        self.channels = channels
        self.lanes = lanes
        self.cycles_per_element = cycles_per_element
        self.startup_cycles = startup_cycles

    def run(self, matrix: CooMatrix, x: np.ndarray) -> SerpensMachineResult:
        m, n = matrix.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        if matrix.nnz == 0:
            return SerpensMachineResult(
                y=np.zeros(m),
                cycles=0,
                channel_cycles=tuple(0 for _ in range(self.channels)),
                lane_busy_slots=0,
                lane_idle_slots=0,
            )

        csr = CsrMatrix.from_coo(matrix)
        y = np.zeros(m, dtype=np.float64)
        channel_raw = [0.0] * self.channels
        idle_slots = 0

        groups = -(-m // self.lanes)
        for group in range(groups):
            row_lo = group * self.lanes
            row_hi = min(m, row_lo + self.lanes)
            heaviest = 0
            # Lanes process their rows; the group holds until the heaviest
            # row drains.
            for lane, row in enumerate(range(row_lo, row_hi)):
                cols, vals = csr.row(row)
                heaviest = max(heaviest, cols.size)
                if cols.size:
                    y[row] = float(np.sum(vals * x[cols]))
            if heaviest == 0:
                continue
            channel = group % self.channels
            channel_raw[channel] += heaviest * self.cycles_per_element
            # Idle accounting: lanes whose rows are lighter than the
            # heaviest wait, as do lanes of rows past the matrix edge.
            for lane, row in enumerate(range(row_lo, row_hi)):
                idle_slots += heaviest - csr.row_nnz(row)
            idle_slots += (self.lanes - (row_hi - row_lo)) * heaviest

        channel_cycles = tuple(int(np.ceil(c)) for c in channel_raw)
        cycles = (
            int(np.ceil(max(channel_raw))) + self.startup_cycles
            if any(channel_raw)
            else 0
        )
        return SerpensMachineResult(
            y=y,
            cycles=cycles,
            channel_cycles=channel_cycles,
            lane_busy_slots=matrix.nnz,
            lane_idle_slots=idle_slots,
        )
