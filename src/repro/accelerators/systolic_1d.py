"""Baseline 1D systolic array (paper Section 2.1, Figure 1b).

A strip of ``l`` processing elements; each PE owns one row of the current
window and receives that row's *dense* column stream (zeros included) while
vector elements ripple left to right.  Every matrix cell, zero or not,
costs a cycle on its PE, which is exactly why 1D utilization collapses to
~0.08% on sparse inputs (Table 1).

Execution time (Table 1): m*n/l + l + 1 — n cycles per window of l rows,
plus l cycles of vector ripple and one dump cycle.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator
from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix
from repro.sparse.stats import window_count
from repro.types import CycleReport


class Systolic1D(Accelerator):
    """Length-``l`` 1D systolic array: ``l`` MAC PEs (l mults + l adds)."""

    name = "1D"

    def __init__(self, length: int):
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        self.length = length

    def run(self, matrix: CooMatrix) -> CycleReport:
        m, n = matrix.shape
        windows = window_count(m, self.length)
        cycles = windows * n + self.length + 1 if matrix.nnz else 0
        return CycleReport(
            cycles=cycles,
            useful_ops=2 * matrix.nnz,
            total_units=2 * self.length,
        )

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        """Walk the dataflow: per window, stream all n columns through PEs."""
        x = np.asarray(x, dtype=np.float64)
        m, n = matrix.shape
        if x.shape != (n,):
            raise HardwareConfigError(
                f"vector length {x.shape} incompatible with shape {matrix.shape}"
            )
        y = np.zeros(m, dtype=np.float64)
        window_of_row = matrix.rows // self.length
        for w in range(window_count(m, self.length)):
            mask = window_of_row == w
            rows_w = matrix.rows[mask] - w * self.length
            size = min(self.length, m - w * self.length)
            # Dense column stream: each PE accumulates its row's products in
            # column order; order does not change the float result because
            # accumulation below mirrors it (sorted by column within row).
            accumulators = np.zeros(size, dtype=np.float64)
            np.add.at(accumulators, rows_w, matrix.data[mask] * x[matrix.cols[mask]])
            y[w * self.length : w * self.length + size] = accumulators
        return y
