"""GUST wrapped in the common :class:`Accelerator` interface.

The experiment harness compares designs uniformly; this adapter exposes
the scheduling pipeline's cycle model (including the naive strawman and the
EC / EC+LB configurations) alongside the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator
from repro.core.pipeline import GustPipeline
from repro.sparse.coo import CooMatrix
from repro.types import CycleReport, PreprocessReport


class GustAccelerator(Accelerator):
    """Length-``l`` GUST under a scheduling policy.

    Args:
        length: accelerator length (multipliers = adders = l).
        algorithm: "matching" (the paper's edge coloring), "first_fit",
            "euler", or "naive".
        load_balance: apply the three-step balancer (the EC/LB series).
    """

    def __init__(
        self,
        length: int,
        algorithm: str = "matching",
        load_balance: bool = True,
    ):
        self.length = length
        self.pipeline = GustPipeline(
            length, algorithm=algorithm, load_balance=load_balance
        )
        suffix = {
            ("naive", False): "Naive",
            ("naive", True): "Naive",
            ("matching", False): "EC",
            ("matching", True): "EC/LB",
            ("first_fit", False): "FF",
            ("first_fit", True): "FF/LB",
            ("euler", False): "OPT",
            ("euler", True): "OPT/LB",
        }[(algorithm, load_balance)]
        self.name = f"GUST-{suffix}"
        self._last_preprocess: PreprocessReport | None = None

    def run(self, matrix: CooMatrix) -> CycleReport:
        cycle_report, report = self.pipeline.preprocess_stats(matrix)
        self._last_preprocess = report
        return cycle_report

    def spmv(self, matrix: CooMatrix, x: np.ndarray) -> np.ndarray:
        return self.pipeline.spmv(matrix, np.asarray(x, dtype=np.float64)).y

    @property
    def last_preprocess(self) -> PreprocessReport | None:
        """Preprocessing report from the most recent :meth:`run`."""
        return self._last_preprocess
