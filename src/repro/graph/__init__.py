"""Bipartite edge-coloring machinery — the combinatorial heart of GUST.

A row window of the sparse matrix becomes a bipartite multigraph
(:class:`~repro.graph.bipartite.WindowGraph`): left vertices are the window's
rows (one per adder), right vertices are column segments ``col mod l`` (one
per multiplier), and each nonzero is an edge.  A proper edge coloring assigns
each nonzero a buffer slot such that no multiplier or adder is double-booked
in any cycle.

Three coloring algorithms are provided:

* :func:`~repro.graph.edge_coloring.greedy_matching_coloring` — the paper's
  Listing 1 (round-based greedy maximal matching).  The default.
* :func:`~repro.graph.edge_coloring.first_fit_coloring` — per-edge first-fit
  with bitmask bookkeeping; faster in Python, never worse than 2Δ−1 colors.
* :func:`~repro.graph.edge_coloring.euler_coloring` — exactly Δ colors (the
  König optimum) via regularization + repeated perfect matchings; the
  paper's future-work-quality ablation.
"""

from repro.graph.bipartite import WindowGraph
from repro.graph.edge_coloring import (
    euler_coloring,
    first_fit_coloring,
    greedy_matching_coloring,
)
from repro.graph.matching import hopcroft_karp
from repro.graph.properties import (
    color_count,
    max_bipartite_degree,
    validate_coloring,
)

__all__ = [
    "WindowGraph",
    "color_count",
    "euler_coloring",
    "first_fit_coloring",
    "greedy_matching_coloring",
    "hopcroft_karp",
    "max_bipartite_degree",
    "validate_coloring",
]
