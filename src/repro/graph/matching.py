"""Bipartite matching algorithms.

:func:`hopcroft_karp` finds a maximum matching; the optimal edge coloring
(:func:`repro.graph.edge_coloring.euler_coloring`) calls it once per color to
peel perfect matchings off a regularized multigraph.
"""

from __future__ import annotations

from collections import deque

import numpy as np

_INF = float("inf")


def hopcroft_karp(
    adjacency: list[list[int]], n_left: int, n_right: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Maximum bipartite matching via Hopcroft-Karp.

    Args:
        adjacency: for each left vertex, the list of right neighbours
            (duplicates allowed; they do not change the matching).
        n_left: number of left vertices.
        n_right: number of right vertices.

    Returns:
        (match_left, match_right, size): ``match_left[u]`` is the right
        vertex matched to ``u`` or -1; symmetrically for ``match_right``.
    """
    match_left = np.full(n_left, -1, dtype=np.int64)
    match_right = np.full(n_right, -1, dtype=np.int64)
    size = 0

    while True:
        # BFS phase: layer the free left vertices.
        dist = [_INF] * n_left
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
        found_augmenting_layer = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found_augmenting_layer = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        if not found_augmenting_layer:
            return match_left, match_right, size

        # DFS phase: find a maximal set of vertex-disjoint shortest paths.
        # Iterative to stay clear of Python's recursion limit on long paths.
        def try_augment(root: int) -> bool:
            frames = [(root, iter(adjacency[root]))]
            pending: list[tuple[int, int]] = []
            while frames:
                u, neighbours = frames[-1]
                descended = False
                for v in neighbours:
                    w = int(match_right[v])
                    if w == -1:
                        match_left[u] = v
                        match_right[v] = u
                        for up, vp in reversed(pending):
                            match_left[up] = vp
                            match_right[vp] = up
                        return True
                    if dist[w] == dist[u] + 1:
                        pending.append((u, v))
                        frames.append((w, iter(adjacency[w])))
                        descended = True
                        break
                if not descended:
                    dist[u] = _INF
                    frames.pop()
                    if pending:
                        pending.pop()
            return False

        for u in range(n_left):
            if match_left[u] == -1 and try_augment(u):
                size += 1


def greedy_maximal_matching(
    adjacency: list[list[int]], n_left: int, n_right: int
) -> list[tuple[int, int]]:
    """One greedy maximal matching: scan left vertices in index order, take
    the first unmatched right neighbour.  This is exactly one round of the
    paper's Listing 1 (without the edge bookkeeping, which the scheduler owns).
    """
    taken_right = bytearray(n_right)
    matching: list[tuple[int, int]] = []
    for u in range(n_left):
        for v in adjacency[u]:
            if not taken_right[v]:
                taken_right[v] = 1
                matching.append((u, v))
                break
    return matching
