"""Bipartite matching algorithms.

:func:`hopcroft_karp` finds a maximum matching on Python adjacency lists;
:func:`hopcroft_karp_flat` is its flat-array counterpart over CSR adjacency,
built to run one matching pass across the disjoint union of many window
graphs at once.  The optimal edge coloring
(:func:`repro.graph.edge_coloring.euler_coloring_flat`) calls the flat
variant once per color to peel perfect matchings off every window's
regularized multigraph simultaneously.
"""

from __future__ import annotations

from collections import deque

import numpy as np

_INF = float("inf")


def hopcroft_karp(
    adjacency: list[list[int]], n_left: int, n_right: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Maximum bipartite matching via Hopcroft-Karp.

    Args:
        adjacency: for each left vertex, the list of right neighbours
            (duplicates allowed; they do not change the matching).
        n_left: number of left vertices.
        n_right: number of right vertices.

    Returns:
        (match_left, match_right, size): ``match_left[u]`` is the right
        vertex matched to ``u`` or -1; symmetrically for ``match_right``.
    """
    match_left = np.full(n_left, -1, dtype=np.int64)
    match_right = np.full(n_right, -1, dtype=np.int64)
    size = 0

    while True:
        # BFS phase: layer the free left vertices.
        dist = [_INF] * n_left
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
        found_augmenting_layer = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found_augmenting_layer = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        if not found_augmenting_layer:
            return match_left, match_right, size

        # DFS phase: find a maximal set of vertex-disjoint shortest paths.
        # Iterative to stay clear of Python's recursion limit on long paths.
        def try_augment(root: int) -> bool:
            frames = [(root, iter(adjacency[root]))]
            pending: list[tuple[int, int]] = []
            while frames:
                u, neighbours = frames[-1]
                descended = False
                for v in neighbours:
                    w = int(match_right[v])
                    if w == -1:
                        match_left[u] = v
                        match_right[v] = u
                        for up, vp in reversed(pending):
                            match_left[up] = vp
                            match_right[vp] = up
                        return True
                    if dist[w] == dist[u] + 1:
                        pending.append((u, v))
                        frames.append((w, iter(adjacency[w])))
                        descended = True
                        break
                if not descended:
                    dist[u] = _INF
                    frames.pop()
                    if pending:
                        pending.pop()
            return False

        for u in range(n_left):
            if match_left[u] == -1 and try_augment(u):
                size += 1


def _augment_flat(
    root: int,
    indptr: list[int],
    indices: list[int],
    dist: list[int],
    match_left: list[int],
    match_right: list[int],
    updates_u: list[int],
    updates_v: list[int],
) -> bool:
    """Iterative shortest-path augmentation over CSR adjacency.

    A faithful port of :func:`hopcroft_karp`'s ``try_augment`` — same
    neighbour scan order (CSR slice order == adjacency list order), same
    resume-after-descent semantics, same ``dist`` invalidation on failure —
    so the matchings it produces are identical vertex for vertex.  Every
    matching write is also appended to ``updates_u``/``updates_v`` (in
    write order) so the caller can mirror the phase's changes into its
    NumPy views.
    """
    u = root
    pos = indptr[root]
    end = indptr[root + 1]
    target = dist[root] + 1
    # Three parallel stacks carry one frame per descent: the suspended
    # vertex, its resume position, and the edge descended through (the
    # frame's pending matching write is exactly (stack_u[i], stack_v[i])).
    # The suspended vertex's scan end and layer target are recomputed on
    # pop — both stay valid while the frame is live, since ``dist[u]`` is
    # only invalidated when ``u``'s own scan fails.
    stack_u: list[int] = []
    stack_pos: list[int] = []
    stack_v: list[int] = []
    while True:
        descended = False
        while pos < end:
            v = indices[pos]
            pos += 1
            w = match_right[v]
            if w == -1:
                match_left[u] = v
                match_right[v] = u
                updates_u.append(u)
                updates_v.append(v)
                for i in range(len(stack_u) - 1, -1, -1):
                    up = stack_u[i]
                    vp = stack_v[i]
                    match_left[up] = vp
                    match_right[vp] = up
                    updates_u.append(up)
                    updates_v.append(vp)
                return True
            if dist[w] == target:
                stack_u.append(u)
                stack_pos.append(pos)
                stack_v.append(v)
                u = w
                pos = indptr[w]
                end = indptr[w + 1]
                target = dist[w] + 1
                descended = True
                break
        if descended:
            continue
        dist[u] = -1
        if not stack_u:
            return False
        u = stack_u.pop()
        pos = stack_pos.pop()
        stack_v.pop()
        end = indptr[u + 1]
        target = dist[u] + 1


def hopcroft_karp_flat(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_left: int,
    n_right: int,
    *,
    seed_left: np.ndarray | None = None,
    seed_right: np.ndarray | None = None,
    seed_size: int = 0,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Maximum bipartite matching via Hopcroft-Karp over CSR adjacency.

    Args:
        indptr: int64 array of ``n_left + 1`` offsets; left vertex ``u``'s
            right neighbours are ``indices[indptr[u]:indptr[u + 1]]``
            (duplicates allowed; they do not change the matching).
        indices: flat right-neighbour array.
        n_left: number of left vertices.
        n_right: number of right vertices.
        seed_left / seed_right / seed_size: optional starting matching the
            search resumes from (the arrays are taken over, not copied).
            The result is a maximum matching for any valid seed; it equals
            the unseeded run's matching exactly when the seed is the
            matching the unseeded first phase itself would build — i.e.
            each left vertex, in ascending order, paired with its first
            free right neighbour in adjacency order.  Callers that rely on
            traversal-order fidelity (the euler coloring against its
            frozen oracle) pass exactly that greedy matching, computed
            with vectorized scatter steps instead of the Python scan.

    Returns:
        (match_left, match_right, size): ``match_left[u]`` is the right
        vertex matched to ``u`` or -1; symmetrically for ``match_right``.

    Produces the same matching as :func:`hopcroft_karp` on the equivalent
    adjacency lists.  When the graph is a disjoint union of components
    whose vertex ids are grouped (window ``w`` owning ids
    ``[w * l, (w + 1) * l)``), the per-component matchings also equal the
    ones separate per-component runs would produce: BFS layers never cross
    components, augmentations stay within one component, and the global
    ascending root order preserves each component's local root order.  The
    BFS phase advances every component's layering in lock-step with
    vectorized gather/scatter; only the augmenting DFS walks Python lists.
    """
    # Any integer dtype works for the CSR pair; narrower indices halve the
    # BFS gathers' memory traffic, so the caller's dtype is preserved.
    indptr = np.ascontiguousarray(indptr)
    indices = np.ascontiguousarray(indices)
    # The Python lists are the matching's source of truth for the DFS; the
    # NumPy mirrors serve the vectorized BFS gathers and are kept in sync
    # from each phase's recorded writes (cheaper than re-converting two
    # n-vertex arrays per phase).  List conversion is deferred until a DFS
    # phase actually runs: a caller whose seed is already maximum pays only
    # for the (vectorized) BFS that proves it.
    iptr: list[int] | None = None
    idx: list[int] = []
    if seed_left is not None and seed_right is not None:
        ml = np.ascontiguousarray(seed_left)
        mr = np.ascontiguousarray(seed_right)
        match_left: list[int] = []
        match_right: list[int] = []
        size = int(seed_size)
    else:
        match_left = [-1] * n_left
        match_right = [-1] * n_right
        ml = np.full(n_left, -1, dtype=np.int64)
        mr = np.full(n_right, -1, dtype=np.int64)
        size = 0
    # Only left vertices with at least one edge can ever be matched or lie
    # on an augmenting path as roots; skipping isolated vertices keeps each
    # phase O(active) even when most components are already exhausted.
    candidates = np.flatnonzero(indptr[1:] > indptr[:-1])
    # Scratch for frontier dedup (cheaper than np.unique's sort per level).
    seen = np.zeros(n_left, dtype=bool)

    while True:
        # BFS phase: layer the free left vertices of every component in
        # lock-step.  ``dist`` uses -1 for the reference's infinity; layer
        # values are the same BFS levels the queue-based phase assigns.
        dist = np.full(n_left, -1, dtype=ml.dtype)
        free_roots = candidates[ml[candidates] == -1]
        dist[free_roots] = 0
        frontier = free_roots
        found_augmenting_layer = False
        level = 0
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Expand every frontier vertex's CSR slice in one flat gather.
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            neighbours = indices[np.repeat(starts, counts) + within]
            owners = mr[neighbours]
            if not found_augmenting_layer and (owners == -1).any():
                found_augmenting_layer = True
            owners = owners[owners != -1]
            owners = owners[dist[owners] == -1]
            seen[owners] = True
            frontier = np.flatnonzero(seen)
            seen[frontier] = False
            level += 1
            dist[frontier] = level
        if not found_augmenting_layer:
            return ml, mr, size

        # DFS phase: vertex-disjoint shortest augmenting paths, in the
        # reference's ascending free-root order.  A root is never matched
        # by another root's augmentation (path interiors are matched
        # vertices), so ``free_roots`` needs no re-checking mid-phase.
        if iptr is None:
            iptr = indptr.tolist()
            idx = indices.tolist()
            if not match_left:
                match_left = ml.tolist()
                match_right = mr.tolist()
        updates_u: list[int] = []
        updates_v: list[int] = []
        if size == 0:
            # First phase over an empty matching: no right vertex has an
            # owner to descend into, so every reference DFS degenerates to
            # "take the first free right in scan order" — run that scan
            # directly, without the frames machinery.
            for root in free_roots.tolist():
                for pos in range(iptr[root], iptr[root + 1]):
                    v = idx[pos]
                    if match_right[v] == -1:
                        match_left[root] = v
                        match_right[v] = root
                        updates_u.append(root)
                        updates_v.append(v)
                        size += 1
                        break
        else:
            dist_l = dist.tolist()
            for root in free_roots.tolist():
                if _augment_flat(
                    root,
                    iptr,
                    idx,
                    dist_l,
                    match_left,
                    match_right,
                    updates_u,
                    updates_v,
                ):
                    size += 1
        if updates_u:
            # Mirror the phase's writes into the NumPy views.  Later writes
            # to the same vertex supersede earlier ones (rewired paths):
            # reverse the write log and keep each vertex's first (i.e.
            # latest) entry — ``np.unique`` returns first-occurrence
            # indices — before scattering.
            uu = np.array(updates_u, dtype=np.int64)[::-1]
            vv = np.array(updates_v, dtype=np.int64)[::-1]
            _, latest = np.unique(uu, return_index=True)
            ml[uu[latest]] = vv[latest]
            _, latest = np.unique(vv, return_index=True)
            mr[vv[latest]] = uu[latest]


def greedy_maximal_matching(
    adjacency: list[list[int]], n_left: int, n_right: int
) -> list[tuple[int, int]]:
    """One greedy maximal matching: scan left vertices in index order, take
    the first unmatched right neighbour.  This is exactly one round of the
    paper's Listing 1 (without the edge bookkeeping, which the scheduler owns).
    """
    taken_right = bytearray(n_right)
    matching: list[tuple[int, int]] = []
    for u in range(n_left):
        for v in adjacency[u]:
            if not taken_right[v]:
                taken_right[v] = 1
                matching.append((u, v))
                break
    return matching
