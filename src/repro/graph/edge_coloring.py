"""Edge-coloring algorithms for GUST scheduling.

The color assigned to an edge (a nonzero) is its position in the multiplier
input buffer — its time slot.  A *proper* coloring (no two edges sharing a
vertex have the same color) guarantees collision freedom: per cycle, each
multiplier issues at most one element and each adder receives at most one
partial product.

Three algorithms, trading faithfulness against color count and speed:

=====================  ===========================  =======================
algorithm              colors                       provenance
=====================  ===========================  =======================
greedy_matching        <= 2*Delta - 1, ~Delta typ.  the paper's Listing 1
first_fit              <= 2*Delta - 1, ~Delta typ.  fast bitmask variant
euler (matching peel)  == Delta exactly             König optimum, ablation
=====================  ===========================  =======================

All three take a :class:`~repro.graph.bipartite.WindowGraph` and return a
per-edge int64 color array aligned with the graph's edge arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph
from repro.graph.matching import hopcroft_karp


def greedy_matching_coloring(graph: WindowGraph) -> np.ndarray:
    """The paper's Listing 1: round-based greedy maximal matching.

    Round ``clr`` scans left vertices in index order; each vertex colors its
    first remaining edge whose column segment is not yet claimed this round,
    then stops (the ``break`` in Listing 1).  Rounds repeat until every edge
    is colored.
    """
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors

    # remaining[i] holds edge ids of left vertex i, in column order.
    remaining = graph.edges_by_row()
    colsegs = graph.colsegs
    active = [i for i, edges in enumerate(remaining) if edges]

    clr = 0
    while active:
        claimed = bytearray(graph.length)
        next_active: list[int] = []
        for i in active:
            edges = remaining[i]
            for k, edge_id in enumerate(edges):
                seg = colsegs[edge_id]
                if not claimed[seg]:
                    claimed[seg] = 1
                    edge_colors[edge_id] = clr
                    del edges[k]
                    break
            if edges:
                next_active.append(i)
        active = next_active
        clr += 1
    return edge_colors


def first_fit_coloring(graph: WindowGraph) -> np.ndarray:
    """Per-edge first-fit: each edge takes the smallest color free at both
    endpoints, processed in row-major (canonical COO) order.

    Uses arbitrary-precision int bitmasks, making each assignment O(1)-ish;
    this is the fast path for large experiment sweeps.  Color count is
    bounded by deg(row) + deg(colseg) - 1 <= 2*Delta - 1 and is typically
    within a few percent of Delta.
    """
    edge_colors = np.empty(graph.edge_count, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors
    row_used = [0] * graph.length
    seg_used = [0] * graph.length
    local_rows = graph.local_rows
    colsegs = graph.colsegs
    for edge_id in range(graph.edge_count):
        i = local_rows[edge_id]
        j = colsegs[edge_id]
        free = ~(row_used[i] | seg_used[j])
        color = (free & -free).bit_length() - 1
        bit = 1 << color
        row_used[i] |= bit
        seg_used[j] |= bit
        edge_colors[edge_id] = color
    return edge_colors


def euler_coloring(graph: WindowGraph) -> np.ndarray:
    """Optimal bipartite edge coloring with exactly Delta colors.

    König's theorem guarantees the chromatic index of a bipartite multigraph
    equals its maximum degree Delta.  We realize it constructively:

    1. Pad the window graph with dummy edges until every vertex has degree
       exactly Delta (always possible for a bipartite multigraph with equal
       side sizes).
    2. Peel off Delta perfect matchings with Hopcroft-Karp, one per color.
       A d-regular bipartite multigraph always contains one (Hall), and
       removing it leaves a (d-1)-regular multigraph.
    3. Report only the colors of real edges.

    This is the ablation counterpart to the paper's greedy scheduler: it
    attains the Eq. (1) lower bound at higher preprocessing cost.
    """
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors

    delta = graph.max_degree()
    length = graph.length
    left_deg = graph.left_degrees().astype(np.int64)
    right_deg = graph.right_degrees().astype(np.int64)

    # Edge list with dummies appended; entries are (left, right, real_id).
    lefts = list(map(int, graph.local_rows))
    rights = list(map(int, graph.colsegs))
    real_ids = list(range(graph.edge_count))

    left_deficit = [delta - int(d) for d in left_deg]
    right_deficit = [delta - int(d) for d in right_deg]
    u, v = 0, 0
    while u < length and v < length:
        if left_deficit[u] == 0:
            u += 1
            continue
        if right_deficit[v] == 0:
            v += 1
            continue
        lefts.append(u)
        rights.append(v)
        real_ids.append(-1)
        left_deficit[u] -= 1
        right_deficit[v] -= 1
    if any(left_deficit) or any(right_deficit):
        raise ColoringError("regularization failed; unbalanced bipartite sides")

    alive = list(range(len(lefts)))
    for color in range(delta):
        # Adjacency over the surviving multigraph; remember one edge id per
        # (left, right) pair so matched pairs can be deleted afterwards.
        adjacency: list[list[int]] = [[] for _ in range(length)]
        edge_for_pair: dict[tuple[int, int], list[int]] = {}
        for edge in alive:
            pair = (lefts[edge], rights[edge])
            adjacency[pair[0]].append(pair[1])
            edge_for_pair.setdefault(pair, []).append(edge)
        match_left, _, size = hopcroft_karp(adjacency, length, length)
        if size != length:
            raise ColoringError(
                f"regular multigraph lacked a perfect matching at color {color}"
            )
        removed: set[int] = set()
        for u_vertex in range(length):
            pair = (u_vertex, int(match_left[u_vertex]))
            edge = edge_for_pair[pair].pop()
            removed.add(edge)
            if real_ids[edge] >= 0:
                edge_colors[real_ids[edge]] = color
        alive = [edge for edge in alive if edge not in removed]

    if (edge_colors < 0).any():
        raise ColoringError("euler coloring left edges uncolored")
    return edge_colors


#: Registry used by the scheduler's ``algorithm=`` parameter.
ALGORITHMS = {
    "matching": greedy_matching_coloring,
    "first_fit": first_fit_coloring,
    "euler": euler_coloring,
}


def color_edges(graph: WindowGraph, algorithm: str = "matching") -> np.ndarray:
    """Dispatch to a registered coloring algorithm by name."""
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise ColoringError(
            f"unknown coloring algorithm {algorithm!r}; "
            f"choose from {sorted(ALGORITHMS)}"
        ) from None
    return fn(graph)
