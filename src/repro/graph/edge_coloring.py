"""Edge-coloring algorithms for GUST scheduling.

The color assigned to an edge (a nonzero) is its position in the multiplier
input buffer — its time slot.  A *proper* coloring (no two edges sharing a
vertex have the same color) guarantees collision freedom: per cycle, each
multiplier issues at most one element and each adder receives at most one
partial product.

Three algorithms, trading faithfulness against color count and speed:

=====================  ===========================  =======================
algorithm              colors                       provenance
=====================  ===========================  =======================
greedy_matching        <= 2*Delta - 1, ~Delta typ.  the paper's Listing 1
first_fit              <= 2*Delta - 1, ~Delta typ.  fast bitmask variant
euler (matching peel)  == Delta exactly             König optimum, ablation
=====================  ===========================  =======================

All three take a :class:`~repro.graph.bipartite.WindowGraph` and return a
per-edge int64 color array aligned with the graph's edge arrays, using
``-1`` for "uncolored" (a completed coloring contains no ``-1``; the
dispatcher :func:`color_edges` enforces this).

Vectorized batch kernels
------------------------

All three algorithms are backed by NumPy kernels
(:func:`matching_coloring_flat`, :func:`first_fit_coloring_flat`,
:func:`euler_coloring_flat`) that operate on *flat edge arrays spanning
every window at once* rather than per-vertex Python lists.  Window graphs
are independent, so the kernels batch the embarrassingly parallel
dimension (windows) and keep only the semantically sequential dimension
as a Python loop:

* greedy matching iterates (round, local row) — within a round, Listing 1
  scans left vertices in index order and claims accumulate, so rows are
  sequential, but the same local row of every window is processed in one
  vectorized step;
* first-fit iterates the within-window edge rank — edge ``k`` of every
  window takes its smallest free color in one vectorized step against
  boolean (vertex, color) occupancy tables;
* euler iterates colors — one
  :func:`~repro.graph.matching.hopcroft_karp_flat` pass over the disjoint
  union of all still-active windows peels color ``c``'s perfect matching
  for every window simultaneously.

The kernels reproduce the original per-window Python implementations
(preserved in :mod:`repro.graph._reference`) *edge-for-edge*, which
``tests/graph/test_vectorized_equivalence.py`` pins down.  The batch entry
points are what :class:`repro.core.scheduler.GustScheduler` calls; the
per-graph functions below wrap them for single windows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph
from repro.graph.matching import hopcroft_karp_flat

#: Byte budget for first-fit's two boolean occupancy tables; beyond it the
#: kernel colors window by window so a degree hub cannot inflate the
#: (slots x palette) allocation (the tables fall back to O(l x palette_w)).
_FIRST_FIT_TABLE_BUDGET = 1 << 27

#: ``np.bitwise_count`` arrived in NumPy 2.0; the uint64 first-fit fast
#: path silently falls back to the boolean tables without it.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def matching_coloring_flat(
    local_rows: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    length: int,
    n_windows: int,
) -> np.ndarray:
    """Listing 1 greedy matching over the flat edge arrays of many windows.

    Args:
        local_rows: per-edge left vertex (row index within its window).
        colsegs: per-edge right vertex (multiplier lane).
        window_ids: per-edge owning window; edges must be grouped by window
            and, within a (window, row) pair, ordered by column — the
            canonical COO order delivers exactly this.
        length: accelerator length ``l``.
        n_windows: total window count (claim-table width).

    Returns:
        int64 colors aligned with the edge arrays; every edge is colored.

    Round ``clr`` scans local rows in index order; each row colors its
    first remaining edge whose column segment is not yet claimed *in its
    own window* this round, then stops (the ``break`` in Listing 1).
    Claims only interact within a window, so one step resolves local row
    ``i`` of every window simultaneously and exactly reproduces the
    sequential per-window result.
    """
    edge_count = int(local_rows.size)
    colors = np.full(edge_count, -1, dtype=np.int64)
    if edge_count == 0:
        return colors

    # Group edges by local row; the stable sort keeps (window, column)
    # order inside each group, i.e. each row's Listing-1 scan order.  The
    # pending edge ids and their (window, seg) claim keys travel as aligned
    # arrays compacted once per round, so the hot per-row step works on
    # views instead of re-gathering.  int32 halves the gather bandwidth
    # (edge counts and claim keys comfortably fit).
    index_dtype = (
        np.int32
        if max(edge_count, n_windows * length) <= np.iinfo(np.int32).max
        else np.int64
    )
    # Narrow sort keys make NumPy's stable radix sort a single pass.
    sort_keys = (
        local_rows.astype(np.int16)
        if length <= np.iinfo(np.int16).max
        else local_rows
    )
    pending = np.argsort(sort_keys, kind="stable").astype(index_dtype)
    pending_rows = local_rows[pending].astype(index_dtype)
    pending_segs = (window_ids[pending] * length + colsegs[pending]).astype(
        index_dtype
    )
    claimed = np.zeros(n_windows * length, dtype=bool)
    row_range = np.arange(length + 1)

    clr = 0
    while pending.size:
        block_starts = np.searchsorted(pending_rows, row_range)
        round_claims: list[np.ndarray] = []
        for i in range(length):
            lo, hi = block_starts[i], block_starts[i + 1]
            if lo == hi:
                continue
            seg_view = pending_segs[lo:hi]
            open_mask = claimed[seg_view]
            np.logical_not(open_mask, out=open_mask)
            cand_segs = seg_view[open_mask]
            if cand_segs.size == 0:
                continue
            # First unclaimed edge per window: candidates are window-grouped
            # and the claim key's high digits are the window id, so key-
            # group boundaries mark each window's winning edge.
            cand_wins = cand_segs // length
            first = np.empty(cand_segs.size, dtype=bool)
            first[0] = True
            np.not_equal(cand_wins[1:], cand_wins[:-1], out=first[1:])
            colors[pending[lo:hi][open_mask][first]] = clr
            won_segs = cand_segs[first]
            claimed[won_segs] = True
            round_claims.append(won_segs)
        # Retract only this round's claims: one edge colored = one claim,
        # so the total reset work is O(nnz) over the whole run instead of
        # O(rounds x n_windows x length) full-table clears.
        for won_segs in round_claims:
            claimed[won_segs] = False
        still_pending = colors[pending] < 0
        if still_pending.all():
            raise ColoringError(
                "greedy matching made no progress; inconsistent edge arrays"
            )
        pending = pending[still_pending]
        pending_rows = pending_rows[still_pending]
        pending_segs = pending_segs[still_pending]
        clr += 1
    return colors


def _first_fit_bigint(
    local_rows: np.ndarray, colsegs: np.ndarray, length: int
) -> np.ndarray:
    """Single-window first-fit over per-vertex big-int color bitmasks.

    Memory floor for degree-hub windows where even one window's boolean
    occupancy tables would exceed the budget: O(length) Python integers,
    the seed implementation's layout.  Identical colors by construction —
    both walk the edges in storage order taking the smallest free color.
    """
    edge_colors = np.full(local_rows.size, -1, dtype=np.int64)
    row_used = [0] * length
    seg_used = [0] * length
    for edge_id in range(local_rows.size):
        i = local_rows[edge_id]
        j = colsegs[edge_id]
        free = ~(row_used[i] | seg_used[j])
        color = (free & -free).bit_length() - 1
        bit = 1 << color
        row_used[i] |= bit
        seg_used[j] |= bit
        edge_colors[edge_id] = color
    return edge_colors


def _first_fit_flat_bitmask(
    local_rows: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    length: int,
    window_starts: np.ndarray,
    slots: int,
) -> np.ndarray:
    """First-fit over uint64 per-vertex color bitmasks (palette <= 64).

    The same rank-major step order as the boolean-table kernel — edge ``k``
    of every still-active window is resolved in one vectorized step — but
    each vertex's occupied-color set is a single uint64, so a step is two
    gathers, three bitwise ops, and a ``np.bitwise_count`` instead of an
    ``argmax`` over a (heads x palette) boolean block.  The first-fit
    bound guarantees the smallest free color of every edge fits in
    ``deg(row) + deg(colseg) - 1 <= 64`` bits, so the masks never
    overflow; colors are identical to the boolean path by construction
    (both take the lowest free bit).
    """
    edge_count = int(local_rows.size)
    colors = np.full(edge_count, -1, dtype=np.int64)
    row_key = window_ids * length + local_rows
    seg_key = window_ids * length + colsegs

    index_dtype = (
        np.int32
        if max(edge_count, slots) <= np.iinfo(np.int32).max
        else np.int64
    )
    ranks = (
        np.arange(edge_count, dtype=np.int64) - window_starts[window_ids]
    ).astype(index_dtype)
    by_rank = np.argsort(ranks, kind="stable")
    row_by_rank = row_key[by_rank].astype(index_dtype)
    seg_by_rank = seg_key[by_rank].astype(index_dtype)
    rank_starts = np.searchsorted(
        ranks[by_rank], np.arange(int(ranks.max()) + 2)
    )

    one = np.uint64(1)
    row_used = np.zeros(slots, dtype=np.uint64)
    seg_used = np.zeros(slots, dtype=np.uint64)
    for k in range(rank_starts.size - 1):
        lo, hi = rank_starts[k], rank_starts[k + 1]
        rows = row_by_rank[lo:hi]
        segs = seg_by_rank[lo:hi]
        used = row_used[rows] | seg_used[segs]
        # Lowest free bit: free & -free, written as ~used & (used + 1) to
        # stay in unsigned arithmetic throughout.
        lsb = ~used & (used + one)
        colors[by_rank[lo:hi]] = np.bitwise_count(lsb - one)
        # One edge per window per rank, so rows/segs are duplicate-free
        # within a step and plain fancy assignment is a safe accumulate.
        row_used[rows] |= lsb
        seg_used[segs] |= lsb
    return colors


def first_fit_coloring_flat(
    local_rows: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    length: int,
    n_windows: int,
    window_starts: np.ndarray,
) -> np.ndarray:
    """First-fit coloring over the flat edge arrays of many windows.

    Args:
        window_starts: int64 array of ``n_windows + 1`` offsets delimiting
            each window's contiguous edge slice; other arguments as in
            :func:`matching_coloring_flat`.

    Each window processes its edges in storage (row-major) order; windows
    are independent, so step ``k`` assigns the ``k``-th edge of every
    still-active window at once.  The smallest color free at both
    endpoints is found with an ``argmax`` over boolean per-vertex
    occupancy rows; a palette of ``max_row_deg + max_seg_deg - 1`` colors
    always contains a free slot (the classic first-fit bound), so no
    reallocation is ever needed.
    """
    edge_count = int(local_rows.size)
    colors = np.full(edge_count, -1, dtype=np.int64)
    if edge_count == 0:
        return colors

    row_key = window_ids * length + local_rows
    seg_key = window_ids * length + colsegs
    max_row_deg = int(np.bincount(row_key).max())
    max_seg_deg = int(np.bincount(seg_key).max())
    palette = max(1, max_row_deg + max_seg_deg - 1)
    slots = n_windows * length

    if (
        _HAS_BITWISE_COUNT
        and palette <= 64
        and 16 * slots <= _FIRST_FIT_TABLE_BUDGET
    ):
        # Bitmask fast path: with at most 64 colors in play, each vertex's
        # occupancy row collapses from ``palette`` booleans to one uint64,
        # and the smallest free color is a popcount away — same colors,
        # an order of magnitude less table memory and per-step work.
        return _first_fit_flat_bitmask(
            local_rows, colsegs, window_ids, length, window_starts, slots
        )

    if 2 * slots * palette > _FIRST_FIT_TABLE_BUDGET:
        # The palette is sized by the *global* degree maximum, so one hub
        # row or column would inflate the occupancy tables of every window.
        # Windows are independent: color them one at a time with window-
        # local tables instead — identical colors, O(l * palette_w) memory
        # per window.  A single window whose own tables would still bust
        # the budget drops to O(l) big-int bitmasks.
        if n_windows == 1:
            return _first_fit_bigint(local_rows, colsegs, length)
        for w in range(n_windows):
            lo, hi = int(window_starts[w]), int(window_starts[w + 1])
            if lo == hi:
                continue
            colors[lo:hi] = first_fit_coloring_flat(
                local_rows[lo:hi],
                colsegs[lo:hi],
                np.zeros(hi - lo, dtype=np.int64),
                length,
                1,
                np.array([0, hi - lo], dtype=np.int64),
            )
        return colors

    row_used = np.zeros((slots, palette), dtype=bool)
    seg_used = np.zeros((slots, palette), dtype=bool)

    # Re-sort the edges rank-major (k-th edge of every window adjacent) so
    # each step's operands are contiguous views, not fancy gathers.  A
    # stable single-key sort on the rank preserves window order inside
    # each rank group; int32 operands halve the gather bandwidth.
    index_dtype = (
        np.int32
        if max(edge_count, slots) <= np.iinfo(np.int32).max
        else np.int64
    )
    ranks = (
        np.arange(edge_count, dtype=np.int64) - window_starts[window_ids]
    ).astype(index_dtype)
    by_rank = np.argsort(ranks, kind="stable")
    row_by_rank = row_key[by_rank].astype(index_dtype)
    seg_by_rank = seg_key[by_rank].astype(index_dtype)
    rank_starts = np.searchsorted(
        ranks[by_rank], np.arange(int(ranks.max()) + 2)
    )
    for k in range(rank_starts.size - 1):
        lo, hi = rank_starts[k], rank_starts[k + 1]
        rows = row_by_rank[lo:hi]
        segs = seg_by_rank[lo:hi]
        free = row_used[rows]
        np.logical_or(free, seg_used[segs], out=free)
        np.logical_not(free, out=free)
        chosen = free.argmax(axis=1)
        row_used[rows, chosen] = True
        seg_used[segs, chosen] = True
        colors[by_rank[lo:hi]] = chosen
    return colors


def greedy_matching_coloring(graph: WindowGraph) -> np.ndarray:
    """The paper's Listing 1: round-based greedy maximal matching.

    Round ``clr`` scans left vertices in index order; each vertex colors its
    first remaining edge whose column segment is not yet claimed this round,
    then stops (the ``break`` in Listing 1).  Rounds repeat until every edge
    is colored.  Single-window wrapper over :func:`matching_coloring_flat`.
    """
    return matching_coloring_flat(
        np.asarray(graph.local_rows, dtype=np.int64),
        np.asarray(graph.colsegs, dtype=np.int64),
        np.zeros(graph.edge_count, dtype=np.int64),
        graph.length,
        1,
    )


def first_fit_coloring(graph: WindowGraph) -> np.ndarray:
    """Per-edge first-fit: each edge takes the smallest color free at both
    endpoints, processed in row-major (canonical COO) order.

    Color count is bounded by deg(row) + deg(colseg) - 1 <= 2*Delta - 1 and
    is typically within a few percent of Delta.  Single-window wrapper over
    :func:`first_fit_coloring_flat`; zero-edge graphs return the documented
    ``-1``-filled (here: empty) array like every other algorithm.
    """
    return first_fit_coloring_flat(
        np.asarray(graph.local_rows, dtype=np.int64),
        np.asarray(graph.colsegs, dtype=np.int64),
        np.zeros(graph.edge_count, dtype=np.int64),
        graph.length,
        1,
        np.array([0, graph.edge_count], dtype=np.int64),
    )


def euler_coloring_flat(
    local_rows: np.ndarray,
    colsegs: np.ndarray,
    window_ids: np.ndarray,
    length: int,
    n_windows: int,
) -> np.ndarray:
    """Euler/König optimal coloring over the flat edge arrays of many windows.

    König's theorem guarantees the chromatic index of a bipartite multigraph
    equals its maximum degree Delta.  We realize it constructively, for
    every window at once:

    1. Pad each window's graph with dummy edges until every vertex has
       degree exactly its window's Delta (always possible for a bipartite
       multigraph with equal side sizes).
    2. Peel off perfect matchings with Hopcroft-Karp, one per color, from
       the disjoint union of all still-active windows — a d-regular
       bipartite multigraph always contains one (Hall), and removing it
       leaves a (d-1)-regular multigraph.  Window ``w`` owns the shifted
       vertex ids ``[w * l, (w + 1) * l)``, so one
       :func:`~repro.graph.matching.hopcroft_karp_flat` pass peels color
       ``c`` for every window whose Delta exceeds ``c`` simultaneously.
    3. Report only the colors of real edges.

    This is the ablation counterpart to the paper's greedy scheduler: it
    attains the Eq. (1) lower bound at higher preprocessing cost.

    Windows are independent components of the union graph, so the joint
    matching equals the per-window ones, and the result reproduces the
    frozen per-edge-list seed
    (:func:`repro.graph._reference.reference_euler_coloring`)
    *edge-for-edge* on every window: the padded edge ids are laid out
    [window reals in storage order, then window dummies in pairing order]
    exactly like the seed's, adjacency is scanned in ascending edge-id
    order, and matched-edge removal takes the highest-id survivor of each
    pair (the seed's ``edge_for_pair[pair].pop()``).
    """
    edge_count = int(local_rows.size)
    edge_colors = np.full(edge_count, -1, dtype=np.int64)
    if edge_count == 0:
        return edge_colors

    n_slots = n_windows * length
    left_key = window_ids * length + local_rows
    right_key = window_ids * length + colsegs
    left_deg = np.bincount(left_key, minlength=n_slots)
    right_deg = np.bincount(right_key, minlength=n_slots)
    delta_w = np.maximum(
        left_deg.reshape(n_windows, length).max(axis=1),
        right_deg.reshape(n_windows, length).max(axis=1),
    ).astype(np.int64)

    # Relabel windows in descending-Delta order before building the padded
    # layout.  Windows are independent components, so relabeling permutes
    # per-window subproblems without changing any of their traversals or
    # results — but it makes every color's still-active windows
    # (``Delta > color``) a *prefix* of the slot space: per-color matching,
    # distance, and scratch structures then size to the live prefix
    # instead of the full slot count, and active-slot gathers become
    # slices.
    worder = np.argsort(-delta_w, kind="stable")
    delta_sorted = delta_w[worder]
    wrank = np.empty(n_windows, dtype=np.int64)
    wrank[worder] = np.arange(n_windows, dtype=np.int64)
    left_deg = left_deg.reshape(n_windows, length)[worder].ravel()
    right_deg = right_deg.reshape(n_windows, length)[worder].ravel()
    new_windows = wrank[window_ids]

    # Regularization, vectorized across windows: the seed's two-pointer
    # deficit walk pairs the k-th unit of left deficit (in ascending vertex
    # order) with the k-th unit of right deficit.  Expanding each side's
    # deficits with ``np.repeat`` produces the same pairing per window
    # because both sides' deficit totals agree within every window, so the
    # running sums line up at each window boundary.
    delta_slot = np.repeat(delta_sorted, length)
    slot_range = np.arange(n_slots, dtype=np.int64)
    dummy_lefts = np.repeat(slot_range, delta_slot - left_deg)
    dummy_rights = np.repeat(slot_range, delta_slot - right_deg)
    if dummy_lefts.size != dummy_rights.size or not np.array_equal(
        dummy_lefts // length, dummy_rights // length
    ):
        raise ColoringError("regularization failed; unbalanced bipartite sides")

    # Every padded-edge position and shifted pair key is bounded by
    # ``n_slots * length``; when that fits 32 bits (any realistic problem
    # size) the per-color compactions, gathers, and searchsorted passes run
    # on half-width elements — they are memory-bound, so the narrowing is
    # a near-2x cut on their cost.
    keydt = np.int32 if n_slots * length <= np.iinfo(np.int32).max else np.int64

    # Padded edge layout: reals first, dummies second, then a stable sort
    # by window interleaves them into the seed's per-window id order
    # [reals..., dummies...] while keeping storage order inside each part.
    # Narrow sort keys let NumPy's stable sort take its radix path.
    pad_windows = np.concatenate([new_windows, dummy_lefts // length])
    if n_windows <= np.iinfo(np.int16).max:
        pad_windows = pad_windows.astype(np.int16)
    order = np.argsort(pad_windows, kind="stable")
    lefts = np.concatenate([new_windows * length + local_rows, dummy_lefts])[
        order
    ].astype(keydt)
    rights = np.concatenate([colsegs, dummy_rights % length])[order].astype(
        keydt
    )
    real_ids = np.concatenate(
        [
            np.arange(edge_count, dtype=np.int64),
            np.full(dummy_lefts.size, -1, dtype=np.int64),
        ]
    )[order].astype(keydt)
    right_global = (lefts // length) * length + rights

    # Both traversal orders are fixed once up front; compacting a sorted
    # array by a boolean mask preserves its order, so the per-color passes
    # never re-sort.  ``by_left`` yields CSR adjacency in ascending edge-id
    # order per left vertex (the order the seed's append loop produced,
    # which Hopcroft-Karp's traversal is sensitive to); ``by_key`` puts
    # equal (left, right) pairs in ascending edge-id order, so the
    # rightmost survivor of a matched key is the seed's popped edge.
    by_left = np.argsort(lefts, kind="stable").astype(keydt)
    pair_keys = lefts * length + rights
    by_key = np.argsort(pair_keys, kind="stable").astype(keydt)
    keys_sorted = pair_keys[by_key]

    # Duplicate (left, right) copies never influence the matching search:
    # in the reference DFS a repeated neighbour either already returned or
    # descended at its first occurrence, or is skipped both times (``dist``
    # only ever falls to the -1 sentinel), and the greedy scan stops at the
    # first free right, which dedup keeps.  Removal always deletes the
    # *highest*-id copy of a matched pair, so the lowest-id copy (``rep0``)
    # stays alive exactly while the pair's multiplicity is >= 1 — handing
    # Hopcroft-Karp one entry per surviving distinct pair changes no
    # traversal outcome.  Dummy edges are massively duplicated, so the
    # deduped CSR is a fraction of the padded edge count.
    rep0 = np.zeros(lefts.size, dtype=bool)
    first_in_key = np.empty(lefts.size, dtype=bool)
    first_in_key[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=first_in_key[1:])
    rep0[by_key[first_in_key]] = True

    # Row-lockstep layout for the matching's first phase.  Hopcroft-Karp's
    # first phase over an empty matching cannot descend (every matched
    # right's owner is a distance-0 free root), so it degenerates to "each
    # left vertex, in ascending order, takes its first free right in
    # adjacency order".  Windows are independent, so that scan can run one
    # local row of *every* window per vectorized step — the same
    # first-open-edge-per-group trick as :func:`matching_coloring_flat` —
    # and be handed to :func:`hopcroft_karp_flat` as the seed matching.
    # The seeded run is then identical to the unseeded one from its second
    # phase onward, with the first BFS+scan eliminated.
    rows_local = lefts % length
    by_row = np.argsort(
        rows_local.astype(np.int16)
        if length <= np.iinfo(np.int16).max
        else rows_local,
        kind="stable",
    ).astype(keydt)
    row_range = np.arange(length + 1, dtype=rows_local.dtype)

    # Live views of the multigraph, one per traversal order, physically
    # compacted as edges die (edges only ever die, and dropping rows from a
    # sorted array preserves its order, so no per-color re-sort or
    # full-size boolean gather is ever needed):
    #   * CSR / by-left order, deduped — feeds Hopcroft-Karp;
    #   * row-major order, deduped — feeds the greedy seed phase;
    #   * by-key order, every copy — resolves matched pairs to edge ids.
    rep_l = rep0[by_left]
    bl_id = by_left[rep_l]
    bl_left = lefts[bl_id]
    bl_right = right_global[bl_id]
    rep_r = rep0[by_row]
    br_id = by_row[rep_r]
    g_left = lefts[br_id]
    g_right = right_global[br_id]
    g_rows = rows_local[br_id]
    bk_id = by_key
    bk_keys = keys_sorted
    pair_dead = np.zeros(lefts.size, dtype=bool)

    csr_range = np.arange(n_slots + 1, dtype=keydt)
    for color in range(int(delta_sorted[0])):
        # Descending-Delta relabeling makes the active windows a prefix.
        n_act = int(np.searchsorted(-delta_sorted, -color, side="left")) * length
        if color:
            # Drop last color's consumed edges from each view.  A deduped
            # entry dies only when its chosen copy *was* the rep0 copy,
            # i.e. the pair's multiplicity just hit zero.
            died_pairs = chosen[rep0[chosen]]
            if died_pairs.size:
                pair_dead[died_pairs] = True
                keep = ~pair_dead[bl_id]
                bl_id = bl_id[keep]
                bl_left = bl_left[keep]
                bl_right = bl_right[keep]
                keep = ~pair_dead[br_id]
                br_id = br_id[keep]
                g_left = g_left[keep]
                g_right = g_right[keep]
                g_rows = g_rows[keep]
            keep = np.ones(bk_id.size, dtype=bool)
            keep[pos] = False
            bk_id = bk_id[keep]
            bk_keys = bk_keys[keep]

        indptr = np.searchsorted(bl_left, csr_range[: n_act + 1]).astype(keydt)

        # Vectorized first phase: claim one free right per left per row
        # step.  Candidate edges within a row group are window-grouped in
        # ascending edge-id order, so the group-boundary trick picks each
        # left vertex's first open edge in its adjacency-scan order.
        row_bounds = np.searchsorted(g_rows, row_range)
        ml0 = np.full(n_act, -1, dtype=keydt)
        mr0 = np.full(n_act, -1, dtype=keydt)
        matched0 = 0
        for i in range(length):
            lo, hi = row_bounds[i], row_bounds[i + 1]
            if lo == hi:
                continue
            seg_view = g_right[lo:hi]
            open_mask = mr0[seg_view] == -1
            cand_r = seg_view[open_mask]
            if cand_r.size == 0:
                continue
            cand_l = g_left[lo:hi][open_mask]
            first = np.empty(cand_l.size, dtype=bool)
            first[0] = True
            np.not_equal(cand_l[1:], cand_l[:-1], out=first[1:])
            w_l = cand_l[first]
            w_r = cand_r[first]
            ml0[w_l] = w_r
            mr0[w_r] = w_l
            matched0 += w_l.size

        if matched0 == n_act:
            # The greedy seed is already perfect, hence maximum: the seeded
            # run's first BFS would find no augmenting layer and return the
            # seed untouched.
            match_left = ml0
        else:
            match_left, _, _ = hopcroft_karp_flat(
                indptr,
                bl_right,
                n_act,
                n_act,
                seed_left=ml0,
                seed_right=mr0,
                seed_size=matched0,
            )

        # Windows whose Delta exceeds the current color must each hold a
        # perfect matching; exhausted windows have no surviving edges and
        # sit outside the active prefix.
        matched = match_left
        if (matched < 0).any():
            raise ColoringError(
                f"regular multigraph lacked a perfect matching at color {color}"
            )

        # Delete one surviving edge per matched (left, right) pair — the
        # highest-id one.
        matched_keys = np.asarray(
            slot_range[:n_act] * length + matched % length, dtype=keydt
        )
        pos = np.searchsorted(bk_keys, matched_keys, side="right") - 1
        if pos.size and (
            (pos < 0).any() or not np.array_equal(bk_keys[pos], matched_keys)
        ):
            raise ColoringError(
                f"matching produced an edge absent from the multigraph "
                f"at color {color}"
            )
        chosen = bk_id[pos]
        chosen_real = real_ids[chosen]
        edge_colors[chosen_real[chosen_real >= 0]] = color

    if (edge_colors < 0).any():
        raise ColoringError("euler coloring left edges uncolored")
    return edge_colors


def euler_coloring(graph: WindowGraph) -> np.ndarray:
    """Optimal bipartite edge coloring with exactly Delta colors.

    Single-window wrapper over :func:`euler_coloring_flat` (see there for
    the construction); kept as the per-graph entry point the
    :data:`ALGORITHMS` registry and :func:`color_edges` dispatch to.
    """
    return euler_coloring_flat(
        np.asarray(graph.local_rows, dtype=np.int64),
        np.asarray(graph.colsegs, dtype=np.int64),
        np.zeros(graph.edge_count, dtype=np.int64),
        graph.length,
        1,
    )


#: Registry used by the scheduler's ``algorithm=`` parameter.
ALGORITHMS = {
    "matching": greedy_matching_coloring,
    "first_fit": first_fit_coloring,
    "euler": euler_coloring,
}


def color_edges(graph: WindowGraph, algorithm: str = "matching") -> np.ndarray:
    """Dispatch to a registered coloring algorithm by name.

    Enforces the library-wide contract: the result is one int64 color per
    edge and a *complete* coloring — ``-1`` ("uncolored") never escapes.
    """
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise ColoringError(
            f"unknown coloring algorithm {algorithm!r}; "
            f"choose from {sorted(ALGORITHMS)}"
        ) from None
    colors = fn(graph)
    if colors.shape != (graph.edge_count,):
        raise ColoringError(
            f"{algorithm} returned {colors.shape[0] if colors.ndim else 0} "
            f"colors for {graph.edge_count} edges"
        )
    if graph.edge_count and int(colors.min()) < 0:
        raise ColoringError(f"{algorithm} left edges uncolored (-1)")
    return colors
