"""Validation and measurement helpers for edge colorings."""

from __future__ import annotations

import numpy as np

from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph


def max_bipartite_degree(graph: WindowGraph) -> int:
    """Maximum degree over both sides — the Eq. (1) color lower bound."""
    return graph.max_degree()


def color_count(colors: np.ndarray) -> int:
    """Number of distinct time slots used (max color + 1)."""
    if colors.size == 0:
        return 0
    return int(colors.max()) + 1


def validate_coloring(graph: WindowGraph, colors: np.ndarray) -> None:
    """Raise :class:`ColoringError` unless ``colors`` is proper and complete.

    Proper means no two edges sharing a left vertex (row/adder) or right
    vertex (column segment/multiplier) carry the same color — precisely the
    collision-freedom condition of Section 3.3.
    """
    colors = np.asarray(colors)
    if colors.shape != (graph.edge_count,):
        raise ColoringError(
            f"colors has shape {colors.shape}, expected ({graph.edge_count},)"
        )
    if graph.edge_count == 0:
        return
    if (colors < 0).any():
        raise ColoringError("some edges are uncolored (color < 0)")

    row_keys = graph.local_rows * (colors.max() + 1) + colors
    if np.unique(row_keys).size != row_keys.size:
        raise ColoringError("two edges on one row (adder) share a color")
    seg_keys = graph.colsegs * (colors.max() + 1) + colors
    if np.unique(seg_keys).size != seg_keys.size:
        raise ColoringError(
            "two edges on one column segment (multiplier) share a color"
        )
