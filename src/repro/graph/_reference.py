"""Frozen seed implementations of the scheduling hot path.

These are the original pure-Python, per-window implementations of the
paper's Listing 1 greedy matching, the first-fit bitmask variant, the
Euler/König matching-peel coloring, the naive stall-and-serialize
strawman, and the boolean-mask window partition that
:class:`repro.core.scheduler.GustScheduler` shipped with before the
vectorized batch engine replaced them.

They are kept verbatim for two purposes:

* **Regression oracle** — the live kernels must reproduce these per-edge
  colorings exactly (``tests/graph/test_vectorized_equivalence.py`` and
  ``tests/graph/test_coloring_properties.py``).
* **Speedup baseline** — ``benchmarks/bench_scheduling_throughput.py``
  measures the vectorized engine against these functions.

Do not "improve" this module; its value is that it does not change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph
from repro.graph.matching import hopcroft_karp
from repro.sparse.stats import window_count

if TYPE_CHECKING:
    # Annotation-only: a load-time graph -> core import would invert the
    # layer map (R7); `from __future__ import annotations` keeps every
    # use below a string.
    from repro.core.load_balance import BalancedMatrix


def reference_greedy_matching_coloring(graph: WindowGraph) -> np.ndarray:
    """Seed Listing 1: round-based greedy matching over per-row edge lists."""
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors

    remaining = graph.edges_by_row()
    colsegs = graph.colsegs
    active = [i for i, edges in enumerate(remaining) if edges]

    clr = 0
    while active:
        claimed = bytearray(graph.length)
        next_active: list[int] = []
        for i in active:
            edges = remaining[i]
            for k, edge_id in enumerate(edges):
                seg = colsegs[edge_id]
                if not claimed[seg]:
                    claimed[seg] = 1
                    edge_colors[edge_id] = clr
                    del edges[k]
                    break
            if edges:
                next_active.append(i)
        active = next_active
        clr += 1
    return edge_colors


def reference_first_fit_coloring(graph: WindowGraph) -> np.ndarray:
    """Seed first-fit: per-edge Python loop over big-int color bitmasks."""
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors
    row_used = [0] * graph.length
    seg_used = [0] * graph.length
    local_rows = graph.local_rows
    colsegs = graph.colsegs
    for edge_id in range(graph.edge_count):
        i = local_rows[edge_id]
        j = colsegs[edge_id]
        free = ~(row_used[i] | seg_used[j])
        color = (free & -free).bit_length() - 1
        bit = 1 << color
        row_used[i] |= bit
        seg_used[j] |= bit
        edge_colors[edge_id] = color
    return edge_colors


def reference_euler_coloring(graph: WindowGraph) -> np.ndarray:
    """Seed Euler/König coloring: regularize with dummy edges, then peel
    Delta perfect matchings with Hopcroft-Karp, one per color."""
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors

    delta = graph.max_degree()
    length = graph.length
    left_deg = graph.left_degrees().astype(np.int64)
    right_deg = graph.right_degrees().astype(np.int64)

    lefts = list(map(int, graph.local_rows))
    rights = list(map(int, graph.colsegs))
    real_ids = list(range(graph.edge_count))

    left_deficit = [delta - int(d) for d in left_deg]
    right_deficit = [delta - int(d) for d in right_deg]
    u, v = 0, 0
    while u < length and v < length:
        if left_deficit[u] == 0:
            u += 1
            continue
        if right_deficit[v] == 0:
            v += 1
            continue
        lefts.append(u)
        rights.append(v)
        real_ids.append(-1)
        left_deficit[u] -= 1
        right_deficit[v] -= 1
    if any(left_deficit) or any(right_deficit):
        raise ColoringError("regularization failed; unbalanced bipartite sides")

    alive = list(range(len(lefts)))
    for color in range(delta):
        adjacency: list[list[int]] = [[] for _ in range(length)]
        edge_for_pair: dict[tuple[int, int], list[int]] = {}
        for edge in alive:
            pair = (lefts[edge], rights[edge])
            adjacency[pair[0]].append(pair[1])
            edge_for_pair.setdefault(pair, []).append(edge)
        match_left, _, size = hopcroft_karp(adjacency, length, length)
        if size != length:
            raise ColoringError(
                f"regular multigraph lacked a perfect matching at color {color}"
            )
        removed: set[int] = set()
        for u_vertex in range(length):
            pair = (u_vertex, int(match_left[u_vertex]))
            edge = edge_for_pair[pair].pop()
            removed.add(edge)
            if real_ids[edge] >= 0:
                edge_colors[real_ids[edge]] = color
        alive = [edge for edge in alive if edge not in removed]

    if (edge_colors < 0).any():
        raise ColoringError("euler coloring left edges uncolored")
    return edge_colors


def reference_naive_coloring(graph: WindowGraph) -> np.ndarray:
    """Seed naive policy: per-window lockstep stall-and-serialize schedule.

    The cycle at which each edge issues is its color; colliding heads are
    replayed one per cycle in lane order.  Frozen from the pre-vectorized
    :func:`repro.core.naive.naive_coloring`.
    """
    colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return colors

    length = graph.length
    order = np.argsort(graph.colsegs, kind="stable")
    seg_sorted = graph.colsegs[order]
    lane_starts = np.searchsorted(seg_sorted, np.arange(length + 1))

    ptr = lane_starts[:-1].copy()
    ends = lane_starts[1:]
    local_rows = graph.local_rows

    cycle = 0
    remaining = graph.edge_count
    while remaining:
        active = np.nonzero(ptr < ends)[0]
        head_edges = order[ptr[active]]
        head_rows = local_rows[head_edges]

        multiplicity = np.bincount(head_rows, minlength=length)
        free_mask = multiplicity[head_rows] == 1
        free_edges = head_edges[free_mask]
        collided_edges = head_edges[~free_mask]

        if free_edges.size:
            colors[free_edges] = cycle
            cycle += 1
        for edge in collided_edges:
            colors[edge] = cycle
            cycle += 1

        ptr[active] += 1
        remaining -= active.size
    return colors


def reference_naive_stalls(graph: WindowGraph, colors: np.ndarray) -> int:
    """Seed stall count: per-lane Python loop over the naive coloring."""
    if graph.edge_count == 0:
        return 0
    stalls = 0
    for lane in range(graph.length):
        mask = graph.colsegs == lane
        count = int(mask.sum())
        if count == 0:
            continue
        last = int(colors[mask].max())
        stalls += (last + 1) - count
    return stalls


REFERENCE_ALGORITHMS = {
    "matching": reference_greedy_matching_coloring,
    "first_fit": reference_first_fit_coloring,
    "euler": reference_euler_coloring,
}


def reference_window_graphs(
    balanced: BalancedMatrix, length: int
) -> list[WindowGraph]:
    """Seed window partition: one boolean mask scan of the COO arrays per
    window (the O(windows x nnz) loop the vectorized engine replaces)."""
    matrix = balanced.matrix
    m, _ = matrix.shape
    window_of_row = matrix.rows // length if matrix.nnz else np.zeros(0, np.int64)
    graphs: list[WindowGraph] = []
    for w in range(window_count(m, length)):
        mask = window_of_row == w
        graphs.append(
            WindowGraph(
                length=length,
                local_rows=(matrix.rows[mask] % length).astype(np.int64),
                colsegs=balanced.colseg_of(w, matrix.cols[mask], length),
                cols=matrix.cols[mask].astype(np.int64),
                values=matrix.data[mask].astype(np.float64),
            )
        )
    return graphs


def reference_color_counts(
    balanced: BalancedMatrix, length: int, algorithm: str
) -> list[int]:
    """Seed scheduling pass: per-window graphs colored one at a time."""
    fn = REFERENCE_ALGORITHMS[algorithm]
    counts: list[int] = []
    for graph in reference_window_graphs(balanced, length):
        colors = fn(graph)
        counts.append(int(colors.max()) + 1 if colors.size else 0)
    return counts


def reference_window_colorings(
    balanced: BalancedMatrix, length: int, algorithm: str
) -> list[np.ndarray]:
    """Per-window edge color arrays from the seed implementations."""
    fn = REFERENCE_ALGORITHMS[algorithm]
    return [fn(graph) for graph in reference_window_graphs(balanced, length)]
