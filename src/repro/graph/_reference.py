"""Frozen seed implementations of the scheduling hot path.

These are the original pure-Python, per-window implementations of the
paper's Listing 1 greedy matching, the first-fit bitmask variant, and the
boolean-mask window partition that :class:`repro.core.scheduler.GustScheduler`
shipped with before the vectorized batch engine replaced them.

They are kept verbatim for two purposes:

* **Regression oracle** — the vectorized kernels must reproduce these
  per-edge colorings exactly (``tests/graph/test_vectorized_equivalence.py``).
* **Speedup baseline** — ``benchmarks/bench_scheduling_throughput.py``
  measures the vectorized engine against these functions.

Do not "improve" this module; its value is that it does not change.
"""

from __future__ import annotations

import numpy as np

from repro.core.load_balance import BalancedMatrix
from repro.graph.bipartite import WindowGraph
from repro.sparse.stats import window_count


def reference_greedy_matching_coloring(graph: WindowGraph) -> np.ndarray:
    """Seed Listing 1: round-based greedy matching over per-row edge lists."""
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors

    remaining = graph.edges_by_row()
    colsegs = graph.colsegs
    active = [i for i, edges in enumerate(remaining) if edges]

    clr = 0
    while active:
        claimed = bytearray(graph.length)
        next_active: list[int] = []
        for i in active:
            edges = remaining[i]
            for k, edge_id in enumerate(edges):
                seg = colsegs[edge_id]
                if not claimed[seg]:
                    claimed[seg] = 1
                    edge_colors[edge_id] = clr
                    del edges[k]
                    break
            if edges:
                next_active.append(i)
        active = next_active
        clr += 1
    return edge_colors


def reference_first_fit_coloring(graph: WindowGraph) -> np.ndarray:
    """Seed first-fit: per-edge Python loop over big-int color bitmasks."""
    edge_colors = np.full(graph.edge_count, -1, dtype=np.int64)
    if graph.edge_count == 0:
        return edge_colors
    row_used = [0] * graph.length
    seg_used = [0] * graph.length
    local_rows = graph.local_rows
    colsegs = graph.colsegs
    for edge_id in range(graph.edge_count):
        i = local_rows[edge_id]
        j = colsegs[edge_id]
        free = ~(row_used[i] | seg_used[j])
        color = (free & -free).bit_length() - 1
        bit = 1 << color
        row_used[i] |= bit
        seg_used[j] |= bit
        edge_colors[edge_id] = color
    return edge_colors


REFERENCE_ALGORITHMS = {
    "matching": reference_greedy_matching_coloring,
    "first_fit": reference_first_fit_coloring,
}


def reference_window_graphs(
    balanced: BalancedMatrix, length: int
) -> list[WindowGraph]:
    """Seed window partition: one boolean mask scan of the COO arrays per
    window (the O(windows x nnz) loop the vectorized engine replaces)."""
    matrix = balanced.matrix
    m, _ = matrix.shape
    window_of_row = matrix.rows // length if matrix.nnz else np.zeros(0, np.int64)
    graphs: list[WindowGraph] = []
    for w in range(window_count(m, length)):
        mask = window_of_row == w
        graphs.append(
            WindowGraph(
                length=length,
                local_rows=(matrix.rows[mask] % length).astype(np.int64),
                colsegs=balanced.colseg_of(w, matrix.cols[mask], length),
                cols=matrix.cols[mask].astype(np.int64),
                values=matrix.data[mask].astype(np.float64),
            )
        )
    return graphs


def reference_color_counts(
    balanced: BalancedMatrix, length: int, algorithm: str
) -> list[int]:
    """Seed scheduling pass: per-window graphs colored one at a time."""
    fn = REFERENCE_ALGORITHMS[algorithm]
    counts: list[int] = []
    for graph in reference_window_graphs(balanced, length):
        colors = fn(graph)
        counts.append(int(colors.max()) + 1 if colors.size else 0)
    return counts


def reference_window_colorings(
    balanced: BalancedMatrix, length: int, algorithm: str
) -> list[np.ndarray]:
    """Per-window edge color arrays from the seed implementations."""
    fn = REFERENCE_ALGORITHMS[algorithm]
    return [fn(graph) for graph in reference_window_graphs(balanced, length)]
