"""Bipartite multigraph view of one GUST row window.

The mapping follows Section 3.3 of the paper exactly: for a window of ``l``
rows, the ``i``-th left vertex is the window-local row (its adder), the
``j``-th right vertex is column segment ``col mod l`` (its multiplier), and
the matrix element ``M[i][col]`` is an edge between them.  Multiple columns
fold onto the same right vertex when the matrix is wider than ``l``, so
parallel edges are expected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError
from repro.sparse.coo import CooMatrix


@dataclass(frozen=True)
class WindowGraph:
    """Edges of one row window, in window-local bipartite coordinates.

    Attributes:
        length: the accelerator length ``l`` (vertex count on each side).
        local_rows: per-edge left vertex (row index within the window).
        colsegs: per-edge right vertex (original column mod ``l``).
        cols: per-edge original column index (selects the vector element).
        values: per-edge matrix value.
    """

    length: int
    local_rows: np.ndarray
    colsegs: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    @classmethod
    def from_window(cls, window: CooMatrix, length: int) -> "WindowGraph":
        """Build from a window matrix whose row indices are window-local."""
        if length <= 0:
            raise HardwareConfigError(f"length must be positive, got {length}")
        if window.shape[0] > length:
            raise HardwareConfigError(
                f"window has {window.shape[0]} rows, exceeding length {length}"
            )
        return cls(
            length=length,
            local_rows=window.rows.astype(np.int64),
            colsegs=(window.cols % length).astype(np.int64),
            cols=window.cols.astype(np.int64),
            values=window.data.astype(np.float64),
        )

    @property
    def edge_count(self) -> int:
        return int(self.local_rows.size)

    def left_degrees(self) -> np.ndarray:
        """Edges per left vertex (length ``length``)."""
        return np.bincount(self.local_rows, minlength=self.length)

    def right_degrees(self) -> np.ndarray:
        """Edges per right vertex (length ``length``)."""
        return np.bincount(self.colsegs, minlength=self.length)

    def max_degree(self) -> int:
        """Max bipartite degree — the paper's Eq. (1) lower bound on colors."""
        if self.edge_count == 0:
            return 0
        return int(
            max(self.left_degrees().max(), self.right_degrees().max())
        )

    def edges_by_row(self) -> list[list[int]]:
        """Edge ids grouped by left vertex, in column order within each row.

        This is the ``E[i][k]`` structure consumed by the paper's Listing 1.
        Canonical COO ordering already sorts by (row, col), so a stable sort
        by row preserves column order inside each group.
        """
        groups: list[list[int]] = [[] for _ in range(self.length)]
        for edge_id, row in enumerate(self.local_rows):
            groups[int(row)].append(edge_id)
        return groups
