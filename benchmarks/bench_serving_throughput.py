"""Serving-throughput benchmark: batched SpMV serving vs. per-request replay.

The serving layer's claim (`repro.serve`) is that coalescing concurrent
SpMV requests for one matrix into a stacked right-hand side — an SpMM
tile over the tenant's prepared plan — beats answering them one at a
time.  This benchmark gates that claim on the serving regime defined by
the constants in :mod:`repro.serve.bench` (a 2048-dim, ~32k-nnz tenant
at ``l = 64``):

* **batched serving throughput >= 1.5x** the sequential single-request
  compiled replay, at batch size >= 8 (the baseline itself got ~3x faster
  when the backend registry landed — see the gate-history note in
  :mod:`repro.serve.bench` — so the relative bar moved while every
  absolute number improved);
* every batched result **bit-identical** to the per-request
  ``CompiledSpmv`` replay (the batch kernel accumulates each destination
  row sequentially in plan slot order, whatever its backend);
* an end-to-end threaded run (16 closed-loop clients against a live
  ``SpmvServer``) answers every request bit-exactly and actually
  coalesces batches (non-trivial batch-size histogram).

The measurement core lives in :mod:`repro.serve.bench` so the ``repro
bench-serve`` CLI command runs the identical code.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --json out.json

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -s
"""

from __future__ import annotations

import sys

from repro.serve import bench


def test_serving_throughput():
    """Pytest entry point enforcing the acceptance thresholds."""
    results = bench.run()
    failures = bench.failures(results)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    json_path = None
    argv = sys.argv[1:]
    if argv and argv[0] == "--json":
        json_path = argv[1]
    results = bench.run(json_path)
    failures = bench.failures(results)
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        sys.exit(1)
    print(
        f"PASS: batched serving >= {bench.MIN_BATCH_SPEEDUP:.1f}x at batch "
        f">= {bench.GATE_MIN_BATCH}, bit-identical, threaded run clean"
    )
