"""Section 3.4 — the statistical bound holds against measurement."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import bound_validation


def test_bound_validation(benchmark):
    result = run_experiment(benchmark, bound_validation.run, dim=2048)
    assert result.measured_claims["E[C] within Eq.9 bound"] is True
