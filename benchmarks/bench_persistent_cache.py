"""Persistent-cache benchmark: warm-start-from-disk vs. cold scheduling.

The paper's deployment economics (Table 4 vs. Serpens) assume a schedule
is computed once and amortized across many processes and restarts.  This
benchmark measures that story end to end on a 100k-nonzero, ``l = 64``
matrix:

* **cold** — full preprocessing (load balancing + edge coloring) plus
  execution-plan compilation in a pipeline with no cache attached: the
  work a fresh worker performs before it can serve its first replay;
* **warm** — a fresh :class:`~repro.core.pipeline.GustPipeline` per
  measurement (empty in-memory cache, modeling a restarted worker) backed
  by a primed :class:`~repro.core.store.DiskScheduleStore`: the schedule
  *and its replay-ready plan* arrive via one checksum-verified artifact
  read — no coloring, no sort.

Acceptance gates (asserted when run as a script or under pytest):

* warm-start-from-disk >= 10x faster than cold scheduling;
* a genuinely separate *process* observes a disk hit for the pattern this
  process scheduled (run through a ``subprocess`` against the same store
  directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_persistent_cache.py
    PYTHONPATH=src python benchmarks/bench_persistent_cache.py --json out.json

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistent_cache.py -s
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import DiskScheduleStore, GustPipeline, uniform_random

#: Headline configuration: 100k nonzeros at ~3 nnz/row, length 64 —
#: plentiful windows, scheduling-dominated preprocessing (the acceptance
#: criterion's 100k-nnz, l=64 regime).
DIM = 32768
TARGET_NNZ = 100_000
LENGTH = 64
SEED = 3

MIN_WARM_SPEEDUP = 10.0

#: Script run in the second process: warm-start the same pattern from the
#: shared store and report whether the disk tier served it.
_SECOND_PROCESS = """
import json, sys
from repro import DiskScheduleStore, GustPipeline, uniform_random

store_dir, dim, nnz, length, seed = sys.argv[1:6]
matrix = uniform_random(
    int(dim), int(dim), int(nnz) / (int(dim) * int(dim)), seed=int(seed)
)
pipeline = GustPipeline(int(length), store=DiskScheduleStore(store_dir))
schedule, balanced, report = pipeline.preprocess(matrix)
print(json.dumps({
    "disk_hit": report.notes.get("disk_hit", 0.0),
    "cache_hit": report.notes.get("cache_hit", 0.0),
    "windows": schedule.window_count,
}))
"""


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure(store_dir: str) -> dict:
    matrix = uniform_random(DIM, DIM, TARGET_NNZ / (DIM * DIM), seed=SEED)

    cold_pipeline = GustPipeline(LENGTH)

    def cold_to_replay_ready():
        # Both sides of the comparison end in the same state: a worker
        # holding a compiled, replay-ready execution plan.
        schedule, balanced, _ = cold_pipeline.preprocess(matrix)
        cold_pipeline.plan_for(schedule, balanced)

    cold_s = _best_of(cold_to_replay_ready, 5)

    # Prime the store once (the "first worker" pays the coloring).
    primer = GustPipeline(LENGTH, store=DiskScheduleStore(store_dir))
    _, _, primer_report = primer.preprocess(matrix)
    assert primer_report.notes["cache_hit"] == 0.0, "store must start cold"

    def warm_start():
        worker = GustPipeline(LENGTH, store=DiskScheduleStore(store_dir))
        _, _, report = worker.preprocess(matrix)
        assert report.notes["disk_hit"] == 1.0, "expected a disk hit"

    warm_s = _best_of(warm_start, 15)

    artifact_bytes = DiskScheduleStore(store_dir).total_bytes()
    return {
        "matrix": {"dim": DIM, "nnz": matrix.nnz, "length": LENGTH},
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "artifact_bytes": artifact_bytes,
    }


def second_process_observes_disk_hit(store_dir: str) -> dict:
    """Launch an honest second process against the primed store."""
    src_root = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable, "-c", _SECOND_PROCESS,
            store_dir, str(DIM), str(TARGET_NNZ), str(LENGTH), str(SEED),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run(json_path: str | None = None) -> dict:
    with tempfile.TemporaryDirectory(prefix="gust-bench-store-") as store_dir:
        results = measure(store_dir)
        second = second_process_observes_disk_hit(store_dir)
    results["second_process"] = second
    print(
        f"matrix: {DIM}x{DIM}, nnz={results['matrix']['nnz']}, "
        f"length={LENGTH}"
    )
    print(
        f"cold scheduling     {results['cold_s'] * 1e3:>9.1f} ms\n"
        f"warm-start (disk)   {results['warm_s'] * 1e3:>9.1f} ms\n"
        f"speedup             {results['speedup']:>9.1f} x   "
        f"(artifact {results['artifact_bytes'] / 1e6:.1f} MB)"
    )
    print(
        f"second process: disk_hit={second['disk_hit']:.0f} "
        f"cache_hit={second['cache_hit']:.0f} windows={second['windows']}"
    )
    if json_path:
        Path(json_path).write_text(json.dumps(results, indent=2))
        print(f"wrote {json_path}")
    return results


def test_persistent_cache_warm_start():
    """Pytest entry point enforcing the acceptance thresholds."""
    results = run()
    assert results["speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm-start-from-disk: {results['speedup']:.1f}x < "
        f"{MIN_WARM_SPEEDUP}x"
    )
    assert results["second_process"]["disk_hit"] == 1.0, (
        "second process did not observe a disk hit"
    )


if __name__ == "__main__":
    json_path = None
    argv = sys.argv[1:]
    if argv and argv[0] == "--json":
        json_path = argv[1]
    results = run(json_path)
    failures = []
    if results["speedup"] < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm-start speedup {results['speedup']:.1f}x < {MIN_WARM_SPEEDUP}x"
        )
    if results["second_process"]["disk_hit"] != 1.0:
        failures.append("second process did not observe a disk hit")
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        sys.exit(1)
    print(
        f"PASS: warm-start >= {MIN_WARM_SPEEDUP:.0f}x, "
        "second process warm-started from disk"
    )
