"""Figure 9 — average bandwidth utilization of GUST vs 1D."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import fig9_bandwidth


def test_fig9_bandwidth(benchmark):
    result = run_experiment(benchmark, fig9_bandwidth.run, scale=16.0)
    assert result.measured_claims["GUST BW far above 1D"] is True
    # Requirement formulas must reproduce the paper's maxima.
    assert abs(result.measured_claims["maximum BW GUST-256 (GB/s)"] - 221.2) < 1
