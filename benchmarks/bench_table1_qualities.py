"""Table 1 — design qualities and geomean utilization."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import table1_qualities


def test_table1_qualities(benchmark):
    result = run_experiment(
        benchmark, table1_qualities.run, scale=32.0, length=256
    )
    measured = result.measured_claims
    # Paper ordering: GUST >> Fafnir > FTPU > 1D ~= AT.
    assert (
        measured["gmean util% GUST-EC/LB"]
        > measured["gmean util% FAFNIR"]
        > measured["gmean util% FTPU"]
    )
