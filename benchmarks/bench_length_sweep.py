"""Extension sweep — utilization vs length against the Eq. 11 prediction."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import length_sweep


def test_length_sweep(benchmark):
    result = run_experiment(benchmark, length_sweep.run)
    measured = result.measured_claims
    assert measured["utilization falls with length (Eq. 11)"] is True
    assert measured["measured tracks Eq. 11"] is True
