"""Extension — SpMM throughput from schedule reuse (paper Section 7)."""

import numpy as np

from repro import GustSpmm, uniform_random

MATRIX = uniform_random(1024, 1024, 0.01, seed=4)
DENSE = np.random.default_rng(4).normal(size=(1024, 16))


def test_spmm_schedule_reuse(benchmark):
    engine = GustSpmm(128)
    schedule, balanced = engine.preprocess(MATRIX)

    result = benchmark(engine.multiply, schedule, balanced, DENSE)

    expected = np.column_stack(
        [MATRIX.matvec(DENSE[:, j]) for j in range(DENSE.shape[1])]
    )
    np.testing.assert_allclose(result.y, expected)
    # Replaying one schedule for k columns must not rescale the per-column
    # cycle cost.
    per_column = result.cycle_report.cycles / DENSE.shape[1]
    assert per_column <= schedule.total_colors + 2
