"""Figure 8 — speedup and energy gain over the 1D systolic baseline."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import fig8_speedup


def test_fig8_speedup(benchmark):
    result = run_experiment(
        benchmark,
        fig8_speedup.run,
        scale=16.0,
        dim=2048,
        densities=(1e-3, 3e-3, 1e-2, 3e-2),
    )
    claims = result.measured_claims
    # Projected to paper dimensions, the headline factors must land in the
    # paper's order of magnitude (paper: 411x / 137x / 88x).
    assert 150 < claims["avg speedup GUST-256 EC/LB"] < 1200
    assert 50 < claims["avg energy gain GUST-256 EC/LB"] < 600
    assert claims["avg speedup EC/LB over Naive"] > 20
