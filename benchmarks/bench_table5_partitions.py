"""Table 5 — per-partition resource consumption and crossbar scaling."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import table5_partitions


def test_table5_partitions(benchmark):
    result = run_experiment(benchmark, table5_partitions.run)
    measured = result.measured_claims
    assert measured["crossbar LUT @256"] == 756_000
    assert measured["crossbar W @256"] == 16.4
    # Crossbar growth from 128 to 256 exceeds quadratic (the paper's
    # synthesis shows super-quadratic top-end growth).
    assert measured["crossbar growth 128->256 at least quadratic"] is True
    assert measured["crossbar growth factor 128->256"] >= 4.0
