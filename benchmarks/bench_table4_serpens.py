"""Table 4 — GUST vs Serpens, preprocessing and SpMV (plus Table 3)."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import table3_datasets, table4_serpens


def test_table3_datasets(benchmark):
    result = run_experiment(benchmark, table3_datasets.run, scale=64.0)
    assert len(result.rows) == 9


def test_table4_serpens(benchmark):
    result = run_experiment(benchmark, table4_serpens.run, scale=64.0)
    measured = result.measured_claims
    # Paper: GUST faster on 7 of 9 (we allow +-1 at surrogate fidelity),
    # and the mean cycle advantage must match the paper's ~3x.
    assert measured["GUST faster (of 9)"] >= 6
    assert 2.0 < measured["mean Serpens/GUST cycle ratio"] < 5.0
    assert measured["GUST lower energy (of 9)"] >= 2
