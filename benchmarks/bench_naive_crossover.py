"""Section 3.3 claim — naive GUST crosses below 1D near density 0.008."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import naive_crossover


def test_naive_crossover(benchmark):
    result = run_experiment(benchmark, naive_crossover.run, dim=2048)
    crossover = result.measured_claims["crossover density"]
    # Paper: 0.008 on 16384^2 uniform matrices; our lockstep model lands in
    # the same regime (0.004 - 0.012).
    assert isinstance(crossover, float)
    assert 0.004 <= crossover <= 0.012
