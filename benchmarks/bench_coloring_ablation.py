"""Extension ablation — greedy vs first-fit vs optimal edge coloring."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import coloring_ablation


def test_coloring_ablation(benchmark):
    result = run_experiment(benchmark, coloring_ablation.run, scale=32.0)
    measured = result.measured_claims
    assert measured["euler matches lower bound exactly"] is True
    # Greedy (Listing 1) should sit within ~25% of the optimum.
    assert measured["matching colors / optimum"] < 1.25
