"""Scheduling-throughput benchmark: vectorized engine vs. the seed path.

The paper amortizes preprocessing over SpMV replays (Section 3.3), so the
scheduling front end's wall clock decides how quickly that amortization
pays off.  This benchmark pits the vectorized batch engine
(:class:`repro.core.scheduler.GustScheduler`) against the frozen seed
implementation (:mod:`repro.graph._reference`: boolean-mask window
partition + pure-Python colorings + per-window scatter) on a 300k-nonzero,
``l = 64`` synthetic matrix, and measures the pattern-keyed schedule
cache's value-refresh path against cold scheduling.

Acceptance gates (asserted when run as a script or under pytest):

* ``GustScheduler.schedule`` >= 5x faster than the seed path for all three
  flat-kernel algorithms — "matching", "first_fit", and "euler" (the
  optimal-coloring ablation, whose seed path runs one Python
  Hopcroft-Karp per window per color);
* cached re-scheduling of an unchanged pattern (new values) >= 50x faster
  than cold scheduling.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scheduling_throughput.py

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_scheduling_throughput.py -s
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import GustPipeline, GustScheduler, uniform_random
from repro.core.load_balance import identity_balance
from repro.core.schedule import EMPTY
from repro.graph._reference import (
    REFERENCE_ALGORITHMS,
    reference_window_graphs,
)
from repro.sparse.coo import CooMatrix

#: Headline configuration: 300k nonzeros (~4.6 nonzeros/row, circuit- and
#: mesh-like sparsity), length 64 — the regime where preprocessing cost
#: dominates, windows are plentiful, and the euler ablation peels several
#: matchings per window.
DIM = 65536
TARGET_NNZ = 300_000
LENGTH = 64
SEED = 3

MIN_SCHEDULING_SPEEDUP = 5.0
MIN_CACHE_SPEEDUP = 50.0


def seed_schedule(matrix: CooMatrix, length: int, algorithm: str) -> tuple:
    """The full seed scheduling path, reproduced from the pre-vectorization
    implementation: mask partition, per-window Python coloring, per-window
    scatter into M_sch / Row_sch / Col_sch."""
    balanced = identity_balance(matrix, length)
    graphs = reference_window_graphs(balanced, length)
    color_fn = REFERENCE_ALGORITHMS[algorithm]
    colorings = [color_fn(graph) for graph in graphs]
    counts = [int(c.max()) + 1 if c.size else 0 for c in colorings]
    total = int(sum(counts))
    m_sch = np.zeros((total, length), dtype=np.float64)
    row_sch = np.full((total, length), EMPTY, dtype=np.int64)
    col_sch = np.full((total, length), EMPTY, dtype=np.int64)
    offset = 0
    for graph, colors, span in zip(graphs, colorings, counts):
        if graph.edge_count:
            steps = offset + colors
            m_sch[steps, graph.colsegs] = graph.values
            row_sch[steps, graph.colsegs] = graph.local_rows
            col_sch[steps, graph.colsegs] = graph.cols
        offset += span
    return tuple(counts), m_sch, row_sch, col_sch


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_scheduling(matrix: CooMatrix) -> dict[str, dict[str, float]]:
    """Seed vs. vectorized wall clock for every flat-kernel algorithm."""
    results: dict[str, dict[str, float]] = {}
    for algorithm in ("matching", "first_fit", "euler"):
        scheduler = GustScheduler(LENGTH, algorithm=algorithm)
        # Correctness first: identical per-window color counts.
        seed_counts = seed_schedule(matrix, LENGTH, algorithm)[0]
        vector_counts = scheduler.schedule(matrix).window_colors
        assert vector_counts == seed_counts, (
            f"{algorithm}: vectorized color counts diverge from seed"
        )
        seed_s = _best_of(lambda: seed_schedule(matrix, LENGTH, algorithm), 3)
        vector_s = _best_of(lambda: scheduler.schedule(matrix), 7)
        results[algorithm] = {
            "seed_s": seed_s,
            "vectorized_s": vector_s,
            "speedup": seed_s / vector_s,
        }
    return results


def measure_cache(matrix: CooMatrix) -> dict[str, float]:
    """Cold preprocessing vs. cached same-pattern value refresh."""
    cold_pipeline = GustPipeline(LENGTH)
    cold_s = _best_of(lambda: cold_pipeline.preprocess(matrix), 3)
    pipeline = GustPipeline(LENGTH, cache=True)
    pipeline.preprocess(matrix)  # prime
    rng = np.random.default_rng(SEED + 1)
    refresh_s = float("inf")
    for _ in range(7):
        updated = matrix.with_data(rng.uniform(0.5, 1.5, size=matrix.nnz))
        started = time.perf_counter()
        _, _, report = pipeline.preprocess(updated)
        refresh_s = min(refresh_s, time.perf_counter() - started)
        assert report.notes["cache_refresh"] == 1.0, "expected a cache refresh"
    return {
        "cold_s": cold_s,
        "refresh_s": refresh_s,
        "speedup": cold_s / refresh_s,
    }


def run() -> tuple[dict, dict]:
    matrix = uniform_random(DIM, DIM, TARGET_NNZ / (DIM * DIM), seed=SEED)
    print(
        f"matrix: {DIM}x{DIM}, nnz={matrix.nnz}, length={LENGTH} "
        f"({matrix.nnz / DIM:.2f} nnz/row)"
    )
    scheduling = measure_scheduling(matrix)
    print(f"{'algorithm':<12} {'seed':>10} {'vectorized':>12} {'speedup':>9}")
    for algorithm, r in scheduling.items():
        print(
            f"{algorithm:<12} {r['seed_s'] * 1e3:>8.1f}ms "
            f"{r['vectorized_s'] * 1e3:>10.1f}ms {r['speedup']:>8.1f}x"
        )
    cache = measure_cache(matrix)
    print(
        f"{'cache':<12} {cache['cold_s'] * 1e3:>8.1f}ms "
        f"{cache['refresh_s'] * 1e3:>10.2f}ms {cache['speedup']:>8.1f}x  "
        "(cold vs value-refresh)"
    )
    return scheduling, cache


def test_scheduling_throughput():
    """Pytest entry point enforcing the acceptance thresholds."""
    scheduling, cache = run()
    for algorithm, r in scheduling.items():
        assert r["speedup"] >= MIN_SCHEDULING_SPEEDUP, (
            f"{algorithm}: {r['speedup']:.1f}x < {MIN_SCHEDULING_SPEEDUP}x"
        )
    assert cache["speedup"] >= MIN_CACHE_SPEEDUP, (
        f"cache refresh: {cache['speedup']:.1f}x < {MIN_CACHE_SPEEDUP}x"
    )


if __name__ == "__main__":
    try:
        test_scheduling_throughput()
    except AssertionError as error:
        print(f"FAILED: {error}", file=sys.stderr)
        sys.exit(1)
    print(
        f"PASS: scheduling >= {MIN_SCHEDULING_SPEEDUP:.0f}x, "
        f"cache refresh >= {MIN_CACHE_SPEEDUP:.0f}x"
    )
