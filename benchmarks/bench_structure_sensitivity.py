"""Section 5.4 — matrix structure vs GUST performance."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import structure_sensitivity


def test_structure_sensitivity(benchmark):
    result = run_experiment(benchmark, structure_sensitivity.run)
    measured = result.measured_claims
    assert measured["utilization falls as degree STD rises"] is True
    assert measured["LB helps most on the most skewed structure"] is True
