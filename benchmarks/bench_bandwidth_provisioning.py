"""Extension — the bandwidth knee at the Section 3.3 requirement."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import bandwidth_provisioning


def test_bandwidth_provisioning(benchmark):
    result = run_experiment(benchmark, bandwidth_provisioning.run)
    measured = result.measured_claims
    assert measured["stall-free at U280's 460 GB/s"] is True
    assert abs(measured["requirement GB/s (length 256)"] - 221.2) < 1.0
    # Below the knee, slowdown is inverse in bandwidth.
    half = next(row for row in result.rows if row[1] == 0.5)
    assert half[4] == 2.0
