"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one paper table or figure.  The
experiment runs once (``rounds=1``) — these are reproduction harnesses, not
micro-benchmarks — and the reproduced table is printed so that
``pytest benchmarks/ --benchmark-only -s`` (or the tee'd output file) shows
the paper-vs-measured comparison next to the timing.
"""

from __future__ import annotations


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Run one experiment under pytest-benchmark and print its report."""
    result = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    for key, value in result.measured_claims.items():
        benchmark.extra_info[key] = str(value)
    return result
