"""Micro-benchmarks of the library's hot kernels.

Unlike the per-figure reproduction harnesses, these run multiple rounds to
measure the Python implementation itself: scheduling throughput (the
preprocessing cost the paper reports in Table 4), load balancing, schedule
replay, and the cycle-accurate machine.
"""

import numpy as np
import pytest

from repro import GustPipeline, GustScheduler, LoadBalancer, uniform_random
from repro.core.load_balance import identity_balance

MATRIX = uniform_random(2048, 2048, 0.01, seed=1)  # ~42K nonzeros
LENGTH = 256


@pytest.fixture(scope="module")
def prepared_schedule():
    pipeline = GustPipeline(LENGTH)
    schedule, balanced, _ = pipeline.preprocess(MATRIX)
    x = np.random.default_rng(0).normal(size=MATRIX.shape[1])
    return pipeline, schedule, balanced, x


def test_scheduling_matching(benchmark):
    scheduler = GustScheduler(LENGTH, algorithm="matching")
    balanced = identity_balance(MATRIX, LENGTH)
    counts = benchmark(scheduler.color_counts, balanced)
    assert sum(counts) > 0


def test_scheduling_first_fit(benchmark):
    scheduler = GustScheduler(LENGTH, algorithm="first_fit")
    balanced = identity_balance(MATRIX, LENGTH)
    counts = benchmark(scheduler.color_counts, balanced)
    assert sum(counts) > 0


def test_scheduling_naive(benchmark):
    scheduler = GustScheduler(LENGTH, algorithm="naive")
    balanced = identity_balance(MATRIX, LENGTH)
    counts = benchmark(scheduler.color_counts, balanced)
    assert sum(counts) > 0


def test_load_balancing(benchmark):
    balancer = LoadBalancer(LENGTH)
    balanced = benchmark(balancer.balance, MATRIX)
    assert balanced.matrix.nnz == MATRIX.nnz


def test_schedule_replay(benchmark, prepared_schedule):
    pipeline, schedule, balanced, x = prepared_schedule
    y = benchmark(pipeline.execute, schedule, balanced, x)
    np.testing.assert_allclose(y, MATRIX.matvec(x))


def test_cycle_accurate_machine(benchmark):
    small = uniform_random(256, 256, 0.02, seed=2)
    pipeline = GustPipeline(64)
    schedule, balanced, _ = pipeline.preprocess(small)
    x = np.random.default_rng(1).normal(size=256)
    y, _ = benchmark(pipeline.execute_cycle_accurate, schedule, balanced, x)
    np.testing.assert_allclose(y, small.matvec(x))
