"""Table 2 — per-design resource consumption."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import table2_resources


def test_table2_resources(benchmark):
    result = run_experiment(benchmark, table2_resources.run)
    measured = result.measured_claims
    for design, watts in (
        ("1D-256", 35.3),
        ("GUST-8", 3.4),
        ("GUST-87", 16.8),
        ("GUST-256", 56.9),
    ):
        assert measured[f"total W {design}"] == watts
