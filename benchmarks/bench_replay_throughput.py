"""Replay-throughput benchmark: prepared execution plans vs. the pre-plan
scatter path.

GUST's steady state is replay: scheduling is paid once, then the same
schedule executes thousands of SpMVs (Section 3.3's amortization, every
solver in :mod:`repro.solvers`, every SpMM column stream).  This benchmark
gates the :class:`~repro.core.plan.ExecutionPlan` engine on the paper's
headline regime — a 100k-nonzero, ``l = 64`` matrix:

* **scatter** — the pre-plan replay kept verbatim as
  :meth:`~repro.core.pipeline.GustPipeline.execute_scatter` (also
  reachable as ``backend="legacy-scatter"``): a dense ``np.nonzero`` over
  the schedule arrays plus an ``np.add.at`` accumulation, every call;
* **plan** — the compiled :class:`~repro.core.compiled.CompiledSpmv`
  handle on the ``"bincount"`` backend (``GustPipeline.compile``): gather
  -> multiply -> segment-reduce, compiled once, replayed many.

Acceptance gates (asserted when run as a script or under pytest):

* compiled SpMV replay >= 3x faster than the legacy scatter path;
* compiled and scatter replays are **bit-identical** (the plan's stable
  destination-row sort preserves each row's accumulation order);
* full solver runs (Jacobi, power iteration) through compiled-backend
  pipelines are bit-identical to legacy-scatter pipelines, iteration for
  iteration;
* cached solver iterations speed up by >= 1.5x;
* the steady-state ``pipeline.execute`` memo hit binds the compiled
  handle by identity — zero ``plan_for`` lookups per call.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replay_throughput.py
    PYTHONPATH=src python benchmarks/bench_replay_throughput.py --json out.json
    PYTHONPATH=src python benchmarks/bench_replay_throughput.py --compare-scipy

(``--compare-scipy`` adds an informational, never-gated scipy CSR matvec
column — the independent oracle and candidate backend noted in the
ROADMAP; it reports "unavailable" when scipy is not installed.)

or via pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_replay_throughput.py -s
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import GustPipeline, uniform_random
from repro.obs import trace as trace_mod
from repro.solvers.jacobi import jacobi
from repro.solvers.power_iteration import power_iteration
from repro.sparse.coo import CooMatrix

#: Headline configuration: 100k nonzeros at ~3 nnz/row, length 64 (the
#: acceptance criterion's 100k-nnz, l=64 regime).
DIM = 32768
TARGET_NNZ = 100_000
LENGTH = 64
SEED = 3

#: Solver benchmark: a smaller diagonally dominant system so the gate
#: finishes quickly while iterations remain SpMV-dominated.
SOLVER_DIM = 8192
SOLVER_NNZ = 60_000

MIN_REPLAY_SPEEDUP = 3.0
MIN_SOLVER_SPEEDUP = 1.5

#: The replay hot path carries a ``replay.execute`` trace span; with
#: tracing disabled the span machinery must cost no more than this
#: multiple of the bare kernel (the "observability is free when off"
#: contract documented in DESIGN.md).
MAX_NOOP_TRACE_OVERHEAD = 1.03


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _diag_dominant(dim: int, nnz: int, seed: int) -> CooMatrix:
    """A square, diagonally dominant system matrix for the solver gate."""
    base = uniform_random(dim, dim, nnz / (dim * dim), seed=seed)
    off = base.rows != base.cols
    rows = np.concatenate([base.rows[off], np.arange(dim)])
    cols = np.concatenate([base.cols[off], np.arange(dim)])
    data = np.concatenate([base.data[off], np.full(dim, 64.0)])
    return CooMatrix.from_arrays(rows, cols, data, (dim, dim))


def measure_spmv(compare_scipy: bool = False) -> dict:
    matrix = uniform_random(DIM, DIM, TARGET_NNZ / (DIM * DIM), seed=SEED)
    rng = np.random.default_rng(SEED)
    x = rng.normal(size=DIM)

    pipeline = GustPipeline(LENGTH, cache=True)
    schedule, balanced, _ = pipeline.preprocess(matrix)
    # The compiled handle on the bincount backend (the prepared-plan hot
    # path) vs. the uncompiled legacy baseline it replaced.
    compiled = pipeline.compile(matrix, backend="bincount")

    scatter_s = _best_of(
        lambda: pipeline.execute_scatter(schedule, balanced, x), 20
    )
    plan_s = _best_of(lambda: compiled.matvec(x), 20)

    y_scatter = pipeline.execute_scatter(schedule, balanced, x)
    y_plan = compiled.matvec(x)
    bit_identical = bool((y_scatter == y_plan).all())
    correct = bool(np.allclose(y_plan, matrix.matvec(x)))

    # Memo-hit micro-assertion (gated in _failures): after the first
    # execute pays compilation, every further execute must resolve the
    # compiled handle by identity — zero plan_for lookups per call.
    pipeline.execute(schedule, balanced, x)  # warm the compiled memo
    plan_for_calls = []
    original_plan_for = pipeline.plan_for

    def counting_plan_for(*args, **kwargs):
        plan_for_calls.append(args)
        return original_plan_for(*args, **kwargs)

    pipeline.plan_for = counting_plan_for
    try:
        for _ in range(10):
            pipeline.execute(schedule, balanced, x)
    finally:
        del pipeline.plan_for

    # Disabled-tracing overhead: time the bare kernel against the same
    # kernel under a module-level span with tracing forced off (an
    # installed disabled tracer wins over any GUST_TRACE in the
    # environment).  Batches of calls per sample smooth timer jitter.
    def bare():
        for _ in range(10):
            compiled.matvec(x)

    def spanned():
        for _ in range(10):
            with trace_mod.span("replay.execute"):
                compiled.matvec(x)

    with trace_mod.overridden(trace_mod.Tracer(enabled=False)):
        bare_s = _best_of(bare, 30)
        noop_span_s = _best_of(spanned, 30)

    results = {
        "matrix": {"dim": DIM, "nnz": matrix.nnz, "length": LENGTH},
        "backend": compiled.backend_name,
        "noop_trace_overhead": noop_span_s / bare_s,
        "scatter_s": scatter_s,
        "plan_s": plan_s,
        "speedup": scatter_s / plan_s,
        "bit_identical": bit_identical,
        "correct": correct,
        "memo_hit_plan_lookups": len(plan_for_calls),
    }
    if compare_scipy:
        # Informational column (never gated): the plan's sorted CSR
        # segment layout is exactly what a scipy CSR matvec consumes, so
        # scipy — where installed — doubles as an independent oracle and
        # a "natural next backend" reference point.
        try:
            import scipy.sparse as sparse
        except ImportError:
            results["scipy"] = None
        else:
            csr = sparse.coo_matrix(
                (matrix.data, (matrix.rows, matrix.cols)),
                shape=matrix.shape,
            ).tocsr()
            scipy_s = _best_of(lambda: csr @ x, 20)
            results["scipy"] = {
                "scipy_s": scipy_s,
                "vs_plan": plan_s / scipy_s,
                "agrees": bool(np.allclose(csr @ x, y_plan)),
            }
    return results


def measure_solvers() -> dict:
    matrix = _diag_dominant(SOLVER_DIM, SOLVER_NNZ, seed=SEED)
    rng = np.random.default_rng(SEED)
    b = rng.normal(size=SOLVER_DIM)

    def run_jacobi(backend: str):
        pipeline = GustPipeline(LENGTH, cache=True, backend=backend)
        return jacobi(matrix, b, pipeline=pipeline, max_iterations=60)

    def run_power(backend: str):
        pipeline = GustPipeline(LENGTH, cache=True, backend=backend)
        return power_iteration(matrix, pipeline=pipeline, max_iterations=40)

    with_plan = run_jacobi("bincount")
    without_plan = run_jacobi("legacy-scatter")
    jacobi_identical = bool(
        (with_plan.x == without_plan.x).all()
        and with_plan.iterations == without_plan.iterations
        and with_plan.residual_norm == without_plan.residual_norm
    )
    power_with = run_power("bincount")
    power_without = run_power("legacy-scatter")
    power_identical = bool(
        (power_with.vector == power_without.vector).all()
        and power_with.eigenvalue == power_without.eigenvalue
    )

    # Per-iteration replay cost with a warm cache (the steady state of a
    # solver fleet): schedule once, then time full solves whose
    # preprocessing is a cache hit, normalizing by SpMV count.
    plan_pipeline = GustPipeline(LENGTH, cache=True, backend="bincount")
    scatter_pipeline = GustPipeline(LENGTH, cache=True, backend="legacy-scatter")
    jacobi(matrix, b, pipeline=plan_pipeline, max_iterations=5)  # prime
    jacobi(matrix, b, pipeline=scatter_pipeline, max_iterations=5)
    spmvs = with_plan.spmv_count
    plan_s = _best_of(
        lambda: jacobi(matrix, b, pipeline=plan_pipeline, max_iterations=60), 5
    )
    scatter_s = _best_of(
        lambda: jacobi(
            matrix, b, pipeline=scatter_pipeline, max_iterations=60
        ),
        5,
    )
    return {
        "matrix": {"dim": SOLVER_DIM, "nnz": matrix.nnz, "length": LENGTH},
        "jacobi_bit_identical": jacobi_identical,
        "power_bit_identical": power_identical,
        "spmv_count": spmvs,
        "plan_iteration_us": plan_s / spmvs * 1e6,
        "scatter_iteration_us": scatter_s / spmvs * 1e6,
        "solver_speedup": scatter_s / plan_s,
    }


def run(
    json_path: str | None = None, compare_scipy: bool = False
) -> dict:
    spmv = measure_spmv(compare_scipy=compare_scipy)
    solvers = measure_solvers()
    results = {"spmv": spmv, "solvers": solvers}
    print(
        f"matrix: {DIM}x{DIM}, nnz={spmv['matrix']['nnz']}, length={LENGTH}"
    )
    print(
        f"scatter replay      {spmv['scatter_s'] * 1e6:>9.1f} us\n"
        f"plan replay         {spmv['plan_s'] * 1e6:>9.1f} us\n"
        f"speedup             {spmv['speedup']:>9.1f} x   "
        f"(bit-identical={spmv['bit_identical']})"
    )
    print(
        f"no-op trace span    {spmv['noop_trace_overhead']:>9.3f} x   "
        f"(gate <= {MAX_NOOP_TRACE_OVERHEAD}x)"
    )
    if compare_scipy:
        scipy_col = spmv.get("scipy")
        if scipy_col is None:
            print("scipy CSR matvec    unavailable (scipy not installed)")
        else:
            print(
                f"scipy CSR matvec    {scipy_col['scipy_s'] * 1e6:>9.1f} us"
                f"   (plan/scipy = {scipy_col['vs_plan']:.2f}; "
                f"agrees={scipy_col['agrees']})"
            )
    print(
        f"solver iteration    plan {solvers['plan_iteration_us']:.1f} us vs "
        f"scatter {solvers['scatter_iteration_us']:.1f} us "
        f"({solvers['solver_speedup']:.1f}x; jacobi/power bit-identical="
        f"{solvers['jacobi_bit_identical']}/{solvers['power_bit_identical']})"
    )
    if json_path:
        Path(json_path).write_text(json.dumps(results, indent=2))
        print(f"wrote {json_path}")
    return results


def _failures(results: dict) -> list[str]:
    spmv, solvers = results["spmv"], results["solvers"]
    failures = []
    if spmv["speedup"] < MIN_REPLAY_SPEEDUP:
        failures.append(
            f"plan replay {spmv['speedup']:.1f}x < {MIN_REPLAY_SPEEDUP}x"
        )
    if not spmv["bit_identical"]:
        failures.append("plan replay is not bit-identical to the scatter path")
    if not spmv["correct"]:
        failures.append("plan replay disagrees with the dense oracle")
    if spmv["memo_hit_plan_lookups"]:
        failures.append(
            f"steady-state execute paid {spmv['memo_hit_plan_lookups']} "
            "plan_for lookups; the memo hit must bind the compiled handle"
        )
    if spmv["noop_trace_overhead"] > MAX_NOOP_TRACE_OVERHEAD:
        failures.append(
            f"disabled tracing costs {spmv['noop_trace_overhead']:.3f}x "
            f"the bare kernel (> {MAX_NOOP_TRACE_OVERHEAD}x); the no-op "
            "span path must stay free"
        )
    if not solvers["jacobi_bit_identical"]:
        failures.append("jacobi results differ between plan and scatter paths")
    if not solvers["power_bit_identical"]:
        failures.append("power iteration differs between plan and scatter paths")
    if solvers["solver_speedup"] < MIN_SOLVER_SPEEDUP:
        failures.append(
            f"cached solver iterations {solvers['solver_speedup']:.1f}x < "
            f"{MIN_SOLVER_SPEEDUP}x"
        )
    return failures


def test_replay_throughput():
    """Pytest entry point enforcing the acceptance thresholds."""
    results = run()
    failures = _failures(results)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    json_path = None
    argv = sys.argv[1:]
    compare_scipy = "--compare-scipy" in argv
    argv = [arg for arg in argv if arg != "--compare-scipy"]
    if argv and argv[0] == "--json":
        json_path = argv[1]
    results = run(json_path, compare_scipy=compare_scipy)
    failures = _failures(results)
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        sys.exit(1)
    print(
        f"PASS: plan replay >= {MIN_REPLAY_SPEEDUP:.0f}x, bit-identical, "
        f"cached solver iterations >= {MIN_SOLVER_SPEEDUP:.1f}x"
    )
