"""Figure 7 — utilization and cycles for all seven design configurations."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import fig7_utilization


def test_fig7_utilization(benchmark):
    result = run_experiment(benchmark, fig7_utilization.run, scale=16.0)
    gmeans = result.measured_claims
    # The headline: GUST EC/LB achieves tens-of-percent utilization where
    # systolic baselines sit orders of magnitude lower.
    assert gmeans["geomean util% GUST-EC/LB"] > 20.0
    assert (
        gmeans["geomean util% GUST-EC/LB"]
        > 5 * gmeans["geomean util% FAFNIR"]
    )
