"""Section 5.5 — parallel GUST arrangements vs one long GUST."""

from benchmarks.conftest import run_experiment
from repro.eval.experiments import scalability


def test_scalability(benchmark):
    result = run_experiment(benchmark, scalability.run, scale=16.0)
    measured = result.measured_claims
    assert measured["parallel shrinks crossbar"] is True
    assert measured["work divides unequally on skewed matrices"] is True
