"""PageRank on a social-graph surrogate via GUST-scheduled SpMV.

Graph analysis is a headline workload in the paper's introduction.  Power
iteration multiplies the same damped transition matrix by a vector until
convergence — the schedule-once / run-many pattern GUST is built for.
Power-law graphs are also GUST's hardest case (Section 5.4): hub rows
dominate window color counts, which is exactly what the load balancer
mitigates.  This example measures that effect directly.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro import CooMatrix, GustPipeline, power_law
from repro.solvers import power_iteration


def damped_transition(graph: CooMatrix, damping: float = 0.85) -> CooMatrix:
    """Column-stochastic damped transition matrix of a directed graph."""
    n = graph.shape[0]
    out_degree = graph.col_counts().astype(np.float64)
    out_degree[out_degree == 0] = 1.0  # dangling nodes: self-loop semantics
    data = damping * graph.data / out_degree[graph.cols]
    return CooMatrix.from_arrays(graph.rows, graph.cols, data, graph.shape)


def main() -> None:
    n = 4096
    graph = power_law(n, n, density=0.002, seed=9)
    transition = damped_transition(graph)

    print(f"graph: {graph} (power-law, hubs capped at 50x mean degree)")
    for load_balance in (False, True):
        pipeline = GustPipeline(length=128, load_balance=load_balance)
        schedule, balanced, report = pipeline.preprocess(transition)
        label = "EC/LB" if load_balance else "EC   "
        print(f"{label}: {schedule.execution_cycles} cycles/SpMV, "
              f"utilization {schedule.utilization:.1%}, "
              f"scheduled in {report.seconds * 1e3:.0f} ms")

    pipeline = GustPipeline(length=128, load_balance=True)
    result = power_iteration(transition, pipeline=pipeline, tol=1e-10)
    ranks = np.abs(result.vector)
    ranks /= ranks.sum()
    top = np.argsort(-ranks)[:5]
    print(f"power iteration converged={result.converged} "
          f"after {result.iterations} iterations ({result.spmv_count} SpMVs)")
    print("top-5 nodes by rank:", ", ".join(
        f"{node} ({ranks[node]:.4f})" for node in top
    ))


if __name__ == "__main__":
    main()
