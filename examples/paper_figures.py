"""Regenerate every table and figure of the paper in one run.

Run:  python examples/paper_figures.py            # everything (~2 minutes)
      python examples/paper_figures.py fig7 table4   # a subset
"""

import sys
import time

from repro.eval.experiments import (
    bandwidth_provisioning,
    bound_validation,
    coloring_ablation,
    fig7_utilization,
    fig8_speedup,
    fig9_bandwidth,
    length_sweep,
    naive_crossover,
    scalability,
    structure_sensitivity,
    table1_qualities,
    table2_resources,
    table3_datasets,
    table4_serpens,
    table5_partitions,
)

EXPERIMENTS = {
    "table1": table1_qualities,
    "table2": table2_resources,
    "table3": table3_datasets,
    "table4": table4_serpens,
    "table5": table5_partitions,
    "fig7": fig7_utilization,
    "fig8": fig8_speedup,
    "fig9": fig9_bandwidth,
    "naive_crossover": naive_crossover,
    "bound": bound_validation,
    "scalability": scalability,
    "ablation": coloring_ablation,
    "length_sweep": length_sweep,
    "structure": structure_sensitivity,
    "bandwidth": bandwidth_provisioning,
}


def main() -> None:
    requested = sys.argv[1:] or list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; choose from {sorted(EXPERIMENTS)}"
        )
    for name in requested:
        started = time.perf_counter()
        result = EXPERIMENTS[name].run()
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]")
        print("=" * 78)


if __name__ == "__main__":
    main()
