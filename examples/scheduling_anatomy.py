"""Anatomy of a GUST schedule: the paper's Figure 5 walked end to end.

Builds the 6x9 example matrix from Figure 5, colors its two windows with a
length-3 GUST, prints the bipartite view, the M_sch / Row_sch / Col_sch
storage, and then executes the schedule on the cycle-accurate machine —
including a demonstration that an (artificially) corrupted schedule trips
the crossbar's collision detector.

Run:  python examples/scheduling_anatomy.py
"""

import numpy as np

from repro import CooMatrix, GustMachine, GustPipeline
from repro.core.schedule import EMPTY
from repro.errors import CollisionError
from repro.eval.visualize import (
    degree_profile,
    schedule_occupancy,
    window_color_chart,
)


def figure5_matrix() -> CooMatrix:
    """The paper's 6x9 example: rows x columns {A..I} as in Figure 5(a)."""
    pattern = {
        0: "ACDEH",
        1: "ABFGH",
        2: "BCDI",
        3: "ACEI",
        4: "CFGH",
        5: "ABDH",
    }
    rows, cols = [], []
    for row, letters in pattern.items():
        for letter in letters:
            rows.append(row)
            cols.append(ord(letter) - ord("A"))
    values = np.arange(1.0, len(rows) + 1.0)
    return CooMatrix.from_arrays(
        np.array(rows), np.array(cols), values, (6, 9)
    )


def main() -> None:
    matrix = figure5_matrix()
    length = 3
    print(f"matrix: {matrix} — scheduling on a length-{length} GUST")
    print("column segments: {A,D,G} -> multiplier 0, {B,E,H} -> 1, {C,F,I} -> 2\n")

    # Figure 5's hand coloring is optimal; the "euler" algorithm attains
    # the same Delta-color optimum (the default greedy would need one more).
    pipeline = GustPipeline(
        length, algorithm="euler", load_balance=False, validate=True
    )
    schedule, balanced, _ = pipeline.preprocess(matrix)

    print(f"window colors: {schedule.window_colors} "
          f"(paper: first three rows need 5 colors, last three 4)")
    print(f"total cycles: {schedule.execution_cycles} "
          f"(color sum + 2 pipeline stages; paper counts 11 for this matrix)\n")

    def cell(step: int, lane: int) -> str:
        if schedule.row_sch[step, lane] == EMPTY:
            return "   .  "
        col_letter = chr(ord("A") + int(schedule.col_sch[step, lane]))
        return f"r{int(schedule.row_sch[step, lane])}{col_letter}   "

    print("M_sch layout (timestep x multiplier lane; rN = destination adder):")
    for step in range(schedule.total_colors):
        print(f"  t={step:<2d} " + "".join(cell(step, lane) for lane in range(length)))

    print()
    print(degree_profile(matrix, length, bins=4, width=24))
    print()
    print(schedule_occupancy(schedule, width=length, height=9))
    print()
    print(window_color_chart(schedule, balanced, width=24))

    x = np.arange(1.0, 10.0)
    machine = GustMachine(length)
    result = machine.run(schedule, x)
    expected = matrix.matvec(x)
    assert np.allclose(result.y_permuted, expected)
    print(f"\nmachine: {result.cycles} cycles, "
          f"{result.multiplier_ops} multiplies, {result.adder_ops} accumulates, "
          f"max FIFO depth {result.max_fifo_depth} "
          f"(= max window colors, as Eq. 1 predicts)")

    # Now corrupt the schedule: route two elements of one timestep to the
    # same adder and watch the crossbar object.
    bad_row_sch = schedule.row_sch.copy()
    occupied_lanes = np.nonzero(bad_row_sch[0] != EMPTY)[0]
    bad_row_sch[0, occupied_lanes[1]] = bad_row_sch[0, occupied_lanes[0]]
    corrupted = type(schedule)(
        length=schedule.length,
        shape=schedule.shape,
        m_sch=schedule.m_sch,
        row_sch=bad_row_sch,
        col_sch=schedule.col_sch,
        window_colors=schedule.window_colors,
    )
    try:
        machine.run(corrupted, x)
    except CollisionError as error:
        print(f"\ncorrupted schedule correctly rejected: {error}")


if __name__ == "__main__":
    main()
