"""Design-space exploration: picking a GUST length for a workload.

Section 5.5's engineering trade-off made concrete: longer GUSTs finish in
fewer cycles, but the crossbar's LUT and power cost grows super-linearly.
This example sweeps lengths and parallel arrangements for one workload and
prints the cycles/resources frontier, including energy per SpMV.

Run:  python examples/design_space_exploration.py
"""

from repro import GustPipeline, ParallelGust, load_dataset
from repro.energy.model import EnergyModel, gust_spec
from repro.energy.params import GUST_FREQUENCY_HZ
from repro.energy.resources import (
    crossbar_resources,
    gust_dynamic_power_w,
    gust_resources,
)
from repro.eval.tables import render_table


def main() -> None:
    matrix = load_dataset("poisson3db", scale=32)
    print(f"workload: poisson3db surrogate, {matrix}\n")
    energy_model = EnergyModel()

    rows = []
    for length in (32, 64, 128, 256):
        pipeline = GustPipeline(length)
        report, _ = pipeline.preprocess_stats(matrix)
        power = gust_dynamic_power_w(length)
        energy = energy_model.spmv_energy(
            gust_spec(length, power, GUST_FREQUENCY_HZ), matrix, report.cycles
        )
        rows.append(
            [
                f"1x{length}",
                report.cycles,
                f"{report.utilization:.1%}",
                crossbar_resources(length).lut,
                gust_resources(length).lut,
                round(power, 1),
                round(energy.total_j * 1e3, 2),
            ]
        )

    for units, length in ((2, 128), (4, 64), (8, 32)):
        parallel = ParallelGust(length, units=units)
        run = parallel.run(matrix)
        report = parallel.cycle_report(run)
        power = units * gust_dynamic_power_w(length)
        energy = energy_model.spmv_energy(
            gust_spec(length, power, GUST_FREQUENCY_HZ), matrix, report.cycles
        )
        rows.append(
            [
                f"{units}x{length}",
                report.cycles,
                f"{report.utilization:.1%}",
                units * crossbar_resources(length).lut,
                units * gust_resources(length).lut,
                round(power, 1),
                round(energy.total_j * 1e3, 2),
            ]
        )

    print(
        render_table(
            ["config", "cycles", "util", "xbar LUT", "total LUT", "W", "mJ/SpMV"],
            rows,
            title="equal-arithmetic design points (256 multipliers total)",
        )
    )
    print(
        "\nreading: parallel arrangements trade a slightly different cycle"
        "\ncount for an order-of-magnitude smaller crossbar — the Section 5.5"
        "\nargument. Pick the cheapest config meeting your cycle budget."
    )


if __name__ == "__main__":
    main()
