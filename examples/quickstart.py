"""Quickstart: schedule a sparse matrix and run a collision-free SpMV.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GustPipeline, uniform_random


def main() -> None:
    # A 2048 x 2048 uniform sparse matrix at 1% density.
    matrix = uniform_random(2048, 2048, density=0.01, seed=42)
    rng = np.random.default_rng(42)
    x = rng.normal(size=matrix.shape[1])

    # A length-128 GUST with the paper's edge-coloring scheduler and
    # three-step load balancing.
    gust = GustPipeline(length=128, algorithm="matching", load_balance=True)
    result = gust.spmv(matrix, x)

    # The scheduled dataflow is numerically exact.
    expected = matrix.matvec(x)
    assert np.allclose(result.y, expected), "SpMV mismatch"

    report = result.cycle_report
    schedule = result.schedule
    print(f"matrix: {matrix}")
    print(f"schedule: {schedule.window_count} windows, "
          f"{schedule.total_colors} buffer slots, "
          f"occupancy {schedule.occupancy:.1%}")
    print(f"execution: {report.cycles} cycles, "
          f"hardware utilization {report.utilization:.1%}")
    print(f"preprocessing took {result.preprocess.seconds * 1e3:.1f} ms "
          f"(one-time; schedules are reusable across input vectors)")

    # Reuse: a new vector costs no rescheduling.
    x2 = rng.normal(size=matrix.shape[1])
    y2 = gust.execute(result.schedule, result.balanced, x2)
    assert np.allclose(y2, matrix.matvec(x2))
    print("schedule reused for a second vector — no rescheduling needed")


if __name__ == "__main__":
    main()
