"""Iterative FEM-style solve: amortizing GUST preprocessing over CG.

The paper's Section 5.3 argument: preprocessing (scheduling) is a one-time
cost per matrix, while solvers call SpMV hundreds of times.  This example
builds a symmetric positive-definite banded system (a 1-D Laplacian-like
stencil, the FEM workload of the paper's intro), solves it with conjugate
gradient on the GUST pipeline, and reports the amortization ledger.

Run:  python examples/iterative_solver.py
"""

import numpy as np

from repro import CooMatrix, GustPipeline
from repro.energy.params import GUST_FREQUENCY_HZ
from repro.solvers import conjugate_gradient


def spd_stencil(n: int, bandwidth: int = 3, seed: int = 0) -> CooMatrix:
    """A diagonally dominant SPD band matrix (discretized diffusion)."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i in range(n):
        acc = 0.0
        for j in range(max(0, i - bandwidth), min(n, i + bandwidth + 1)):
            if i == j:
                continue
            value = -rng.uniform(0.5, 1.0)
            rows.append(i)
            cols.append(j)
            vals.append(value)
            acc += abs(value)
        rows.append(i)
        cols.append(i)
        vals.append(acc + 1.0)  # strict diagonal dominance => SPD-ish
    upper = CooMatrix.from_arrays(
        np.array(rows), np.array(cols), np.array(vals), (n, n)
    )
    # Symmetrize: (A + A^T) / 2 keeps dominance and makes it exactly SPD.
    transposed = upper.transpose()
    return CooMatrix.from_arrays(
        np.concatenate([upper.rows, transposed.rows]),
        np.concatenate([upper.cols, transposed.cols]),
        np.concatenate([upper.data / 2, transposed.data / 2]),
        (n, n),
    )


def main() -> None:
    n = 1500
    matrix = spd_stencil(n)
    rng = np.random.default_rng(1)
    x_true = rng.normal(size=n)
    b = matrix.matvec(x_true)

    pipeline = GustPipeline(length=64)
    result = conjugate_gradient(matrix, b, pipeline=pipeline, tol=1e-10)

    error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
    print(f"system: {matrix}")
    print(f"CG converged={result.converged} in {result.iterations} iterations "
          f"({result.spmv_count} SpMVs), relative error {error:.2e}")

    spmv_seconds = result.total_accelerator_cycles / GUST_FREQUENCY_HZ
    print(f"accelerator time for all SpMVs: {spmv_seconds * 1e3:.2f} ms "
          f"@ {GUST_FREQUENCY_HZ / 1e6:.0f} MHz")
    print(f"one-time scheduling: {result.preprocess_seconds * 1e3:.1f} ms "
          f"(host wall-clock)")
    per_spmv = result.total_accelerator_cycles / result.spmv_count
    print(f"per-SpMV cost: {per_spmv:.0f} cycles — the schedule was computed "
          f"once and replayed {result.spmv_count} times")


if __name__ == "__main__":
    main()
