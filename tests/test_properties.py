"""Cross-cutting property-based invariants over the whole stack.

These complement the per-module tests with end-to-end properties that must
hold for *any* input matrix: scheduling is complete and collision-free,
cycle counts respect the Eq. (1) lower bound, the optimal coloring never
loses to the greedy one, and every execution path computes the same
product.
"""

import numpy as np
from hypothesis import given, settings

from repro import GustPipeline, GustScheduler, GustSpmm
from repro.core.load_balance import LoadBalancer, identity_balance
from tests.strategies import coo_matrices

LENGTH = 8


class TestSchedulingInvariants:
    @given(coo_matrices(max_dim=40))
    @settings(max_examples=40, deadline=None)
    def test_cycles_at_least_lower_bound(self, matrix):
        balanced = identity_balance(matrix, LENGTH)
        counts = GustScheduler(LENGTH).color_counts(balanced)
        bounds = balanced.color_lower_bounds(LENGTH)
        assert all(c >= b for c, b in zip(counts, bounds))

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=40, deadline=None)
    def test_euler_never_worse_than_matching(self, matrix):
        balanced = identity_balance(matrix, LENGTH)
        greedy = sum(GustScheduler(LENGTH, "matching").color_counts(balanced))
        optimal = sum(GustScheduler(LENGTH, "euler").color_counts(balanced))
        assert optimal <= greedy

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=40, deadline=None)
    def test_euler_hits_lower_bound_exactly(self, matrix):
        balanced = identity_balance(matrix, LENGTH)
        optimal = GustScheduler(LENGTH, "euler").color_counts(balanced)
        assert optimal == balanced.color_lower_bounds(LENGTH)

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=40, deadline=None)
    def test_naive_never_beats_matching(self, matrix):
        balanced = identity_balance(matrix, LENGTH)
        greedy = sum(GustScheduler(LENGTH, "matching").color_counts(balanced))
        naive = sum(GustScheduler(LENGTH, "naive").color_counts(balanced))
        assert naive >= greedy

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounded(self, matrix):
        pipeline = GustPipeline(LENGTH)
        report, _ = pipeline.preprocess_stats(matrix)
        assert 0.0 <= report.utilization <= 1.0


class TestBalancingInvariants:
    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_balancing_preserves_product(self, matrix):
        x = np.linspace(-1.0, 1.0, matrix.shape[1])
        plain = GustPipeline(LENGTH, load_balance=False).spmv(matrix, x)
        balanced = GustPipeline(LENGTH, load_balance=True).spmv(matrix, x)
        np.testing.assert_allclose(plain.y, balanced.y, atol=1e-12)

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_balanced_bounds_never_exceed_identity_on_segments(self, matrix):
        # The balancer's snake dealing minimizes per-window segment maxima
        # heuristically; at minimum it must keep the row-side bound intact
        # (rows only permuted) and never schedule fewer nonzeros.
        balanced = LoadBalancer(LENGTH).balance(matrix)
        assert balanced.matrix.nnz == matrix.nnz

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_colseg_map_is_window_consistent(self, matrix):
        balanced = LoadBalancer(LENGTH).balance(matrix)
        m = matrix.shape[0]
        window_of_row = (
            balanced.matrix.rows // LENGTH
            if balanced.matrix.nnz
            else np.zeros(0, np.int64)
        )
        windows = -(-m // LENGTH) if m else 0
        for w in range(windows):
            mask = window_of_row == w
            cols = balanced.matrix.cols[mask]
            segs = balanced.colseg_of(w, cols, LENGTH)
            if segs.size:
                assert segs.min() >= 0
                assert segs.max() < LENGTH
                # Same column, same lane — the map is a function.
                pairs = {}
                for col, seg in zip(cols.tolist(), segs.tolist()):
                    assert pairs.setdefault(col, seg) == seg


class TestExecutionAgreement:
    @given(coo_matrices(max_dim=32))
    @settings(max_examples=20, deadline=None)
    def test_replay_machine_and_oracle_agree(self, matrix):
        pipeline = GustPipeline(LENGTH, validate=True)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        fast = pipeline.execute(schedule, balanced, x)
        slow, machine = pipeline.execute_cycle_accurate(schedule, balanced, x)
        oracle = matrix.matvec(x)
        np.testing.assert_allclose(fast, oracle, atol=1e-12)
        np.testing.assert_allclose(slow, oracle, atol=1e-12)
        assert machine.cycles == schedule.execution_cycles

    @given(coo_matrices(max_dim=24, min_dim=2))
    @settings(max_examples=15, deadline=None)
    def test_spmm_consistent_with_columnwise_spmv(self, matrix):
        engine = GustSpmm(LENGTH)
        dense = np.stack(
            [
                np.linspace(0.0, 1.0, matrix.shape[1]),
                np.linspace(1.0, -1.0, matrix.shape[1]),
            ],
            axis=1,
        )
        result = engine.spmm(matrix, dense)
        for j in range(2):
            np.testing.assert_allclose(
                result.y[:, j], matrix.matvec(dense[:, j]), atol=1e-12
            )
