"""Unit tests for the deterministic fault-injection harness."""

import threading

import pytest

from repro import FaultPlan, faults
from repro.errors import FaultSpecError, InjectedFaultError

pytestmark = pytest.mark.usefixtures("no_faults")


class TestSpecParsing:
    def test_rates_counts_and_alias(self):
        plan = FaultPlan.from_spec(
            "store-io:0.25, kernel-error:0.05, worker-crash:2, pool-kill:1"
        )
        assert plan.rates == {
            "store-read": 0.25,
            "store-write": 0.25,
            "kernel-error": 0.05,
        }
        assert plan.counts == {"worker-crash": 2, "pool-kill": 1}

    def test_empty_entries_ignored(self):
        plan = FaultPlan.from_spec(" , kernel-error:0.5 ,, ")
        assert plan.rates == {"kernel-error": 0.5}

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            FaultPlan.from_spec("disk-eaten:0.5")

    def test_malformed_entry_rejected(self):
        with pytest.raises(FaultSpecError, match="malformed"):
            FaultPlan.from_spec("kernel-error")
        with pytest.raises(FaultSpecError, match="non-numeric"):
            FaultPlan.from_spec("kernel-error:lots")

    def test_non_integral_count_rejected(self):
        # A typo'd rate like '1.5' must error like the constructor does,
        # not truncate to count 1 and inject a different plan than
        # written.
        with pytest.raises(FaultSpecError, match="integral count"):
            FaultPlan.from_spec("store-read:1.5")
        with pytest.raises(FaultSpecError, match="integral count"):
            FaultPlan.from_spec("store-io:2.25")

    def test_constructor_validation(self):
        with pytest.raises(FaultSpecError, match="rate"):
            FaultPlan(rates={"kernel-error": 1.5})
        with pytest.raises(FaultSpecError, match="count"):
            FaultPlan(counts={"worker-crash": 0})
        with pytest.raises(FaultSpecError, match="both"):
            FaultPlan(
                rates={"kernel-error": 0.1}, counts={"kernel-error": 2}
            )

    def test_probe_of_unknown_site_rejected(self):
        # A typo'd probe site must fail loudly, not silently never fire.
        plan = FaultPlan()
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            plan.should_fire("kernel-eror")


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = FaultPlan(seed=42, rates={"kernel-error": 0.3})
        b = FaultPlan(seed=42, rates={"kernel-error": 0.3})
        seq_a = [a.should_fire("kernel-error") for _ in range(200)]
        seq_b = [b.should_fire("kernel-error") for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, rates={"kernel-error": 0.3})
        b = FaultPlan(seed=2, rates={"kernel-error": 0.3})
        assert [a.should_fire("kernel-error") for _ in range(200)] != [
            b.should_fire("kernel-error") for _ in range(200)
        ]

    def test_sites_are_independent(self):
        """Probing one site must not perturb another site's sequence."""
        lone = FaultPlan(seed=9, rates={"kernel-error": 0.3})
        mixed = FaultPlan(
            seed=9, rates={"kernel-error": 0.3, "store-read": 0.3}
        )
        seq = []
        for k in range(100):
            seq.append(mixed.should_fire("kernel-error"))
            mixed.should_fire("store-read")  # interleaved traffic
        assert seq == [lone.should_fire("kernel-error") for _ in range(100)]

    def test_decisions_predicts_probes(self):
        plan = FaultPlan(
            seed=5, rates={"store-read": 0.4}, counts={"worker-crash": 2}
        )
        predicted = plan.decisions("store-read", 50)
        assert [plan.should_fire("store-read") for _ in range(50)] == predicted
        assert plan.decisions("worker-crash", 4) == [True, True, False, False]
        assert plan.decisions("pool-kill", 3) == [False] * 3

    def test_counts_fire_first_n_probes_exactly(self):
        plan = FaultPlan(counts={"worker-crash": 2})
        fired = [plan.should_fire("worker-crash") for _ in range(10)]
        assert fired == [True, True] + [False] * 8

    def test_history_records_site_and_probe_index(self):
        plan = FaultPlan(counts={"pool-kill": 1})
        plan.should_fire("pool-kill")
        plan.should_fire("pool-kill")
        assert [(e.site, e.probe) for e in plan.history()] == [
            ("pool-kill", 0)
        ]
        assert plan.probes() == {"pool-kill": 2}

    def test_thread_safety_probe_counts(self):
        """Concurrent probes must neither lose nor duplicate counts."""
        plan = FaultPlan(seed=3, rates={"kernel-error": 0.5})
        n, threads = 100, 8

        def hammer():
            for _ in range(n):
                plan.should_fire("kernel-error")

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert plan.probes() == {"kernel-error": n * threads}


class TestHelpers:
    def test_raise_if_raises_the_factory_error(self):
        plan = FaultPlan(counts={"kernel-error": 1})
        with pytest.raises(InjectedFaultError, match="boom"):
            plan.raise_if("kernel-error", lambda: InjectedFaultError("boom"))
        # Count exhausted: no further raise.
        plan.raise_if("kernel-error", lambda: InjectedFaultError("boom"))

    def test_module_should_fire_without_any_plan_is_false(self):
        assert faults.active_plan() is None
        assert faults.should_fire("kernel-error") is False

    def test_env_activation_and_cache(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "worker-crash:2")
        monkeypatch.setenv(faults.ENV_SEED, "17")
        plan = faults.active_plan()
        assert plan is not None
        assert plan.seed == 17
        assert plan.counts == {"worker-crash": 2}
        # Same env -> same plan object (counters keep accumulating).
        assert faults.active_plan() is plan
        # Changed env -> fresh plan.
        monkeypatch.setenv(faults.ENV_SPEC, "pool-kill:1")
        fresh = faults.active_plan()
        assert fresh is not plan
        assert fresh.counts == {"pool-kill": 1}

    def test_env_bad_seed_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "pool-kill:1")
        monkeypatch.setenv(faults.ENV_SEED, "not-a-seed")
        with pytest.raises(FaultSpecError, match="GUST_FAULTS_SEED"):
            faults.active_plan()

    def test_overridden_installs_and_restores(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "pool-kill:1")
        inner = FaultPlan(counts={"worker-crash": 1})
        with faults.overridden(inner):
            # Installed plan shadows the environment.
            assert faults.active_plan() is inner
        assert faults.active_plan().counts == {"pool-kill": 1}

    def test_resolve_prefers_explicit_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "pool-kill:1")
        explicit = FaultPlan(counts={"worker-crash": 1})
        assert faults.resolve(explicit) is explicit
        assert faults.resolve(None).counts == {"pool-kill": 1}

    @staticmethod
    def _answer_while_lock_held(probe):
        """Run ``probe`` in a thread while the caller holds the ambient
        lock; a probe that needs the lock would block past the join."""
        results = []
        thread = threading.Thread(target=lambda: results.append(probe()))
        thread.start()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "probe blocked on _AMBIENT_LOCK"
        return results[0]

    def test_steady_state_probes_are_lock_free(self, monkeypatch):
        """Probes sit on per-batch kernel and store paths in every server
        worker, so the steady-state cases — no plan, installed plan,
        cached env plan — must answer without taking the process-wide
        ambient lock (pre-fix every probe serialized on it)."""
        monkeypatch.delenv(faults.ENV_SPEC, raising=False)
        with faults._AMBIENT_LOCK:
            assert (
                self._answer_while_lock_held(
                    lambda: faults.should_fire("kernel-error")
                )
                is False
            )
        installed = FaultPlan(counts={"worker-crash": 1})
        with faults.overridden(installed):
            with faults._AMBIENT_LOCK:
                assert (
                    self._answer_while_lock_held(faults.active_plan)
                    is installed
                )
        monkeypatch.setenv(faults.ENV_SPEC, "pool-kill:1")
        cached = faults.active_plan()  # parse + cache before holding
        with faults._AMBIENT_LOCK:
            assert self._answer_while_lock_held(faults.active_plan) is cached
