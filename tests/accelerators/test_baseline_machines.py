"""Cycle-accurate baseline machines vs their analytic models."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, uniform_random
from repro.accelerators import FlexTpu, Systolic1D
from repro.accelerators.flex_tpu_machine import FlexTpuMachine
from repro.accelerators.systolic_1d_machine import Systolic1DMachine
from repro.errors import HardwareConfigError
from tests.strategies import coo_matrices


class TestSystolic1DMachine:
    def test_output_matches_oracle(self, square_matrix, rng):
        machine = Systolic1DMachine(32)
        x = rng.normal(size=square_matrix.shape[1])
        result = machine.run(square_matrix, x)
        np.testing.assert_allclose(result.y, square_matrix.matvec(x))

    def test_cycles_match_analytic_model(self, square_matrix):
        machine = Systolic1DMachine(32)
        analytic = Systolic1D(32)
        result = machine.run(square_matrix, np.zeros(square_matrix.shape[1]))
        assert result.cycles == analytic.run(square_matrix).cycles

    def test_occupancy_equals_density(self, square_matrix):
        machine = Systolic1DMachine(32)
        result = machine.run(square_matrix, np.ones(square_matrix.shape[1]))
        # Every cell of every window is a multiply slot; nonzero ones are
        # exactly the matrix nonzeros.
        assert result.nonzero_multiplies == square_matrix.nnz
        assert result.occupancy == pytest.approx(square_matrix.density)

    def test_empty(self):
        result = Systolic1DMachine(8).run(CooMatrix.empty((4, 4)), np.ones(4))
        assert result.cycles == 0

    def test_vector_mismatch(self, square_matrix):
        with pytest.raises(HardwareConfigError, match="incompatible"):
            Systolic1DMachine(8).run(square_matrix, np.zeros(3))

    @given(matrix=coo_matrices(max_dim=24))
    @settings(max_examples=20, deadline=None)
    def test_machine_equals_analytic_everywhere(self, matrix):
        machine = Systolic1DMachine(8)
        analytic = Systolic1D(8)
        x = np.linspace(-1, 1, matrix.shape[1])
        result = machine.run(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x), atol=1e-12)
        assert result.cycles == analytic.run(matrix).cycles


class TestFlexTpuMachine:
    def test_output_matches_oracle(self, square_matrix, rng):
        machine = FlexTpuMachine(8)
        x = rng.normal(size=square_matrix.shape[1])
        result = machine.run(square_matrix, x)
        np.testing.assert_allclose(result.y, square_matrix.matvec(x))

    def test_partitions_match_analytic_model(self, square_matrix):
        machine = FlexTpuMachine(8)
        analytic = FlexTpu(8)
        result = machine.run(square_matrix, np.zeros(square_matrix.shape[1]))
        assert result.cycles == analytic.run(square_matrix).cycles

    def test_slot_accounting(self, square_matrix):
        machine = FlexTpuMachine(8)
        result = machine.run(square_matrix, np.ones(square_matrix.shape[1]))
        nonempty_rows = int(np.unique(square_matrix.rows).size)
        assert result.normal_pe_slots == square_matrix.nnz
        assert result.separator_slots == nonempty_rows

    def test_empty(self):
        result = FlexTpuMachine(4).run(CooMatrix.empty((4, 4)), np.ones(4))
        assert result.cycles == 0
        assert result.partitions == 0

    def test_row_wrapping_across_partitions(self, rng):
        # One row with more nonzeros than a whole partition must still sum
        # correctly via separator carry.
        n = 40
        matrix = CooMatrix.from_arrays(
            np.zeros(n, dtype=np.int64),
            np.arange(n),
            rng.uniform(0.5, 1.5, size=n),
            (1, n),
        )
        machine = FlexTpuMachine(4)  # 16 PEs per partition
        x = rng.normal(size=n)
        result = machine.run(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x))
        assert result.partitions == -(-(n + 1) // 16)

    @given(matrix=coo_matrices(max_dim=24))
    @settings(max_examples=20, deadline=None)
    def test_machine_equals_analytic_everywhere(self, matrix):
        machine = FlexTpuMachine(4)
        analytic = FlexTpu(4)
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        result = machine.run(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x), atol=1e-12)
        assert result.cycles == analytic.run(matrix).cycles
