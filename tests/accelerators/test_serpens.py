"""Tests for the Serpens channel/lane model."""

import numpy as np
import pytest

from repro import CooMatrix, power_law, uniform_random
from repro.accelerators import Serpens
from repro.errors import HardwareConfigError


class TestCycleModel:
    def test_group_heaviest_row_drives_cost(self):
        # One 8-row group; heaviest row has 5 nonzeros -> 5 * 2.2 cycles.
        rows = np.array([0, 0, 0, 0, 0, 1, 2])
        cols = np.arange(7)
        matrix = CooMatrix.from_arrays(rows, cols, np.ones(7), (8, 7))
        serpens = Serpens(channels=2, lanes=8, cycles_per_element=2.0,
                          startup_cycles=0)
        assert serpens.run(matrix).cycles == 10

    def test_channel_imbalance_takes_max(self):
        # Two groups on two channels: 3-heavy and 1-heavy rows.
        rows = np.array([0, 0, 0, 8])
        cols = np.array([0, 1, 2, 0])
        matrix = CooMatrix.from_arrays(rows, cols, np.ones(4), (16, 4))
        serpens = Serpens(channels=2, lanes=8, cycles_per_element=1.0,
                          startup_cycles=0)
        assert serpens.run(matrix).cycles == 3  # max(3, 1)

    def test_power_law_hurts_more_than_uniform(self):
        uniform = uniform_random(2048, 2048, 0.01, seed=1)
        skewed = power_law(2048, 2048, 0.01, seed=1)
        serpens = Serpens()
        uniform_eff = uniform.nnz / serpens.run(uniform).cycles
        skewed_eff = skewed.nnz / serpens.run(skewed).cycles
        assert skewed_eff < uniform_eff

    def test_empty(self):
        assert Serpens().run(CooMatrix.empty((8, 8))).cycles == 0

    def test_units(self):
        assert Serpens(channels=24, lanes=8).total_units == 384


class TestPreprocess:
    def test_padding_accounted(self):
        rows = np.array([0, 0, 0, 1])
        cols = np.array([0, 1, 2, 0])
        matrix = CooMatrix.from_arrays(rows, cols, np.ones(4), (8, 4))
        serpens = Serpens(channels=2, lanes=8)
        report = serpens.preprocess(matrix)
        # 8 lanes each padded to the heaviest row (3) = 24 slots.
        assert report.notes["padded_elements"] == 24.0
        assert report.seconds >= 0.0

    def test_spmv_matches_oracle(self, square_matrix, rng):
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            Serpens().spmv(square_matrix, x), square_matrix.matvec(x)
        )


class TestValidation:
    def test_bad_channels(self):
        with pytest.raises(HardwareConfigError):
            Serpens(channels=0)

    def test_bad_rate(self):
        with pytest.raises(HardwareConfigError):
            Serpens(cycles_per_element=0.0)
