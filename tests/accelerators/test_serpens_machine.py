"""The Serpens group walker must agree with the analytic channel model."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, power_law, uniform_random
from repro.accelerators import Serpens
from repro.accelerators.serpens_machine import SerpensMachine
from repro.errors import HardwareConfigError
from tests.strategies import coo_matrices


class TestAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cycles_match_analytic_model(self, seed):
        matrix = uniform_random(512, 512, 0.02, seed=seed)
        machine = SerpensMachine(channels=8, lanes=8)
        analytic = Serpens(channels=8, lanes=8)
        result = machine.run(matrix, np.ones(512))
        assert result.cycles == analytic.run(matrix).cycles

    def test_power_law_agreement(self):
        matrix = power_law(1024, 1024, 0.005, seed=4)
        machine = SerpensMachine()
        analytic = Serpens()
        result = machine.run(matrix, np.ones(1024))
        assert result.cycles == analytic.run(matrix).cycles

    @given(matrix=coo_matrices(max_dim=40))
    @settings(max_examples=25, deadline=None)
    def test_agreement_everywhere(self, matrix):
        machine = SerpensMachine(channels=3, lanes=4, startup_cycles=16)
        analytic = Serpens(channels=3, lanes=4, startup_cycles=16)
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        result = machine.run(matrix, x)
        assert result.cycles == analytic.run(matrix).cycles
        np.testing.assert_allclose(result.y, matrix.matvec(x), atol=1e-12)


class TestLaneAccounting:
    def test_idle_slots_measure_imbalance(self):
        # One hub row forces 7 lanes idle for most of the group.
        rows = np.concatenate([np.zeros(64, np.int64), np.array([1])])
        cols = np.concatenate([np.arange(64), np.array([0])])
        matrix = CooMatrix.from_arrays(rows, cols, np.ones(65), (8, 64))
        result = SerpensMachine(channels=1, lanes=8).run(matrix, np.ones(64))
        # Hub row: 64 elements; row 1: 1; six empty rows idle 64 each.
        assert result.lane_idle_slots == (64 - 1) + 6 * 64
        assert result.lane_efficiency < 0.2

    def test_balanced_rows_fully_efficient(self):
        # Every row identical: no intra-group waste.
        n = 32
        rows = np.repeat(np.arange(8), 4)
        cols = np.concatenate([np.arange(4) + 4 * i for i in range(8)])
        matrix = CooMatrix.from_arrays(rows, cols, np.ones(32), (8, n))
        result = SerpensMachine(channels=1, lanes=8).run(matrix, np.ones(n))
        assert result.lane_idle_slots == 0
        assert result.lane_efficiency == 1.0

    def test_empty(self):
        result = SerpensMachine().run(CooMatrix.empty((8, 8)), np.ones(8))
        assert result.cycles == 0

    def test_bad_config(self):
        with pytest.raises(HardwareConfigError):
            SerpensMachine(lanes=0)
