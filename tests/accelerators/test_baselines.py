"""Tests for the baseline accelerator models (1D, AT, Flex-TPU, Fafnir)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, uniform_random
from repro.accelerators import AdderTree, Fafnir, FlexTpu, Systolic1D
from repro.errors import HardwareConfigError
from tests.strategies import coo_matrices

ALL_BASELINES = [
    lambda: Systolic1D(16),
    lambda: AdderTree(16),
    lambda: FlexTpu(4),
    lambda: Fafnir(8),
]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_spmv_matches_oracle(self, factory, square_matrix, rng):
        design = factory()
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            design.spmv(square_matrix, x), square_matrix.matvec(x)
        )

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_wrong_vector_length(self, factory, square_matrix):
        with pytest.raises(HardwareConfigError, match="incompatible"):
            factory().spmv(square_matrix, np.zeros(5))

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    @given(matrix=coo_matrices(max_dim=24))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_matrices(self, factory, matrix):
        design = factory()
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        np.testing.assert_allclose(
            design.spmv(matrix, x), matrix.matvec(x), atol=1e-12
        )


class TestSystolic1D:
    def test_cycle_formula(self):
        # Table 1: m*n/l + l + 1.
        matrix = uniform_random(64, 48, 0.1, seed=1)
        report = Systolic1D(16).run(matrix)
        assert report.cycles == (64 // 16) * 48 + 16 + 1

    def test_utilization_equals_density(self):
        matrix = uniform_random(64, 64, 0.05, seed=2)
        report = Systolic1D(16).run(matrix)
        # nnz/(l * windows * n) == density, up to the +l+1 pipeline term
        # (17 extra cycles on 256 here, ~6%).
        assert report.utilization == pytest.approx(matrix.density, rel=0.10)

    def test_empty(self):
        assert Systolic1D(8).run(CooMatrix.empty((8, 8))).cycles == 0


class TestAdderTree:
    def test_cycle_formula(self):
        matrix = uniform_random(32, 64, 0.1, seed=3)
        report = AdderTree(16).run(matrix)
        assert report.cycles == 32 * (64 // 16) + 4 + 1  # log2(16)=4

    def test_units(self):
        assert AdderTree(16).total_units == 31

    def test_rejects_length_one(self):
        with pytest.raises(HardwareConfigError):
            AdderTree(1)


class TestFlexTpu:
    def test_with_units(self):
        assert FlexTpu.with_units(256).grid == 16

    def test_with_units_rejects_non_square(self):
        with pytest.raises(HardwareConfigError, match="square"):
            FlexTpu.with_units(200)

    def test_partition_cycle_model(self):
        # 10 nonzeros in 2 rows on a 4x4 grid: 12 slots fit one partition.
        matrix = uniform_random(2, 16, 0.3125, seed=4)
        report = FlexTpu(4).run(matrix)
        slots = matrix.nnz + len(set(matrix.rows.tolist()))
        partitions = -(-slots // 16)
        assert report.cycles == partitions * 12  # 3 * grid per partition

    def test_denser_matrix_needs_more_partitions(self):
        sparse = uniform_random(32, 32, 0.05, seed=5)
        dense = uniform_random(32, 32, 0.4, seed=5)
        ftpu = FlexTpu(4)
        assert ftpu.run(dense).cycles > ftpu.run(sparse).cycles


class TestFafnir:
    def test_length_must_be_power_of_two(self):
        with pytest.raises(HardwareConfigError, match="power of two"):
            Fafnir(12)

    def test_adder_budget(self):
        # Paper: length-128 Fafnir has 448 adders (l/2 per level).
        assert Fafnir(128).adder_count == 448
        assert Fafnir(128).total_units == 128 + 448

    def test_cycles_bounded_by_rows_and_leaf_work(self):
        matrix = uniform_random(64, 64, 0.1, seed=6)
        fafnir = Fafnir(8)
        report = fafnir.run(matrix)
        leaf_work = np.bincount(matrix.cols % 8, minlength=8).max()
        nonempty = len(set(matrix.rows.tolist()))
        assert report.cycles == max(leaf_work, nonempty) + 3 + 1

    def test_empty(self):
        assert Fafnir(8).run(CooMatrix.empty((4, 4))).cycles == 0
