"""Cycle-accurate adder tree vs its analytic model."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix
from repro.accelerators import AdderTree
from repro.accelerators.adder_tree_machine import AdderTreeMachine
from repro.errors import HardwareConfigError
from tests.strategies import coo_matrices


class TestAdderTreeMachine:
    def test_output_matches_oracle(self, square_matrix, rng):
        machine = AdderTreeMachine(16)
        x = rng.normal(size=square_matrix.shape[1])
        result = machine.run(square_matrix, x)
        np.testing.assert_allclose(result.y, square_matrix.matvec(x))

    def test_cycles_match_analytic_model(self, square_matrix):
        machine = AdderTreeMachine(16)
        analytic = AdderTree(16)
        result = machine.run(square_matrix, np.zeros(square_matrix.shape[1]))
        assert result.cycles == analytic.run(square_matrix).cycles

    def test_occupancy_equals_density_with_padding(self, square_matrix):
        machine = AdderTreeMachine(16)
        result = machine.run(square_matrix, np.ones(square_matrix.shape[1]))
        assert result.nonzero_multiplies == square_matrix.nnz
        # 96 columns divide evenly into 16-wide chunks here.
        assert result.occupancy == pytest.approx(square_matrix.density)

    def test_empty(self):
        result = AdderTreeMachine(8).run(CooMatrix.empty((4, 4)), np.ones(4))
        assert result.cycles == 0

    def test_rejects_length_one(self):
        with pytest.raises(HardwareConfigError):
            AdderTreeMachine(1)

    def test_vector_mismatch(self, square_matrix):
        with pytest.raises(HardwareConfigError, match="incompatible"):
            AdderTreeMachine(8).run(square_matrix, np.zeros(3))

    @given(matrix=coo_matrices(max_dim=20))
    @settings(max_examples=15, deadline=None)
    def test_machine_equals_analytic_everywhere(self, matrix):
        machine = AdderTreeMachine(8)
        analytic = AdderTree(8)
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        result = machine.run(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x), atol=1e-12)
        assert result.cycles == analytic.run(matrix).cycles
