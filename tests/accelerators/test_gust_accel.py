"""Tests for the GUST accelerator adapter."""

import numpy as np
import pytest

from repro.accelerators import GustAccelerator


class TestNaming:
    @pytest.mark.parametrize(
        "algorithm,load_balance,expected",
        [
            ("naive", False, "GUST-Naive"),
            ("matching", False, "GUST-EC"),
            ("matching", True, "GUST-EC/LB"),
            ("euler", True, "GUST-OPT/LB"),
        ],
    )
    def test_names(self, algorithm, load_balance, expected):
        design = GustAccelerator(
            16, algorithm=algorithm, load_balance=load_balance
        )
        assert design.name == expected


class TestConsistency:
    def test_run_matches_pipeline(self, square_matrix):
        design = GustAccelerator(32)
        report = design.run(square_matrix)
        schedule, _, _ = design.pipeline.preprocess(square_matrix)
        assert report.cycles == schedule.execution_cycles
        assert design.last_preprocess is not None
        assert design.last_preprocess.total_colors == schedule.total_colors

    def test_spmv_matches_oracle(self, square_matrix, rng):
        design = GustAccelerator(32)
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            design.spmv(square_matrix, x), square_matrix.matvec(x)
        )

    def test_utilization_helper(self, square_matrix):
        design = GustAccelerator(32)
        assert design.utilization(square_matrix) == pytest.approx(
            design.run(square_matrix).utilization
        )
