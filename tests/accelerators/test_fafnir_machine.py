"""Event-driven Fafnir machine vs the optimistic analytic model."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, banded, uniform_random
from repro.accelerators import Fafnir
from repro.accelerators.fafnir_machine import FafnirMachine
from repro.errors import HardwareConfigError
from tests.strategies import coo_matrices


class TestCorrectness:
    def test_output_matches_oracle(self, square_matrix, rng):
        machine = FafnirMachine(16)
        x = rng.normal(size=square_matrix.shape[1])
        result = machine.run(square_matrix, x)
        np.testing.assert_allclose(result.y, square_matrix.matvec(x))

    @given(matrix=coo_matrices(max_dim=24))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_matrices(self, matrix):
        machine = FafnirMachine(8)
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        result = machine.run(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x), atol=1e-12)

    def test_empty(self):
        result = FafnirMachine(8).run(CooMatrix.empty((4, 4)), np.ones(4))
        assert result.cycles == 0


class TestAccounting:
    def test_value_conservation(self, square_matrix, rng):
        """Every partial product either merges away or exits the root."""
        machine = FafnirMachine(16)
        x = rng.normal(size=square_matrix.shape[1])
        result = machine.run(square_matrix, x)
        assert result.leaf_multiplies == square_matrix.nnz
        assert result.root_outputs + result.merges == square_matrix.nnz

    def test_machine_never_beats_analytic_floor(self):
        """The analytic model is an optimistic bound ("at least" in Table 1)."""
        for seed in range(3):
            matrix = uniform_random(64, 64, 0.08, seed=seed)
            machine_cycles = FafnirMachine(8).run(
                matrix, np.ones(64)
            ).cycles
            analytic_cycles = Fafnir(8).run(matrix).cycles
            assert machine_cycles >= analytic_cycles - 1

    def test_banded_merges_more_than_scattered(self):
        """Same-row partials in adjacent columns merge in flight; scattered
        power-law traffic mostly serializes — the structural effect behind
        Fafnir's utilization profile."""
        dense_band = banded(64, 64, bandwidth=4, fill=1.0, seed=1)
        scattered = uniform_random(64, 64, dense_band.density, seed=1)
        machine = FafnirMachine(8)
        x = np.ones(64)
        band_result = machine.run(dense_band, x)
        scattered_result = machine.run(scattered, x)
        band_rate = band_result.merges / dense_band.nnz
        scattered_rate = scattered_result.merges / max(1, scattered.nnz)
        assert band_rate > scattered_rate


class TestValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(HardwareConfigError, match="power of two"):
            FafnirMachine(10)

    def test_vector_mismatch(self, square_matrix):
        with pytest.raises(HardwareConfigError, match="incompatible"):
            FafnirMachine(8).run(square_matrix, np.zeros(3))
