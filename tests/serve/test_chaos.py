"""Chaos-suite regression tests: the failure-model gates at small scale.

The CI gate runs ``repro chaos --seed 1234`` at 100 threads; these tests
exercise the same harness at a reduced thread count so the invariants —
zero hangs, zero lost futures, bit-identical successes, seeded replay —
are enforced inside tier-1 too.
"""

import pytest

from repro.cli import main
from repro.serve.chaos import CHAOS_SPEC, run_chaos

pytestmark = pytest.mark.usefixtures("no_faults")


class TestRunChaos:
    def test_gates_hold_under_aggressive_faults(self):
        report = run_chaos(seed=1234, threads=32)
        assert report.passed(), report.render()
        # The serve phases: every request resolved, correctly or typed.
        for run in report.runs:
            assert run.submitted == 32
            assert run.hangs == 0
            assert run.lost_futures == 0
            assert run.mismatches == 0
            assert run.ok > 0  # successes survive alongside the faults
            assert run.typed_failures  # and some faults really fired
            assert run.ok + sum(run.typed_failures.values()) + run.rejected \
                == run.submitted
        # The store phase really absorbed injected IO faults.
        assert report.store_io_errors > 0
        assert report.store_survived
        # The scheduler phase survived its pool kill byte-identically.
        assert report.pool_identical
        # Same seed -> same fault firing pattern across both serve runs.
        assert report.replay_consistent

    def test_report_renders_the_evidence(self):
        report = run_chaos(seed=1234, threads=16)
        text = report.render()
        assert "seed=1234" in text
        assert CHAOS_SPEC in text
        assert "PASS" in text
        # The supervision counters the acceptance criteria require to be
        # printed come through the embedded stats snapshot.
        assert "workers:" in text
        assert "circuits:" in text

    def test_different_seeds_change_the_fault_pattern(self):
        a = run_chaos(seed=1, threads=8)
        b = run_chaos(seed=2, threads=8)
        assert a.passed() and b.passed()
        # Not a hard invariant of any single site, but across the whole
        # fired-count map two seeds virtually never agree; equality here
        # would mean the seed is being ignored.
        assert a.runs[0].fired != b.runs[0].fired


class TestChaosCli:
    def test_cli_smoke_passes_and_prints_verdict(self, capsys):
        exit_code = main(["chaos", "--seed", "1234", "--threads", "8"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "PASS" in out
        assert "0 hangs" in out or "hangs" in out
